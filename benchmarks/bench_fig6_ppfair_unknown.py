"""Figure 6 benchmark: median % P-fair positions w.r.t. the *unknown*
Housing attribute, all four (theta, sigma) panels.

This is the paper's robustness headline: no method sees Housing, so none
has guarantees; the Mallows method stays competitive with the
attribute-aware baselines that were tuned to a different attribute.
"""

import numpy as np

from benchmarks.conftest import PANEL_PARAMS
from repro.algorithms.criteria import batch_percent_fair
from repro.fairness.constraints import FairnessConstraints


def test_fig6_ppfair_unknown_attribute(benchmark, report, german_panels, german_credit_data):
    # Time the evaluation kernel itself: batched PPfair w.r.t. Housing over
    # a block of sampled rankings.
    data = german_credit_data.subsample(100, seed=0)
    fc = FairnessConstraints.proportional(data.housing)
    rng = np.random.default_rng(0)
    orders = np.stack([rng.permutation(100) for _ in range(200)])

    def kernel():
        return batch_percent_fair(orders, data.housing, fc)

    values = benchmark(kernel)
    assert values.shape == (200,)

    for params in PANEL_PARAMS:
        panel = german_panels[params]
        report(
            f"Fig.6 panel theta={params[0]:g} sigma={params[1]:g} "
            "— PPfair w.r.t. Housing (unknown)",
            panel.to_text_fig6(),
        )

    # Paper shape: on the unknown attribute the Mallows method is
    # competitive — across sizes its median PPfair is within a few points
    # of the best attribute-aware baseline on average.
    for params in PANEL_PARAMS:
        panel = german_panels[params]
        mallows = np.mean(
            [panel.ppfair_unknown["Mallows (best of m)"][s].estimate for s in panel.sizes]
        )
        baselines = max(
            np.mean([panel.ppfair_unknown[alg][s].estimate for s in panel.sizes])
            for alg in ("DetConstSort", "ApproxMultiValuedIPF", "ILP")
        )
        assert mallows >= baselines - 12.0, (params, mallows, baselines)
