"""Serving-engine benchmarks: streaming batch ranking on the shared pool.

The PR-5 acceptance case lives here: ``engine.rank_many`` over 100+
mixed-algorithm requests must yield as-completed responses byte-identical
to the serial loop for ``n_jobs ∈ {1, 2, 4}``, and the ``n_jobs=4`` stream
must be >= 2x faster than serial on machines with at least 4 cores.  The
cost table the session learns along the way is recorded into the
``BENCH_*.json`` trajectory (the ``--json`` conftest flag), replacing the
scheduler's static weight guesses with measured per-kind seconds.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.algorithms.base import FairRankingProblem
from repro.datasets.german_credit import synthesize_german_credit
from repro.engine import RankingEngine, RankingRequest, responses_digest
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.construction import weakly_fair_ranking
from repro.serve import percentile_summary

SEED = 2024


def _german_credit_problem(data, size: int, rng) -> FairRankingProblem:
    """One serving problem: a weakly-fair German Credit subsample."""
    sub = data.subsample(size, seed=rng)
    constraints = FairnessConstraints.proportional(sub.age_sex)
    base = weakly_fair_ranking(
        sub.credit_amount, sub.age_sex, constraints, strong=False
    )
    return FairRankingProblem(
        base_ranking=base,
        scores=sub.credit_amount,
        groups=sub.age_sex,
        constraints=constraints,
    )


def _mixed_requests(n_problems: int) -> list[RankingRequest]:
    """>= 100 heterogeneous requests: per problem, a heavy Mallows best-of,
    a GMM profile, the exact DP, the IPF matching, and DetConstSort."""
    data = synthesize_german_credit(seed=0)
    rng = np.random.default_rng(7)
    requests: list[RankingRequest] = []
    for p in range(n_problems):
        size = (150, 250)[p % 2]
        problem = _german_credit_problem(data, size, rng)
        for algorithm, params in (
            ("mallows", {"theta": 0.5, "n_samples": 2000}),
            ("gmm", {"thetas": 1.0, "n_samples": 1000}),
            ("dp", {}),
            ("ipf", {}),
            ("detconstsort", {}),
        ):
            requests.append(
                RankingRequest(
                    algorithm,
                    problem,
                    params=params,
                    request_id=f"{algorithm}@{p}",
                )
            )
    return requests


def test_rank_many_streaming_fanout(fast_mode, report):
    """The acceptance case: 100+ mixed requests, byte-equal for every
    n_jobs, >= 2x at n_jobs=4 on >= 4 cores."""
    cores = os.cpu_count() or 1
    n_problems = 4 if fast_mode else 20
    worker_counts = (2,) if fast_mode else (2, 4)
    requests = _mixed_requests(n_problems)
    if not fast_mode:
        assert len(requests) >= 100

    engine = RankingEngine(n_jobs=max(worker_counts)).warm_up()

    t0 = time.perf_counter()
    serial = list(engine.rank_many(requests, seed=SEED, n_jobs=1))
    serial_s = time.perf_counter() - t0
    digest = responses_digest(serial)
    assert [r.index for r in serial] == list(range(len(requests)))

    streamed_s: dict[int, float] = {}
    for n_jobs in worker_counts:
        best = float("inf")
        for _ in range(1 if fast_mode else 2):
            t0 = time.perf_counter()
            responses = list(
                engine.rank_many(requests, seed=SEED, n_jobs=n_jobs)
            )
            best = min(best, time.perf_counter() - t0)
        # Scheduling must never change results: as-completed responses,
        # sorted by submission index, byte-equal to the serial loop.
        assert responses_digest(responses) == digest
        streamed_s[n_jobs] = best

    stats = engine.stats()
    speedups = {n: serial_s / s for n, s in streamed_s.items()}
    # Per-kind compute-latency percentiles (p50/p95/p99 of each request's
    # measured wall-time), from the serial pass so queueing never pollutes
    # the distribution — the numbers admission control prices against.
    by_kind: dict[str, list[float]] = {}
    for resp in serial:
        label = f"rank:{resp.algorithm}:{resp.ranking.order.size}"
        by_kind.setdefault(label, []).append(resp.seconds)
    latency_percentiles = {
        label: percentile_summary(samples)
        for label, samples in sorted(by_kind.items())
    }
    lines = [f"{len(requests)} mixed requests ({cores} cores available)"]
    lines.append(f"serial loop  : {serial_s * 1e3:9.1f} ms")
    for n_jobs, s in streamed_s.items():
        lines.append(
            f"n_jobs={n_jobs}     : {s * 1e3:9.1f} ms "
            f"({speedups[n_jobs]:.2f}x, byte-equal)"
        )
    lines.append(f"engine stats : {stats.summary()}")
    for label, summary in latency_percentiles.items():
        lines.append(
            f"{label:24s} "
            + "  ".join(f"{k}={v * 1e3:7.2f} ms" for k, v in summary.items())
        )
    report(
        "Engine — rank_many streaming fan-out (mixed algorithm zoo)",
        "\n".join(lines),
        metrics={
            "requests": len(requests),
            "cores": cores,
            "serial_s": serial_s,
            "streamed_s": {str(k): v for k, v in streamed_s.items()},
            "speedups": {str(k): v for k, v in speedups.items()},
            "digest": digest,
            "utilization": stats.utilization,
            "cost_table": stats.cost_table,
            "latency_percentiles": latency_percentiles,
            "fanout_assertion_active": not fast_mode and cores >= 4,
        },
    )
    if not fast_mode and cores >= 4:
        assert speedups[4] >= 2.0, (
            f"rank_many(n_jobs=4) only {speedups[4]:.2f}x faster than the "
            f"serial loop on {cores} cores (required >= 2x)"
        )


def test_streaming_overlaps_the_tail(fast_mode, report):
    """As-completed delivery: with several workers, the first response must
    arrive well before the whole batch drains (the barrier this replaces
    returned nothing until every unit finished)."""
    cores = os.cpu_count() or 1
    requests = _mixed_requests(3 if fast_mode else 8)
    engine = RankingEngine(n_jobs=2).warm_up()

    t0 = time.perf_counter()
    first_at = None
    arrival_order: list[int] = []
    for response in engine.rank_many(requests, seed=SEED):
        if first_at is None:
            first_at = time.perf_counter() - t0
        arrival_order.append(response.index)
    total = time.perf_counter() - t0

    assert sorted(arrival_order) == list(range(len(requests)))
    assert first_at is not None and first_at <= total
    report(
        "Engine — streaming latency (first response vs full batch)",
        (
            f"{len(requests)} requests on n_jobs=2 ({cores} cores)\n"
            f"first response : {first_at * 1e3:9.1f} ms\n"
            f"batch drained  : {total * 1e3:9.1f} ms"
        ),
        metrics={
            "requests": len(requests),
            "cores": cores,
            "first_response_s": first_at,
            "batch_s": total,
        },
    )
    # On any machine the first arrival strictly precedes the tail for a
    # multi-request batch (streaming, not a barrier); leave a margin so a
    # pathological scheduler hiccup, not noise, fails this.
    if len(requests) >= 10:
        assert first_at <= 0.9 * total


def test_learned_costs_persist_to_trajectory(fast_mode, report):
    """Satellite: measured per-unit wall-times become scheduler weights and
    the cost table lands in the JSON trajectory (via report metrics)."""
    from repro.engine.costs import DEFAULT_COSTS
    from repro.experiments.runner import reports_digest, run_all

    DEFAULT_COSTS.clear()
    t0 = time.perf_counter()
    first = reports_digest(run_all(fast=True, n_jobs=2))
    first_s = time.perf_counter() - t0
    table_after_first = DEFAULT_COSTS.to_jsonable()
    # Every unit kind of the pipeline has been measured.
    for kind in ("fig1:cell", "fig2:delta", "fig34:delta", "table1"):
        assert any(key.startswith(kind) for key in table_after_first), kind

    t0 = time.perf_counter()
    second = reports_digest(run_all(fast=True, n_jobs=2))
    second_s = time.perf_counter() - t0
    # Learned weights shape dispatch only: the reports stay byte-identical.
    assert second == first

    report(
        "Engine — measured-cost scheduler feedback (run_all twice)",
        (
            f"first run (static weights)   : {first_s * 1e3:9.1f} ms\n"
            f"second run (learned weights) : {second_s * 1e3:9.1f} ms\n"
            f"cost table entries           : {len(table_after_first)}"
        ),
        metrics={
            "first_s": first_s,
            "second_s": second_s,
            "digest": first,
            "cost_table": table_after_first,
        },
    )
