"""Ablation: the randomizer itself — exact RIM vs MCMC vs the alternative
noise distributions proposed as future work (Plackett–Luce, adjacent swaps).

All four are run at matched expected displacement from the centre so the
fairness repair is compared at equal efficiency cost.
"""

import numpy as np

from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.groups.attributes import GroupAssignment
from repro.mallows.mcmc import (
    plackett_luce_noise,
    random_adjacent_swaps,
    sample_mallows_mcmc,
)
from repro.mallows.model import expected_kendall_tau
from repro.mallows.sampling import sample_mallows
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking
from repro.utils.tables import format_table

N = 10
THETA = 0.5
M = 150


def _segregated_center():
    order = np.concatenate([np.arange(0, N, 2), np.arange(1, N, 2)])
    groups = GroupAssignment.from_indices(np.array([i % 2 for i in range(N)]))
    return Ranking(order), groups


def _run_comparison():
    center, groups = _segregated_center()
    fc = FairnessConstraints.proportional(groups)
    target_d = expected_kendall_tau(N, THETA)

    samples = {
        "RIM (exact)": sample_mallows(center, THETA, M, seed=0),
        "MCMC (KT)": sample_mallows_mcmc(
            center, THETA, M, kendall_tau_distance, burn_in=5000, thin=40, seed=1
        ),
        # Strength / swap count chosen to land near the same mean distance.
        "Plackett-Luce": plackett_luce_noise(center, 0.55, M, seed=2),
        "adjacent swaps": random_adjacent_swaps(center, int(round(target_d)), M, seed=3),
    }
    rows = []
    stats = {}
    for name, rs in samples.items():
        dists = [kendall_tau_distance(r, center) for r in rs]
        iis = [infeasible_index(r, groups, fc) for r in rs]
        stats[name] = (np.mean(dists), np.mean(iis))
        rows.append([name, float(np.mean(dists)), float(np.mean(iis))])
    return rows, stats, target_d


def test_ablation_randomizers(benchmark, report):
    rows, stats, target_d = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    text = format_table(
        ["randomizer", "mean KT to centre", "mean II"],
        rows,
        title=(
            f"Ablation: noise distribution (n={N}, matched to Mallows "
            f"theta={THETA}, E[KT]={target_d:.2f})"
        ),
    )
    report("Ablation — randomizer / noise distribution", text)

    # RIM and MCMC target the same law: their statistics must agree within
    # Monte-Carlo noise (std of mean KT over 150 samples is ~0.4).
    assert abs(stats["RIM (exact)"][0] - stats["MCMC (KT)"][0]) <= 1.6
    # Every randomizer repairs the segregated centre's II (= 14) somewhat.
    for name, (_d, ii) in stats.items():
        assert ii < 14.0, name


def test_rim_vs_mcmc_throughput(benchmark):
    """Micro-benchmark: RIM exact sampling throughput (samples/sec)."""
    center, _ = _segregated_center()
    samples = benchmark(lambda: sample_mallows(center, THETA, 100, seed=0))
    assert len(samples) == 100
