"""Benchmark: the statistical guarantee machinery for Algorithm 1.

Estimates the per-sample P-fairness probability of Mallows noise around an
unfair centre, derives the best-of-m budget needed for 95% confidence, and
checks the Markov tail bound — quantifying the paper's qualitative
robustness claim.
"""

import numpy as np

from repro.datasets.synthetic import engineered_ranking_with_ii
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.guarantees import (
    estimate_fairness_probability,
    expected_infeasible_index,
    infeasible_index_tail_bound,
    sample_budget_for_confidence,
)
from repro.utils.tables import format_table


def _run_analysis():
    center, groups = engineered_ranking_with_ii(14)  # maximally unfair
    fc = FairnessConstraints.proportional(groups)
    rows = []
    for theta in (0.1, 0.25, 0.5, 1.0):
        prob = estimate_fairness_probability(
            center, theta, groups, fc, max_infeasible_index=4, m=3000, seed=0
        )
        exp_ii = expected_infeasible_index(center, theta, groups, fc, m=3000, seed=1)
        bound = infeasible_index_tail_bound(exp_ii, threshold=12.0)
        budget = (
            sample_budget_for_confidence(prob.estimate, 0.05)
            if prob.estimate > 0
            else float("inf")
        )
        rows.append(
            [
                f"{theta:g}",
                (prob.estimate, prob.low, prob.high),
                float(exp_ii),
                float(bound),
                budget,
            ]
        )
    return rows


def test_fairness_guarantees(benchmark, report):
    rows = benchmark.pedantic(_run_analysis, rounds=1, iterations=1)
    text = format_table(
        [
            "theta",
            "P[II<=4] (Clopper-Pearson)",
            "E[II]",
            "Markov P[II>=12]",
            "m for 95%",
        ],
        rows,
        title="Guarantees: Mallows noise around a maximally unfair centre (II=14)",
    )
    report("Guarantees — per-sample fairness probability and budgets", text)

    # Stronger noise => higher per-sample fairness probability and lower
    # expected II around this unfair centre.
    probs = [r[1][0] for r in rows]
    exp_iis = [r[2] for r in rows]
    assert probs == sorted(probs, reverse=True)
    assert exp_iis == sorted(exp_iis)
