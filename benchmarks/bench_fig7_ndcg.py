"""Figure 7 benchmark: mean NDCG of the output rankings, all four panels.

Paper shapes verified: the ILP (exact DCG optimum under constraints) has
the best NDCG; Mallows best-of-15 approaches it as the ranking size grows;
the single Mallows sample trails.
"""

import numpy as np

from benchmarks.conftest import PANEL_PARAMS
from repro.algorithms.dp import DpFairRanking
from repro.algorithms.base import FairRankingProblem
from repro.fairness.constraints import FairnessConstraints


def test_fig7_ndcg(benchmark, report, german_panels, german_credit_data):
    # Time the dominant kernel of the panel: the exact DCG-fair solve at
    # the largest ranking size.
    data = german_credit_data.subsample(100, seed=0)
    problem = FairRankingProblem.from_scores(
        data.credit_amount, data.age_sex,
        FairnessConstraints.proportional(data.age_sex),
    )

    result = benchmark(lambda: DpFairRanking().rank(problem))
    assert len(result.ranking) == 100

    for params in PANEL_PARAMS:
        panel = german_panels[params]
        report(
            f"Fig.7 panel theta={params[0]:g} sigma={params[1]:g} — mean NDCG",
            panel.to_text_fig7(),
        )

    for params in PANEL_PARAMS:
        panel = german_panels[params]
        sizes = panel.sizes
        ilp = np.array([panel.ndcg["ILP"][s].estimate for s in sizes])
        best_m = np.array(
            [panel.ndcg["Mallows (best of m)"][s].estimate for s in sizes]
        )
        one = np.array([panel.ndcg["Mallows (1 sample)"][s].estimate for s in sizes])
        # Best-of-15 dominates the single sample on average.
        assert best_m.mean() > one.mean()
        # Best-of-15 approaches the ILP: small mean gap.
        assert (ilp - best_m).mean() < 0.05
        # Everything is a valid NDCG.
        for alg, series in panel.ndcg.items():
            for s in sizes:
                assert 0.0 <= series[s].estimate <= 1.0 + 1e-9
