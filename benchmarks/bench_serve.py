"""Serving-tier benchmarks: the async tier over one engine session.

The PR-6 acceptance cases live here:

* a concurrent client swarm served through :class:`AsyncRankingServer`
  must digest byte-identically to the serial loop over the same
  submissions (coalescing and worker count change *when* work runs,
  never *what* it computes);
* coalescing on vs off is measured head-to-head — same requests, same
  engine budget — and the per-kind p50/p95/p99 client latencies plus the
  coalescing factor land in the ``BENCH_*.json`` trajectory;
* cost-priced admission under a deliberately starved budget sheds load
  with structured rejections instead of queueing without bound.

The PR-10 case races the same client swarm in-process vs over the wire:
an :class:`~repro.net.HttpRankingServer` on a localhost socket, an
:class:`~repro.net.AsyncHttpClient` as the ``run_load`` transport, both
digest-checked against the serial loop, with p50/p95/p99 latencies for
both transports landing in ``BENCH_PR10.json``.
"""

from __future__ import annotations

import asyncio
import os

from repro.engine import RankingEngine, responses_digest
from repro.net import AsyncHttpClient, HttpRankingServer
from repro.serve import (
    AsyncRankingServer,
    ServeConfig,
    pin_request_seeds,
    run_load,
    synthetic_requests,
)

SEED = 2026


def _swarm(engine, config, requests, **load_kw):
    """One served load run: (LoadReport, ServeStats)."""

    async def session():
        async with AsyncRankingServer(engine, config) as server:
            report = await run_load(server, requests, **load_kw)
            return report, server.stats()

    return asyncio.run(session())


def test_serve_digest_and_coalescing(fast_mode, report):
    """The serving determinism contract plus the coalescing comparison:
    every request served, byte-equal to the serial loop, with and without
    micro-batching."""
    cores = os.cpu_count() or 1
    n_requests = 32 if fast_mode else 96
    n_jobs = 2 if fast_mode else min(4, cores)
    requests = synthetic_requests(n_requests, seed=5)

    with RankingEngine(n_jobs=1) as ref:
        serial = responses_digest(
            ref.rank_many(requests, seed=SEED, n_jobs=1)
        )

    coalesced_cfg = ServeConfig(
        batch_window=0.005, max_batch_size=16, seed=SEED, n_jobs=n_jobs
    )
    solo_cfg = ServeConfig(
        batch_window=0.0, max_batch_size=1, seed=SEED, n_jobs=n_jobs
    )

    with RankingEngine(n_jobs=n_jobs) as engine:
        engine.warm_up()
        on_report, on_stats = _swarm(engine, coalesced_cfg, requests)
        off_report, off_stats = _swarm(engine, solo_cfg, requests)

    assert on_report.served == n_requests, on_report.summary()
    assert off_report.served == n_requests, off_report.summary()
    # Micro-batching and per-batch dispatch must serve identical bytes.
    assert on_report.digest() == serial
    assert off_report.digest() == serial
    assert on_stats.coalescing > 1.0  # the window actually coalesced
    assert off_stats.coalescing == 1.0

    percentiles = on_stats.latency_percentiles()
    lines = [
        f"{n_requests} concurrent clients, engine n_jobs={n_jobs} "
        f"({cores} cores available)",
        f"coalescing on : {on_report.throughput:9.1f} req/s "
        f"({on_stats.coalescing:.2f} req/batch, largest "
        f"{on_stats.largest_batch}, byte-equal)",
        f"coalescing off: {off_report.throughput:9.1f} req/s "
        f"(1.00 req/batch, byte-equal)",
    ]
    for label, summary in percentiles.items():
        lines.append(
            f"{label:24s} "
            + "  ".join(f"{k}={v * 1e3:7.2f} ms" for k, v in summary.items())
        )
    report(
        "Serve — async tier: digest contract + coalescing on/off",
        "\n".join(lines),
        metrics={
            "requests": n_requests,
            "cores": cores,
            "n_jobs": n_jobs,
            "digest": serial,
            "coalescing_on": {
                "throughput_rps": on_report.throughput,
                "elapsed_s": on_report.elapsed,
                "requests_per_batch": on_stats.coalescing,
                "largest_batch": on_stats.largest_batch,
                "dispatched_batches": on_stats.dispatched_batches,
            },
            "coalescing_off": {
                "throughput_rps": off_report.throughput,
                "elapsed_s": off_report.elapsed,
                "requests_per_batch": off_stats.coalescing,
                "dispatched_batches": off_stats.dispatched_batches,
            },
            "latency_percentiles": percentiles,
        },
    )


def test_http_frontend_races_in_process_tier(fast_mode, report):
    """The wire-tax measurement: the same pinned request swarm served
    in-process and over localhost HTTP, both byte-identical to the
    serial loop, with per-transport latency percentiles recorded."""
    cores = os.cpu_count() or 1
    n_requests = 32 if fast_mode else 96
    n_jobs = 2 if fast_mode else min(4, cores)
    requests = pin_request_seeds(
        synthetic_requests(n_requests, seed=7), seed=SEED
    )
    config = ServeConfig(batch_window=0.005, max_batch_size=16, n_jobs=n_jobs)

    with RankingEngine(n_jobs=1) as ref:
        serial = responses_digest(ref.rank_many(requests, n_jobs=1))

    async def http_session(engine):
        async with HttpRankingServer(engine, config) as server:
            async with AsyncHttpClient("127.0.0.1", server.port) as client:
                report_ = await run_load(client, requests)
                return report_, server.inner.stats()

    with RankingEngine(n_jobs=n_jobs) as engine:
        engine.warm_up()
        inproc_report, inproc_stats = _swarm(engine, config, requests)
        http_report, http_stats = asyncio.run(http_session(engine))

    assert inproc_report.served == n_requests, inproc_report.summary()
    assert http_report.served == n_requests, http_report.summary()
    # The determinism contract must survive the wire: pinned seeds make
    # both transports byte-identical to the serial loop.
    assert inproc_report.digest() == serial
    assert http_report.digest() == serial

    inproc_pct = inproc_report.latency_percentiles()
    http_pct = http_report.latency_percentiles()
    lines = [
        f"{n_requests} clients, engine n_jobs={n_jobs} ({cores} cores), "
        f"HTTP coalescing {http_stats.coalescing:.2f} req/batch",
        f"in-process : {inproc_report.throughput:9.1f} req/s (byte-equal)",
        f"over HTTP  : {http_report.throughput:9.1f} req/s (byte-equal)",
    ]
    for label, pct in sorted(http_pct.items()):
        base = inproc_pct.get(label, {})
        lines.append(
            f"{label:24s} http "
            + "  ".join(f"{k}={v * 1e3:7.2f} ms" for k, v in pct.items())
            + "   in-proc "
            + "  ".join(f"{k}={v * 1e3:7.2f} ms" for k, v in base.items())
        )
    report(
        "Serve — HTTP frontend vs in-process tier (same swarm)",
        "\n".join(lines),
        metrics={
            "requests": n_requests,
            "cores": cores,
            "n_jobs": n_jobs,
            "digest": serial,
            "in_process": {
                "throughput_rps": inproc_report.throughput,
                "elapsed_s": inproc_report.elapsed,
                "requests_per_batch": inproc_stats.coalescing,
                "latency_percentiles": inproc_pct,
            },
            "http": {
                "throughput_rps": http_report.throughput,
                "elapsed_s": http_report.elapsed,
                "requests_per_batch": http_stats.coalescing,
                "latency_percentiles": http_pct,
            },
        },
    )


def test_admission_sheds_load_under_starved_budget(fast_mode, report):
    """Cost-priced admission: with a starved budget and a shallow queue, a
    burst is split into served + structured rejections — and retries with
    backoff recover every rejection without wedging the server."""
    n_requests = 24 if fast_mode else 64
    requests = synthetic_requests(n_requests, seed=11)
    config = ServeConfig(
        batch_window=0.002,
        max_batch_size=8,
        cost_budget=0.08,
        default_cost=0.05,
        max_queue_depth=2,
        seed=SEED,
        n_jobs=2,
    )

    with RankingEngine(n_jobs=2) as engine:
        shed_report, shed_stats = _swarm(engine, config, requests)
        retry_report, _ = _swarm(
            engine, config, requests, max_retries=200, retry_backoff=0.002
        )

    assert shed_report.served + shed_report.rejected == n_requests
    assert shed_report.rejected > 0, "starved budget never shed load"
    assert shed_report.failed == 0
    assert retry_report.served == n_requests, retry_report.summary()

    report(
        "Serve — cost-priced admission under a starved budget",
        (
            f"burst of {n_requests}: {shed_report.served} served, "
            f"{shed_report.rejected} rejected "
            f"(budget {config.cost_budget}s, queue {config.max_queue_depth})\n"
            f"with retries : {retry_report.served}/{n_requests} served in "
            f"{retry_report.elapsed:.3f}s"
        ),
        metrics={
            "requests": n_requests,
            "cost_budget": config.cost_budget,
            "max_queue_depth": config.max_queue_depth,
            "served": shed_report.served,
            "rejected": shed_report.rejected,
            "served_with_retries": retry_report.served,
            "retry_elapsed_s": retry_report.elapsed,
        },
    )
