"""Ablation: effect of the sample budget m (best-of-m) on NDCG and the
Infeasible Index.

The paper uses m ∈ {1, 15}; this ablation sweeps m to show the diminishing
returns of extra samples under the NDCG selection criterion.
"""

import numpy as np

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.datasets.german_credit import synthesize_german_credit
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.rankings.quality import ndcg
from repro.fairness.construction import weakly_fair_ranking
from repro.utils.tables import format_series

M_VALUES = (1, 2, 5, 10, 15, 30, 60)
N_TRIALS = 20
THETA = 0.5


def _run_sweep():
    data = synthesize_german_credit(seed=0).subsample(40, seed=2)
    fc = FairnessConstraints.proportional(data.age_sex)
    base = weakly_fair_ranking(data.credit_amount, data.age_sex, fc)
    problem = FairRankingProblem(
        base_ranking=base, scores=data.credit_amount,
        groups=data.age_sex, constraints=fc,
    )
    fc_housing = FairnessConstraints.proportional(data.housing)
    rows = {}
    for m in M_VALUES:
        alg = MallowsFairRanking(THETA, n_samples=m)
        ndcgs, iis = [], []
        for s in range(N_TRIALS):
            result = alg.rank(problem, seed=s)
            ndcgs.append(ndcg(result.ranking, data.credit_amount))
            iis.append(infeasible_index(result.ranking, data.housing, fc_housing))
        rows[m] = (float(np.mean(ndcgs)), float(np.mean(iis)))
    return rows


def test_ablation_sample_budget(benchmark, report):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    text = format_series(
        list(rows),
        {
            "mean NDCG": [v[0] for v in rows.values()],
            "mean II (Housing)": [v[1] for v in rows.values()],
        },
        x_label="m",
        title=f"Ablation: best-of-m sample budget (theta={THETA}, NDCG criterion)",
    )
    report("Ablation — Mallows sample budget m", text)

    ndcgs = [v[0] for v in rows.values()]
    # More samples never hurt the NDCG criterion (on average, monotone-ish);
    # check endpoints rather than strict monotonicity of a 20-trial mean.
    assert ndcgs[-1] > ndcgs[0]
    assert max(ndcgs) - ndcgs[-1] < 0.02
