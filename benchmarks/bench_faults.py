"""Fault-tolerance benchmarks: what supervision costs when nothing fails,
and what recovery costs when a worker dies.

The PR-8 acceptance cases live here:

* the supervised scheduler's fault-free overhead versus a bare
  submit/as-completed loop over the same executor — the retry
  bookkeeping must be noise, not a tax;
* a worker hard-exit mid-run (injected via the chaos plan) is recovered
  with results byte-identical to the fault-free run, and the wall-clock
  cost of the crash — rebuild, resubmission, backoff — is recorded in
  the ``BENCH_*.json`` trajectory.
"""

from __future__ import annotations

import time
from concurrent.futures import as_completed

import numpy as np

from repro.batch import WorkUnit, run_units
from repro.batch.parallel import _get_executor
from repro.batch.schedule import _run_unit
from repro.faults import (
    FaultCounters,
    RetryPolicy,
    inject_faults,
    parse_fault_specs,
)

N_JOBS = 2


def _spin_unit(seed, size):
    """A compute-bound seeded unit: draw, sort, summarise."""
    draws = np.random.default_rng(seed).random(size)
    return float(np.sort(draws)[: size // 10].sum())


def _units(n, size):
    seqs = np.random.SeedSequence(88).spawn(n)
    return [
        WorkUnit(
            key=("spin", i), fn=_spin_unit, seed=seqs[i], payload=(size,)
        )
        for i in range(n)
    ]


def _unsupervised(units, n_jobs):
    """The pre-supervision dispatch loop: submit everything, harvest
    as-completed, no retry bookkeeping.  The honest baseline."""
    executor = _get_executor(n_jobs)
    futures = {
        executor.submit(_run_unit, u.fn, u.seed, u.payload): u.key
        for u in units
    }
    results = {}
    for future in as_completed(futures):
        results[futures[future]] = future.result()
    return {u.key: results[u.key] for u in units}


def test_supervision_overhead_and_recovery_cost(fast_mode, report):
    n_units = 16 if fast_mode else 48
    size = 20_000 if fast_mode else 200_000
    units = _units(n_units, size)
    policy = RetryPolicy(backoff_base=0.0)  # measure recovery, not sleep

    serial = run_units(units, n_jobs=1)

    _unsupervised(units, N_JOBS)  # warm the shared pool out of the timings
    t0 = time.perf_counter()
    baseline = _unsupervised(units, N_JOBS)
    t_baseline = time.perf_counter() - t0

    clean_counters = FaultCounters()
    t0 = time.perf_counter()
    supervised = run_units(
        units, n_jobs=N_JOBS, policy=policy, counters=clean_counters
    )
    t_supervised = time.perf_counter() - t0

    chaos_counters = FaultCounters()
    with inject_faults(parse_fault_specs("*:0:exit")):
        # The plan eviction rebuilt the pool, so this timing includes a
        # cold fork *plus* the crash, the rebuild and the resubmission —
        # the full price of one worker death.
        t0 = time.perf_counter()
        recovered = run_units(
            units, n_jobs=N_JOBS, policy=policy, counters=chaos_counters
        )
        t_chaos = time.perf_counter() - t0

    # Determinism under faults: all three schedules, same bytes.
    assert supervised == serial
    assert baseline == serial
    assert recovered == serial
    assert not clean_counters  # fault-free run spent no budget
    assert chaos_counters.crash_faults >= 1
    assert chaos_counters.rebuilds >= 1
    # Fault-free supervision must stay within noise of the bare loop.
    threshold = 2.5 if fast_mode else 1.5
    assert t_supervised <= t_baseline * threshold, (
        f"supervised {t_supervised:.3f}s vs bare {t_baseline:.3f}s"
    )

    report(
        "Faults — supervised scheduling: fault-free overhead + crash recovery",
        "\n".join(
            [
                f"{n_units} units x sort({size}), n_jobs={N_JOBS}",
                f"bare pool loop   : {t_baseline * 1e3:8.1f} ms",
                f"supervised clean : {t_supervised * 1e3:8.1f} ms "
                f"({t_supervised / t_baseline:5.2f}x, zero budget spent)",
                f"worker hard-exit : {t_chaos * 1e3:8.1f} ms "
                f"({chaos_counters.crash_faults} crash, "
                f"{chaos_counters.rebuilds} rebuild, "
                f"{chaos_counters.retried_units} retried, byte-equal)",
            ]
        ),
        metrics={
            "n_units": n_units,
            "unit_size": size,
            "n_jobs": N_JOBS,
            "bare_pool_s": t_baseline,
            "supervised_clean_s": t_supervised,
            "supervised_overhead_x": t_supervised / t_baseline,
            "crash_recovery_s": t_chaos,
            "recovery_extra_s": t_chaos - t_supervised,
            "chaos_counters": chaos_counters.snapshot(),
            "byte_equal_under_faults": True,
        },
    )
