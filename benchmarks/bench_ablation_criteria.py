"""Ablation: the sample-selection criterion of Algorithm 1.

Compares NDCG-driven, KT-driven, II-driven and composite selection over the
same Mallows samples: each criterion optimizes its own target, exposing the
robustness motivation for randomized (criterion-light) selection.
"""

import numpy as np

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.criteria import (
    CompositeCriterion,
    MaxNdcgCriterion,
    MinInfeasibleIndexCriterion,
    MinKendallTauCriterion,
)
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.datasets.german_credit import synthesize_german_credit
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.construction import weakly_fair_ranking
from repro.fairness.infeasible_index import infeasible_index
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.quality import ndcg
from repro.utils.tables import format_table

N_TRIALS = 20
THETA = 0.5
M = 15


def _run_comparison():
    data = synthesize_german_credit(seed=0).subsample(40, seed=5)
    fc = FairnessConstraints.proportional(data.age_sex)
    base = weakly_fair_ranking(data.credit_amount, data.age_sex, fc)
    problem = FairRankingProblem(
        base_ranking=base, scores=data.credit_amount,
        groups=data.age_sex, constraints=fc,
    )
    criteria = {
        "max-ndcg": MaxNdcgCriterion(),
        "min-kt": MinKendallTauCriterion(),
        "min-ii(Age-Sex)": MinInfeasibleIndexCriterion(),
        "composite": CompositeCriterion(
            [(MaxNdcgCriterion(), 0.5), (MinInfeasibleIndexCriterion(), 0.5)]
        ),
    }
    rows = []
    stats = {}
    for name, criterion in criteria.items():
        alg = MallowsFairRanking(THETA, n_samples=M, criterion=criterion)
        ndcgs, kts, iis = [], [], []
        for s in range(N_TRIALS):
            result = alg.rank(problem, seed=s)
            ndcgs.append(ndcg(result.ranking, data.credit_amount))
            kts.append(kendall_tau_distance(result.ranking, base))
            iis.append(infeasible_index(result.ranking, data.age_sex, fc))
        stats[name] = (np.mean(ndcgs), np.mean(kts), np.mean(iis))
        rows.append(
            [name, float(np.mean(ndcgs)), float(np.mean(kts)), float(np.mean(iis))]
        )
    return rows, stats


def test_ablation_selection_criteria(benchmark, report):
    rows, stats = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    text = format_table(
        ["criterion", "mean NDCG", "mean KT to base", "mean II (Age-Sex)"],
        rows,
        title=f"Ablation: selection criterion (theta={THETA}, m={M})",
    )
    report("Ablation — selection criterion", text)

    # Each criterion must win (or tie) on its own objective.
    assert stats["max-ndcg"][0] >= max(s[0] for s in stats.values()) - 1e-9
    assert stats["min-kt"][1] <= min(s[1] for s in stats.values()) + 1e-9
    assert stats["min-ii(Age-Sex)"][2] <= min(s[2] for s in stats.values()) + 1e-9
