"""Substrate micro-benchmarks: Mallows sampling throughput and the
chunked-vs-Fenwick decode race.

``test_fenwick_decode_wins_at_large_n`` is the perf tripwire for the
sub-quadratic RIM decode: at ``n = 2000`` the Fenwick order-statistic path
must beat the ``O(m·n²)`` chunked decode (bit-identical outputs are asserted
before any timing claim counts), while ``test_small_n_stays_on_chunked_path``
pins the dispatcher to the existing decode at paper scale (``n <= 500``).
"""

import time

import numpy as np
import pytest

from repro.mallows.sampling import (
    _displacement_draws,
    _orders_from_displacements,
    _use_fenwick_decode,
    calibrate_decode_crossover,
    decode_crossover,
    sample_mallows_batch,
)
from repro.rankings.permutation import random_ranking


@pytest.mark.parametrize("n", [10, 100, 500])
def test_rim_batch_100_samples(benchmark, n):
    center = random_ranking(n, seed=0)
    orders = benchmark(sample_mallows_batch, center, 1.0, 100, 0)
    assert orders.shape == (100, n)


@pytest.mark.parametrize("theta", [0.0, 0.5, 4.0])
def test_rim_theta_regimes(benchmark, theta):
    center = random_ranking(100, seed=0)
    orders = benchmark(sample_mallows_batch, center, theta, 200, 0)
    assert orders.shape == (200, 100)


def test_rim_batch_10k_samples_n50(benchmark):
    """The batch-engine headline size: 10k samples at the paper's n=50."""
    center = random_ranking(50, seed=0)
    orders = benchmark(sample_mallows_batch, center, 0.5, 10_000, 0)
    assert orders.shape == (10_000, 50)


def test_fenwick_decode_wins_at_large_n(fast_mode, report):
    """At n = 2000 the O(m·n·log n) Fenwick decode must beat the O(m·n²)
    chunked decode (the ``--fast`` smoke shrinks ``m``, where the Fenwick
    per-call overhead amortizes less, and relaxes the threshold to a
    no-regression check)."""
    n = 2_000
    m = 1_024 if fast_mode else 2_048
    threshold = 1.0 if fast_mode else 1.2
    rng = np.random.default_rng(0)
    v = _displacement_draws(n, 0.5, m, rng)
    center = random_ranking(n, seed=1).order

    chunked_s = fenwick_s = np.inf
    for _ in range(2 if fast_mode else 3):
        t0 = time.perf_counter()
        chunked = _orders_from_displacements(center, v, method="chunked")
        chunked_s = min(chunked_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fenwick = _orders_from_displacements(center, v, method="fenwick")
        fenwick_s = min(fenwick_s, time.perf_counter() - t0)

    # The decodes must agree bit-for-bit before any speed claim counts, and
    # the auto dispatcher must route this shape to the Fenwick path.
    assert np.array_equal(chunked, fenwick)
    assert _use_fenwick_decode(m, n)

    speedup = chunked_s / fenwick_s
    report(
        "RIM decode — chunked vs Fenwick at large n",
        (
            f"m={m} samples, n={n} items, crossover n>={decode_crossover()}\n"
            f"chunked decode : {chunked_s * 1e3:9.1f} ms\n"
            f"Fenwick decode : {fenwick_s * 1e3:9.1f} ms\n"
            f"speedup        : {speedup:9.2f}x (required >= {threshold:g}x)"
        ),
        metrics={
            "m": m, "n": n, "chunked_s": chunked_s, "fenwick_s": fenwick_s,
            "speedup": speedup, "crossover": decode_crossover(),
        },
    )
    assert speedup >= threshold, (
        f"Fenwick decode only {speedup:.2f}x vs the chunked decode at "
        f"m={m}, n={n} (required >= {threshold:g}x)"
    )


def test_small_n_stays_on_chunked_path():
    """Paper-scale batches (n <= 500) must keep dispatching to the existing
    chunked decode, and the Fenwick path must match it bit-for-bit there."""
    for n in (50, 500):
        assert not _use_fenwick_decode(10_000, n)
        rng = np.random.default_rng(3)
        v = _displacement_draws(n, 0.5, 64, rng)
        center = random_ranking(n, seed=4).order
        auto = _orders_from_displacements(center, v)
        assert np.array_equal(auto, _orders_from_displacements(center, v, method="chunked"))
        assert np.array_equal(auto, _orders_from_displacements(center, v, method="fenwick"))


def test_calibrated_crossover_is_sane(fast_mode, report):
    """The on-host calibration must never route paper scale to Fenwick.

    The full-mode grid deliberately includes a paper-scale point (n = 256,
    where the chunked decode wins by ~3x on every machine measured): if a
    calibration bug ever declared Fenwick the winner there, ``measured``
    would come back 256 and the ``> 500`` assertion fails.  ``--fast``
    drops the sub-500 point (smaller m makes its margin noisier) and
    checks the return contract only.
    """
    if fast_mode:
        grid, m = (512, 1024, 2048), 512
    else:
        grid, m = (256, 724, 1024, 1448, 2048), 1024
    measured = calibrate_decode_crossover(n_grid=grid, m=m, apply=False)
    report(
        "RIM decode — calibrated crossover",
        f"grid={grid}, measured crossover n>={measured} "
        f"(live threshold n>={decode_crossover()})",
        metrics={"measured_crossover": measured, "live_crossover": decode_crossover()},
    )
    assert measured in set(grid) | {max(grid) + 1}
    if not fast_mode:
        assert measured > 500
