"""Substrate micro-benchmarks: Mallows sampling throughput."""

import pytest

from repro.mallows.sampling import sample_mallows_batch
from repro.rankings.permutation import random_ranking


@pytest.mark.parametrize("n", [10, 100, 500])
def test_rim_batch_100_samples(benchmark, n):
    center = random_ranking(n, seed=0)
    orders = benchmark(sample_mallows_batch, center, 1.0, 100, 0)
    assert orders.shape == (100, n)


@pytest.mark.parametrize("theta", [0.0, 0.5, 4.0])
def test_rim_theta_regimes(benchmark, theta):
    center = random_ranking(100, seed=0)
    orders = benchmark(sample_mallows_batch, center, theta, 200, 0)
    assert orders.shape == (200, 100)


def test_rim_batch_10k_samples_n50(benchmark):
    """The batch-engine headline size: 10k samples at the paper's n=50."""
    center = random_ranking(50, seed=0)
    orders = benchmark(sample_mallows_batch, center, 0.5, 10_000, 0)
    assert orders.shape == (10_000, 50)
