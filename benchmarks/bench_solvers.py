"""Substrate micro-benchmarks: the fair-ranking solvers at German Credit
scale (k = 100, four Age-Sex groups).

Shows why the exact DP is the default ILP engine: identical optimum to
HiGHS MILP at a fraction of the runtime.
"""

import numpy as np
import pytest

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.detconstsort import DetConstSort
from repro.algorithms.dp import DpFairRanking
from repro.algorithms.ilp import IlpFairRanking
from repro.algorithms.ipf import ApproxMultiValuedIPF
from repro.datasets.german_credit import synthesize_german_credit
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.construction import weakly_fair_ranking


@pytest.fixture(scope="module")
def problem_100():
    data = synthesize_german_credit(seed=0).subsample(100, seed=0)
    fc = FairnessConstraints.proportional(data.age_sex)
    base = weakly_fair_ranking(data.credit_amount, data.age_sex, fc)
    return FairRankingProblem(
        base_ranking=base, scores=data.credit_amount,
        groups=data.age_sex, constraints=fc,
    )


def test_dp_solver_k100(benchmark, problem_100):
    result = benchmark(lambda: DpFairRanking().rank(problem_100))
    assert len(result.ranking) == 100


def test_milp_solver_k100(benchmark, problem_100):
    result = benchmark.pedantic(
        lambda: IlpFairRanking().rank(problem_100), rounds=1, iterations=1
    )
    # The MILP optimum must match the DP optimum exactly.
    dp_value = DpFairRanking().rank(problem_100).metadata["dcg"]
    assert result.metadata["dcg"] == pytest.approx(dp_value, rel=1e-9)


def test_ipf_matching_k100(benchmark, problem_100):
    result = benchmark(lambda: ApproxMultiValuedIPF().rank(problem_100))
    assert len(result.ranking) == 100


def test_detconstsort_k100(benchmark, problem_100):
    result = benchmark(lambda: DetConstSort().rank(problem_100, seed=0))
    assert len(result.ranking) == 100


def test_weakly_fair_construction_k100(benchmark):
    data = synthesize_german_credit(seed=0).subsample(100, seed=1)
    fc = FairnessConstraints.proportional(data.age_sex)
    ranking = benchmark(
        lambda: weakly_fair_ranking(data.credit_amount, data.age_sex, fc)
    )
    assert len(ranking) == 100
