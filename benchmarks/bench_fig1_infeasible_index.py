"""Figure 1 benchmark: Mallows noise vs the Infeasible Index of the centre.

Regenerates the paper's Fig. 1 series (one subplot per engineered central
II, theta sweep, bootstrap CIs) and times the experiment.
"""

import pytest

from repro.experiments.config import Fig1Config
from repro.experiments.fig1_infeasible import run_fig1

CONFIG = Fig1Config(
    target_iis=(0, 4, 8, 12, 14),
    thetas=(0.1, 0.25, 0.5, 1.0, 2.0, 4.0),
    n_samples=200,
    n_bootstrap=1000,
    seed=2024,
)


def test_fig1_infeasible_index(benchmark, report):
    result = benchmark.pedantic(run_fig1, args=(CONFIG,), rounds=1, iterations=1)
    report("Fig.1 — sample Infeasible Index vs theta", result.to_text())

    # Qualitative paper claims, asserted on the regenerated series.
    for central_ii, per_theta in result.mean_sample_ii.items():
        # Convergence to the central ranking's II at high dispersion.
        assert per_theta[4.0].estimate == pytest.approx(central_ii, abs=2.0)
    # Large drop for the most unfair centre at strong noise.
    assert result.mean_sample_ii[14][0.1].estimate < 7.0
