"""Figure 4 benchmark: NDCG of Mallows samples vs theta, per delta (the
efficiency half of the trade-off)."""

from repro.experiments.config import Fig34Config
from repro.experiments.fig34_tradeoff import run_fig34

CONFIG = Fig34Config(
    deltas=(0.0, 0.3, 0.6, 1.0),
    thetas=(0.1, 0.25, 0.5, 1.0, 2.0, 4.0),
    n_trials=50,
    samples_per_trial=20,
    n_bootstrap=1000,
    seed=2025,
)


def test_fig4_sample_ndcg(benchmark, report):
    result = benchmark.pedantic(run_fig34, args=(CONFIG,), rounds=1, iterations=1)
    report("Fig.4 — sample NDCG vs theta, per delta", result.to_text_fig4())

    for delta in CONFIG.deltas:
        estimates = [result.sample_ndcg[delta][t].estimate for t in CONFIG.thetas]
        # NDCG rises monotonically with theta and converges to 1 (the
        # central ranking is score-sorted, so its NDCG is 1).
        assert estimates == sorted(estimates)
        assert estimates[-1] > 0.995
