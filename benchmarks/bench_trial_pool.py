"""Trial-granular fan-out benchmarks: the German Credit panel and Fig. 2.

The German Credit panels and Fig. 2 cannot use the row-range sharder (their
batches are tiny — the unit of work is one subsample + solver run), so they
parallelize per trial via :func:`repro.batch.run_trials`.  This file is the
perf tripwire for that second sharding mode:

* byte-identical panel output across worker counts is always asserted (the
  CI ``--fast`` smoke runs it at ``n_jobs=2``, so a seeding or sharding
  regression fails the build loudly);
* the >= 2x wall-clock assertion on the German Credit panel at ``n_jobs=4``
  applies on machines with at least 4 cores.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.datasets.german_credit import synthesize_german_credit
from repro.experiments.config import Fig2Config, GermanCreditConfig
from repro.experiments.fig2_central_ii import run_fig2
from repro.experiments.german_credit_exp import run_german_credit

SEED = 2024


def _panel_config(n_jobs: int, fast: bool) -> GermanCreditConfig:
    if fast:
        return GermanCreditConfig(
            sizes=(10, 30, 50), n_repeats=8, n_bootstrap=200,
            seed=SEED, n_jobs=n_jobs,
        )
    return GermanCreditConfig(seed=SEED, n_jobs=n_jobs)


def _panel_texts(panel) -> tuple[str, str, str]:
    return panel.to_text_fig5(), panel.to_text_fig6(), panel.to_text_fig7()


def test_german_credit_trial_fanout(fast_mode, report):
    """One (theta, sigma) panel, serial vs trial-sharded across workers."""
    n_jobs = 2 if fast_mode else 4
    cores = os.cpu_count() or 1
    data = synthesize_german_credit(seed=0)

    t0 = time.perf_counter()
    serial = run_german_credit(_panel_config(1, fast_mode), data=data)
    serial_s = time.perf_counter() - t0

    fanout_s = np.inf
    for _ in range(1 if fast_mode else 2):
        t0 = time.perf_counter()
        fanned = run_german_credit(_panel_config(n_jobs, fast_mode), data=data)
        fanout_s = min(fanout_s, time.perf_counter() - t0)

    # Fan-out must never change results: every rendered series byte-equal.
    assert _panel_texts(serial) == _panel_texts(fanned)

    speedup = serial_s / fanout_s
    report(
        "Trial pool — German Credit panel fan-out",
        (
            f"panel theta=0.5 sigma=0, n_jobs={n_jobs} ({cores} cores available)\n"
            f"serial loop : {serial_s * 1e3:9.1f} ms\n"
            f"trial pool  : {fanout_s * 1e3:9.1f} ms\n"
            f"speedup     : {speedup:9.2f}x"
        ),
        metrics={
            "n_jobs": n_jobs, "cores": cores, "serial_s": serial_s,
            "fanout_s": fanout_s, "speedup": speedup,
            "fanout_assertion_active": not fast_mode and cores >= 4,
        },
    )
    if not fast_mode and cores >= 4:
        assert speedup >= 2.0, (
            f"n_jobs={n_jobs} only {speedup:.2f}x faster than the serial "
            f"German Credit panel on {cores} cores (required >= 2x)"
        )


def test_fig2_trial_fanout(fast_mode, report):
    """Fig. 2 across worker counts: byte-equal reports, timing recorded.

    Fig. 2 trials are tiny (10 items each), so no speedup is asserted — the
    value of the fan-out here is that the same engine covers it for free;
    the assertion that matters is byte-equality.
    """
    n_jobs = 2
    base = dict(n_trials=50 if fast_mode else 200,
                n_bootstrap=200 if fast_mode else 1000, seed=SEED)

    t0 = time.perf_counter()
    serial = run_fig2(Fig2Config(**base, n_jobs=1))
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fanned = run_fig2(Fig2Config(**base, n_jobs=n_jobs))
    fanout_s = time.perf_counter() - t0

    assert serial.to_text() == fanned.to_text()

    report(
        "Trial pool — Fig. 2 fan-out (byte-equality)",
        (
            f"n_trials={base['n_trials']}, n_jobs={n_jobs}\n"
            f"serial loop : {serial_s * 1e3:9.1f} ms\n"
            f"trial pool  : {fanout_s * 1e3:9.1f} ms"
        ),
        metrics={
            "n_jobs": n_jobs, "n_trials": base["n_trials"],
            "serial_s": serial_s, "fanout_s": fanout_s,
        },
    )
