"""The batch-engine headline benchmark: scalar path vs batched kernels.

The workload is the inner loop of every Monte-Carlo experiment in the paper:
draw ``m`` Mallows samples around a centre and compute the Two-Sided
Infeasible Index of every sample.  The *scalar path* is the pre-batch-engine
implementation — per-sample Python list insertions to materialize each
ranking plus one scalar kernel call per sample; the *batch path* is
:func:`sample_mallows_batch` + :func:`repro.batch.batch_infeasible_index`.

``test_batch_engine_speedup`` asserts the batch path is ≥10× faster at the
paper-scale workload (m = 10 000 samples, n = 50 items) — this is the loud
perf-regression tripwire; under ``--fast`` the workload shrinks and the
threshold relaxes so the CI smoke job stays quick yet still catches
order-of-magnitude regressions.

PR-2 additions: the distance-metric kernels race their scalar loops the same
way, the ``n_jobs`` fan-out runs the m=10k pipeline sharded across workers
(byte-equality always asserted; ≥2× wall-clock at ``n_jobs=4`` on ≥4-core
machines; the ``--fast`` smoke exercises ``n_jobs=2``), and the kernel cache
must serve repeated value-equal constraints from memory.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.batch import (
    DEFAULT_CACHE,
    batch_cayley,
    batch_footrule,
    batch_hamming,
    batch_infeasible_index,
    batch_kendall_tau,
    batch_spearman,
    batch_ulam,
    mallows_sample_and_score,
)
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.groups.attributes import GroupAssignment
from repro.mallows.sampling import _displacement_draws, sample_mallows_batch
from repro.rankings.distances import (
    cayley_distance,
    footrule_distance,
    hamming_distance,
    kendall_tau_distance,
    spearman_distance,
    ulam_distance,
)
from repro.rankings.permutation import Ranking, random_ranking

N_ITEMS = 50
THETA = 0.5
SEED = 2024


# -- the historical scalar path, kept verbatim as the baseline ----------------


def _scalar_orders_from_displacements(
    center_order: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Pre-engine sample materialization: per-sample list insertions.

    Deliberate twin of ``_legacy_orders_from_displacements`` in
    ``tests/test_batch_equivalence.py`` (benchmarks and tests cannot import
    each other); each copy is pinned against the vectorized decode by its
    own exact-equality assertion, so drift in either is caught.
    """
    m, n = v.shape
    out = np.empty((m, n), dtype=np.int64)
    center_list = center_order.tolist()
    for s in range(m):
        current: list[int] = []
        row = v[s]
        for j in range(n):
            current.insert(j - int(row[j]), center_list[j])
        out[s] = current
    return out


def _scalar_pipeline(
    center: Ranking,
    m: int,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> np.ndarray:
    """Sample + score one ranking at a time (the pre-engine experiment loop)."""
    rng = np.random.default_rng(SEED)
    v = _displacement_draws(len(center), THETA, m, rng)
    orders = _scalar_orders_from_displacements(center.order, v)
    return np.array(
        [infeasible_index(Ranking(row), groups, constraints) for row in orders],
        dtype=np.int64,
    )


def _batch_pipeline(
    center: Ranking,
    m: int,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> np.ndarray:
    """The batched engine: vectorized materialization + one kernel call."""
    orders = sample_mallows_batch(center, THETA, m, seed=SEED)
    return batch_infeasible_index(orders, groups, constraints)


@pytest.fixture(scope="module")
def workload():
    center = random_ranking(N_ITEMS, seed=0)
    groups = GroupAssignment.from_indices(
        np.arange(N_ITEMS, dtype=np.int64) % 2
    )
    constraints = FairnessConstraints.proportional(groups)
    return center, groups, constraints


def test_batch_engine_speedup(workload, fast_mode, report):
    """Sampling + per-sample Infeasible Index: batch must beat scalar ≥10×
    (≥4× under the shrunken ``--fast`` smoke workload)."""
    center, groups, constraints = workload
    m = 2_000 if fast_mode else 10_000
    threshold = 4.0 if fast_mode else 10.0

    t0 = time.perf_counter()
    scalar_iis = _scalar_pipeline(center, m, groups, constraints)
    scalar_s = time.perf_counter() - t0

    batch_s = np.inf
    for _ in range(3):  # best-of-3 damps scheduler noise on CI runners
        t0 = time.perf_counter()
        batch_iis = _batch_pipeline(center, m, groups, constraints)
        batch_s = min(batch_s, time.perf_counter() - t0)

    # Same seed, same draws: the engines must agree exactly before any
    # speed claim means anything.
    assert np.array_equal(scalar_iis, batch_iis)

    speedup = scalar_s / batch_s
    report(
        "Batch engine — sampling + per-sample Infeasible Index",
        (
            f"m={m} samples, n={N_ITEMS} items, theta={THETA}\n"
            f"scalar path : {scalar_s * 1e3:9.1f} ms\n"
            f"batch path  : {batch_s * 1e3:9.1f} ms\n"
            f"speedup     : {speedup:9.1f}x (required >= {threshold:g}x)"
        ),
        metrics={
            "m": m, "n": N_ITEMS, "scalar_s": scalar_s, "batch_s": batch_s,
            "speedup": speedup,
        },
    )
    assert speedup >= threshold, (
        f"batch engine only {speedup:.1f}x faster than the scalar path "
        f"(required >= {threshold:g}x at m={m}, n={N_ITEMS})"
    )


def test_batch_kendall_speedup(workload, fast_mode, report):
    """Many-vs-one Kendall tau: batched inversion counting vs the scalar
    O(n log n) kernel called per sample."""
    center, _, _ = workload
    m = 1_000 if fast_mode else 5_000
    threshold = 3.0 if fast_mode else 8.0
    orders = sample_mallows_batch(center, THETA, m, seed=SEED + 1)

    t0 = time.perf_counter()
    scalar_d = np.array(
        [kendall_tau_distance(Ranking(row), center) for row in orders],
        dtype=np.int64,
    )
    scalar_s = time.perf_counter() - t0

    batch_s = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        batch_d = batch_kendall_tau(orders, center)
        batch_s = min(batch_s, time.perf_counter() - t0)

    assert np.array_equal(scalar_d, batch_d)
    speedup = scalar_s / batch_s
    report(
        "Batch engine — many-vs-one Kendall tau",
        (
            f"m={m} samples, n={N_ITEMS} items\n"
            f"scalar path : {scalar_s * 1e3:9.1f} ms\n"
            f"batch path  : {batch_s * 1e3:9.1f} ms\n"
            f"speedup     : {speedup:9.1f}x (required >= {threshold:g}x)"
        ),
        metrics={
            "m": m, "n": N_ITEMS, "scalar_s": scalar_s, "batch_s": batch_s,
            "speedup": speedup,
        },
    )
    assert speedup >= threshold


def test_batch_distance_kernels_speedup(workload, fast_mode, report):
    """The PR-2 metric kernels (footrule/Spearman/Hamming/Cayley/Ulam) vs
    one scalar call per sample, summed across all five metrics."""
    center, _, _ = workload
    m = 500 if fast_mode else 2_000
    threshold = 3.0 if fast_mode else 5.0
    orders = sample_mallows_batch(center, THETA, m, seed=SEED + 2)
    pairs = (
        (batch_footrule, footrule_distance),
        (batch_spearman, spearman_distance),
        (batch_hamming, hamming_distance),
        (batch_cayley, cayley_distance),
        (batch_ulam, ulam_distance),
    )

    t0 = time.perf_counter()
    scalar_results = [
        np.array([scalar_fn(Ranking(row), center) for row in orders])
        for _batch_fn, scalar_fn in pairs
    ]
    scalar_s = time.perf_counter() - t0

    batch_s = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        batch_results = [batch_fn(orders, center) for batch_fn, _ in pairs]
        batch_s = min(batch_s, time.perf_counter() - t0)

    for got, expected, (batch_fn, _) in zip(batch_results, scalar_results, pairs):
        assert np.array_equal(got, expected), batch_fn.__name__

    speedup = scalar_s / batch_s
    report(
        "Batch engine — distance kernels (footrule/Spearman/Hamming/Cayley/Ulam)",
        (
            f"m={m} samples, n={N_ITEMS} items, 5 metrics\n"
            f"scalar path : {scalar_s * 1e3:9.1f} ms\n"
            f"batch path  : {batch_s * 1e3:9.1f} ms\n"
            f"speedup     : {speedup:9.1f}x (required >= {threshold:g}x)"
        ),
        metrics={
            "m": m, "n": N_ITEMS, "scalar_s": scalar_s, "batch_s": batch_s,
            "speedup": speedup,
        },
    )
    assert speedup >= threshold


def test_parallel_pipeline_fanout(workload, fast_mode, report):
    """The n_jobs sharder on the m=10k sampling + Infeasible Index pipeline.

    Always asserts byte-identical output across worker counts (the CI
    ``--fast`` smoke runs this with n_jobs=2, so fan-out regressions fail
    loudly); the >= 2x wall-clock assertion at n_jobs=4 applies on machines
    with at least 4 cores.
    """
    center, groups, constraints = workload
    m = 2_000 if fast_mode else 10_000
    n_jobs = 2 if fast_mode else 4
    cores = os.cpu_count() or 1

    t0 = time.perf_counter()
    single = mallows_sample_and_score(
        center, THETA, m, groups=groups, constraints=constraints,
        seed=SEED, n_jobs=1,
    )
    single_s = time.perf_counter() - t0

    fanout_s = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        fanned = mallows_sample_and_score(
            center, THETA, m, groups=groups, constraints=constraints,
            seed=SEED, n_jobs=n_jobs,
        )
        fanout_s = min(fanout_s, time.perf_counter() - t0)

    # Fan-out must never change results.
    assert np.array_equal(single.infeasible_index, fanned.infeasible_index)

    speedup = single_s / fanout_s
    report(
        "Batch engine — n_jobs fan-out (sampling + Infeasible Index)",
        (
            f"m={m} samples, n={N_ITEMS} items, n_jobs={n_jobs} "
            f"({cores} cores available)\n"
            f"single process : {single_s * 1e3:9.1f} ms\n"
            f"fan-out        : {fanout_s * 1e3:9.1f} ms\n"
            f"speedup        : {speedup:9.2f}x\n"
            f"kernel cache   : {DEFAULT_CACHE.stats().summary()}"
        ),
        metrics={
            "m": m, "n": N_ITEMS, "n_jobs": n_jobs, "cores": cores,
            "single_s": single_s, "fanout_s": fanout_s, "speedup": speedup,
            "fanout_assertion_active": not fast_mode and cores >= 4,
        },
    )
    if not fast_mode and cores >= 4:
        assert speedup >= 2.0, (
            f"n_jobs={n_jobs} only {speedup:.2f}x faster than single-process "
            f"at m={m}, n={N_ITEMS} on {cores} cores (required >= 2x)"
        )


def test_kernel_cache_effectiveness(workload, report):
    """Repeated kernel calls with value-equal constraints must hit the
    bounds cache instead of rebuilding the prefix bound matrices."""
    center, groups, constraints = workload
    orders = sample_mallows_batch(center, THETA, 200, seed=SEED + 3)
    DEFAULT_CACHE.clear()
    for _ in range(10):
        # Fresh constraints objects, as the experiment loops build them.
        batch_infeasible_index(
            orders, groups, FairnessConstraints.proportional(groups)
        )
    stats = DEFAULT_CACHE.stats()
    report(
        "Batch engine — kernel cache (10 repeats, rebuilt constraints)",
        stats.summary(),
    )
    assert stats.bounds_misses == 1
    assert stats.bounds_hits == 9


def test_bench_batch_sampling_10k(benchmark, fast_mode, workload):
    center, _, _ = workload
    m = 2_000 if fast_mode else 10_000
    orders = benchmark(sample_mallows_batch, center, THETA, m, SEED)
    assert orders.shape == (m, N_ITEMS)


def test_bench_batch_infeasible_index_10k(benchmark, fast_mode, workload):
    center, groups, constraints = workload
    m = 2_000 if fast_mode else 10_000
    orders = sample_mallows_batch(center, THETA, m, seed=SEED)
    iis = benchmark(batch_infeasible_index, orders, groups, constraints)
    assert iis.shape == (m,)


def test_bench_batch_kendall_many_vs_one_10k(benchmark, fast_mode, workload):
    center, _, _ = workload
    m = 2_000 if fast_mode else 10_000
    orders = sample_mallows_batch(center, THETA, m, seed=SEED)
    dists = benchmark(batch_kendall_tau, orders, center)
    assert dists.shape == (m,)
