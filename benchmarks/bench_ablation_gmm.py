"""Ablation: Generalized Mallows dispersion profiles vs the flat profile.

Compares three noise shapes at matched sample budgets on the German Credit
workload: the paper's flat theta, a head-shuffle profile (randomize the top,
freeze the tail) and a tail-shuffle profile (freeze the top, randomize the
tail).  Reports fairness on the known and unknown attributes plus NDCG —
the concrete payoff of the paper's "tuning parameters within the noise
distribution" future work.
"""

import numpy as np

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.gmm_postprocess import GeneralizedMallowsFairRanking
from repro.datasets.german_credit import synthesize_german_credit
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.construction import weakly_fair_ranking
from repro.fairness.infeasible_index import percent_fair_positions
from repro.mallows.generalized import dispersion_profile
from repro.rankings.quality import ndcg
from repro.utils.tables import format_table

N = 40
N_TRIALS = 20
M = 15


def _run_comparison():
    data = synthesize_german_credit(seed=0).subsample(N, seed=8)
    fc_known = FairnessConstraints.proportional(data.age_sex)
    fc_unknown = FairnessConstraints.proportional(data.housing)
    base = weakly_fair_ranking(data.credit_amount, data.age_sex, fc_known)
    problem = FairRankingProblem(
        base_ranking=base, scores=data.credit_amount,
        groups=data.age_sex, constraints=fc_known,
    )
    half = N // 2
    profiles = {
        "flat theta=0.5": 0.5,
        "head shuffle": dispersion_profile(N, 0.1, 2.0, split=half),
        "tail shuffle": dispersion_profile(N, 2.0, 0.1, split=half),
    }
    rows = []
    stats = {}
    for name, thetas in profiles.items():
        alg = GeneralizedMallowsFairRanking(thetas, n_samples=M)
        ndcgs, pk, pu = [], [], []
        for s in range(N_TRIALS):
            result = alg.rank(problem, seed=s)
            ndcgs.append(ndcg(result.ranking, data.credit_amount))
            pk.append(
                percent_fair_positions(result.ranking, data.age_sex, fc_known)
            )
            pu.append(
                percent_fair_positions(result.ranking, data.housing, fc_unknown)
            )
        stats[name] = (np.mean(ndcgs), np.mean(pk), np.mean(pu))
        rows.append(
            [name, float(np.mean(ndcgs)), float(np.mean(pk)), float(np.mean(pu))]
        )
    return rows, stats


def test_ablation_gmm_profiles(benchmark, report):
    rows, stats = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    text = format_table(
        ["profile", "mean NDCG", "PPfair Age-Sex", "PPfair Housing"],
        rows,
        title=f"Ablation: GMM dispersion profiles (n={N}, best of {M})",
    )
    report("Ablation — Generalized Mallows profiles", text)

    for name, (nd, _pk, _pu) in stats.items():
        assert 0.5 <= nd <= 1.0, name
