"""Figure 3 benchmark: Infeasible Index of Mallows samples vs theta, per
delta (the fairness half of the trade-off)."""

import pytest

from repro.experiments.config import Fig34Config
from repro.experiments.fig34_tradeoff import run_fig34

CONFIG = Fig34Config(
    deltas=(0.0, 0.3, 0.6, 1.0),
    thetas=(0.1, 0.25, 0.5, 1.0, 2.0, 4.0),
    n_trials=50,
    samples_per_trial=20,
    n_bootstrap=1000,
    seed=2024,
)


def test_fig3_sample_infeasible_index(benchmark, report):
    result = benchmark.pedantic(run_fig34, args=(CONFIG,), rounds=1, iterations=1)
    report("Fig.3 — sample Infeasible Index vs theta, per delta", result.to_text_fig3())

    for delta in CONFIG.deltas:
        per_theta = result.sample_ii[delta]
        # Sample II converges to the central ranking's own II.
        assert per_theta[4.0].estimate == pytest.approx(
            result.central_ii[delta], abs=1.5
        )
    # For the maximally unfair centre, randomization repairs fairness.
    assert result.sample_ii[1.0][0.1].estimate < result.central_ii[1.0] - 5
