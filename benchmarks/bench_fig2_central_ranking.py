"""Figure 2 benchmark: Infeasible Index of the score-sorted central ranking
as the group score shift delta grows."""

from repro.experiments.config import Fig2Config
from repro.experiments.fig2_central_ii import run_fig2

CONFIG = Fig2Config(
    deltas=tuple(round(0.1 * i, 1) for i in range(11)),
    n_trials=200,
    n_bootstrap=1000,
    seed=2024,
)


def test_fig2_central_ranking_ii(benchmark, report):
    result = benchmark.pedantic(run_fig2, args=(CONFIG,), rounds=1, iterations=1)
    report("Fig.2 — central-ranking Infeasible Index vs delta", result.to_text())

    estimates = [r.estimate for r in result.central_ii.values()]
    # Segregation (and hence the II) grows with the score shift …
    assert estimates[0] < estimates[5] < estimates[10]
    # … and saturates at the maximum for fully separated distributions.
    assert estimates[10] == 14.0
