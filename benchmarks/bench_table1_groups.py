"""Table I benchmark: regenerate the German Credit group distribution."""

from repro.datasets.german_credit import GERMAN_CREDIT_TABLE1, synthesize_german_credit
from repro.experiments.german_credit_exp import run_table1


def test_table1_group_distribution(benchmark, report, german_credit_data):
    text = benchmark.pedantic(
        run_table1, args=(german_credit_data,), rounds=1, iterations=1
    )
    report("Table I — German Credit group distribution", text)

    # The replica's joint counts must equal the paper's Table I exactly.
    assert german_credit_data.joint_counts() == GERMAN_CREDIT_TABLE1
    assert "1000" in text


def test_table1_synthesis_throughput(benchmark):
    """Micro-benchmark: building the 1000-applicant replica from scratch."""
    data = benchmark(synthesize_german_credit, seed=1)
    assert data.n_items == 1000
