"""Benchmark: the fairness/efficiency frontier computation.

Times one full frontier sweep at German Credit scale and reports the
resulting operating-point table (II metric and exposure metric).
"""

from repro.datasets.german_credit import synthesize_german_credit
from repro.experiments.frontier import compute_tradeoff_frontier
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.construction import weakly_fair_ranking

N = 50
THETAS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0)


def _setup():
    data = synthesize_german_credit(seed=0).subsample(N, seed=9)
    fc = FairnessConstraints.proportional(data.age_sex)
    base = weakly_fair_ranking(data.credit_amount, data.age_sex, fc)
    return data, base


def test_frontier_infeasible_index(benchmark, report):
    data, base = _setup()
    fc_housing = FairnessConstraints.proportional(data.housing)

    frontier = benchmark.pedantic(
        compute_tradeoff_frontier,
        args=(base, data.credit_amount, data.housing),
        kwargs={
            "constraints": fc_housing,
            "thetas": THETAS,
            "m": 400,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    report("Frontier — Infeasible Index vs NDCG (unknown attribute)", frontier.to_text())

    ndcgs = [p.ndcg for p in frontier.points]
    assert ndcgs == sorted(ndcgs)
    assert frontier.pareto_points()


def test_frontier_exposure(benchmark, report):
    data, base = _setup()
    frontier = benchmark.pedantic(
        compute_tradeoff_frontier,
        args=(base, data.credit_amount, data.housing),
        kwargs={"thetas": THETAS, "m": 200, "metric": "exposure-gap", "seed": 1},
        rounds=1,
        iterations=1,
    )
    report("Frontier — exposure parity gap vs NDCG", frontier.to_text())
    assert frontier.metric == "exposure-gap"
