"""Ablation: the dispersion knob theta, plus the future-work auto-tuner.

Sweeps theta over a wide range on the German Credit workload, reporting the
fairness (known & unknown attribute) / efficiency frontier, and exercises
the tuner that picks the smallest theta meeting an NDCG target.
"""

import numpy as np

from repro.algorithms.base import FairRankingProblem
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.algorithms.tuning import tune_theta_for_ndcg
from repro.datasets.german_credit import synthesize_german_credit
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.construction import weakly_fair_ranking
from repro.fairness.infeasible_index import percent_fair_positions
from repro.rankings.quality import ndcg
from repro.utils.tables import format_series

THETAS = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0)
N_TRIALS = 20


def _run_sweep():
    data = synthesize_german_credit(seed=0).subsample(40, seed=3)
    fc = FairnessConstraints.proportional(data.age_sex)
    fc_housing = FairnessConstraints.proportional(data.housing)
    base = weakly_fair_ranking(data.credit_amount, data.age_sex, fc)
    problem = FairRankingProblem(
        base_ranking=base, scores=data.credit_amount,
        groups=data.age_sex, constraints=fc,
    )
    rows = {}
    for theta in THETAS:
        alg = MallowsFairRanking(theta, n_samples=15)
        ndcgs, pk, pu = [], [], []
        for s in range(N_TRIALS):
            result = alg.rank(problem, seed=s)
            ndcgs.append(ndcg(result.ranking, data.credit_amount))
            pk.append(percent_fair_positions(result.ranking, data.age_sex, fc))
            pu.append(
                percent_fair_positions(result.ranking, data.housing, fc_housing)
            )
        rows[theta] = (
            float(np.mean(ndcgs)),
            float(np.mean(pk)),
            float(np.mean(pu)),
        )
    return rows, problem


def test_ablation_theta_sweep(benchmark, report):
    rows, problem = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    text = format_series(
        [f"{t:g}" for t in rows],
        {
            "mean NDCG": [v[0] for v in rows.values()],
            "PPfair Age-Sex": [v[1] for v in rows.values()],
            "PPfair Housing": [v[2] for v in rows.values()],
        },
        x_label="theta",
        title="Ablation: dispersion theta (best of 15, NDCG criterion)",
    )
    report("Ablation — dispersion theta", text)

    # NDCG rises with theta up to saturation; near 1.0 the best-of-15
    # selection leaves only Monte-Carlo jitter, so allow a small slack.
    ndcgs = [v[0] for v in rows.values()]
    assert all(b >= a - 0.005 for a, b in zip(ndcgs, ndcgs[1:])), ndcgs
    assert ndcgs[-1] > ndcgs[0]

    # The future-work tuner: smallest theta reaching NDCG 0.97 lies inside
    # the swept bracket and indeed achieves the target.
    theta_star = tune_theta_for_ndcg(
        problem.base_ranking, problem.scores, 0.97, m=150, seed=0
    )
    assert 0.0 <= theta_star <= 20.0


def test_theta_tuner_runtime(benchmark):
    """Micro-benchmark: one full sampled-bisection tuner call."""
    data = synthesize_german_credit(seed=0).subsample(30, seed=4)
    fc = FairnessConstraints.proportional(data.age_sex)
    base = weakly_fair_ranking(data.credit_amount, data.age_sex, fc)
    theta = benchmark.pedantic(
        tune_theta_for_ndcg,
        args=(base, data.credit_amount, 0.95),
        kwargs={"m": 100, "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert theta >= 0.0
