"""Figure 5 benchmark: median % P-fair positions w.r.t. the *known* Age−Sex
attribute, all four (theta, sigma) panels.

The panels themselves are computed once per session (shared with Figs. 6
and 7); this benchmark times one representative panel computation at a
reduced scale so the timing reflects the real pipeline.
"""

from benchmarks.conftest import PANEL_PARAMS
from repro.experiments.config import GermanCreditConfig
from repro.experiments.german_credit_exp import run_german_credit

TIMING_CONFIG = GermanCreditConfig(
    theta=0.5,
    noise_sigma=0.0,
    sizes=(10, 30, 50),
    n_repeats=5,
    n_bootstrap=200,
    seed=11,
)


def test_fig5_ppfair_known_attribute(benchmark, report, german_panels, german_credit_data):
    benchmark.pedantic(
        run_german_credit,
        args=(TIMING_CONFIG,),
        kwargs={"data": german_credit_data},
        rounds=1,
        iterations=1,
    )
    for params in PANEL_PARAMS:
        panel = german_panels[params]
        report(
            f"Fig.5 panel theta={params[0]:g} sigma={params[1]:g} "
            "— PPfair w.r.t. Age-Sex (known)",
            panel.to_text_fig5(),
        )

    # Paper shape: without constraint noise, the attribute-aware exact
    # methods keep the known attribute's fairness near-perfect at all sizes.
    for params in ((0.5, 0.0), (1.0, 0.0)):
        panel = german_panels[params]
        for size in panel.sizes:
            assert panel.ppfair_known["ILP"][size].estimate >= 95.0
            assert panel.ppfair_known["ApproxMultiValuedIPF"][size].estimate >= 95.0
