"""Benchmark-suite plumbing.

Three services for the per-figure benchmark files:

* session-scoped caches of expensive shared computations (the four German
  Credit panels feed Figs. 5, 6 and 7);
* a ``report`` fixture collecting the rendered series of every artefact —
  and, optionally, machine-readable metrics — printed in the terminal
  summary so they appear in ``pytest benchmarks/ --benchmark-only`` output
  despite stdout capture;
* ``--json PATH``: dump every collected metric (the ``report`` fixture's
  ``metrics`` dicts plus the ``benchmark`` fixture's timing stats) as one
  JSON document, so per-PR perf trajectories (``BENCH_*.json``) can be
  recorded and diffed across commits.
"""

from __future__ import annotations

import json
import os
import platform
import time

import pytest

from repro.datasets.german_credit import synthesize_german_credit
from repro.experiments.config import GermanCreditConfig
from repro.experiments.german_credit_exp import run_german_credit

#: (title, text, metrics) reports accumulated across the benchmark session.
_REPORTS: list[tuple[str, str, dict | None]] = []


def pytest_addoption(parser):
    """``--fast``: shrink benchmark workloads to smoke-test size.

    Used by the CI perf-smoke job: the batch-engine benchmarks keep their
    speedup assertions (with a looser threshold) so a regression in the
    batched kernels fails the build instead of silently landing.

    ``--json PATH``: write machine-readable timing results to ``PATH``.
    """
    parser.addoption(
        "--fast",
        action="store_true",
        default=False,
        help="run shrunken benchmark workloads with relaxed perf thresholds",
    )
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        dest="json_path",
        help=(
            "write collected benchmark metrics (report-fixture metrics + "
            "pytest-benchmark stats) to PATH as JSON"
        ),
    )


@pytest.fixture(scope="session")
def fast_mode(request) -> bool:
    """Whether ``--fast`` smoke sizing is active."""
    return bool(request.config.getoption("--fast"))

#: The paper's four panels: (theta, sigma).
PANEL_PARAMS = ((0.5, 0.0), (1.0, 0.0), (0.5, 1.0), (1.0, 1.0))

#: Benchmark-scale knobs for the German Credit sweeps: the full paper
#: protocol (10 sizes x 15 repeats x 1000 bootstrap) per panel; identical
#: workload shape to the paper.
PANEL_CONFIGS = {
    (theta, sigma): GermanCreditConfig(
        theta=theta,
        noise_sigma=sigma,
        sizes=(10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
        n_repeats=15,
        n_bootstrap=1000,
        seed=2024,
    )
    for theta, sigma in PANEL_PARAMS
}


@pytest.fixture(scope="session")
def german_credit_data():
    """The 1000-applicant German Credit replica, built once."""
    return synthesize_german_credit(seed=0)


@pytest.fixture(scope="session")
def german_panels(german_credit_data):
    """All four (theta, sigma) panels, computed once per session."""
    return {
        params: run_german_credit(cfg, data=german_credit_data)
        for params, cfg in PANEL_CONFIGS.items()
    }


@pytest.fixture
def report():
    """Collect a rendered artefact for the end-of-run summary.

    The optional ``metrics`` mapping (plain JSON-serializable scalars, e.g.
    ``{"speedup": 2.3, "n_jobs": 4}``) feeds the ``--json`` dump.
    """

    def _add(title: str, text: str, metrics: dict | None = None) -> None:
        _REPORTS.append((title, text, metrics))

    return _add


def _benchmark_fixture_records(config) -> list[dict]:
    """Timing stats of every ``benchmark``-fixture run, as plain dicts.

    Reads pytest-benchmark's session object defensively: under
    ``--benchmark-disable`` (the CI smoke lane) fixtures record no stats,
    and those entries are skipped rather than dumped as nulls.
    """
    session = getattr(config, "_benchmarksession", None)
    records: list[dict] = []
    for bench in getattr(session, "benchmarks", []) or []:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        record = {"name": getattr(bench, "fullname", getattr(bench, "name", "?"))}
        for field in ("min", "max", "mean", "stddev", "median", "rounds"):
            value = getattr(stats, field, None)
            if value is not None:
                record[field] = value
        records.append(record)
    return records


def _write_json_results(config, path: str) -> None:
    payload = {
        "schema": "repro-bench/1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "fast": bool(config.getoption("--fast")),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            # The fan-out speedup assertions are gated on >= 4 cores;
            # recording the host's count makes the committed BENCH_*.json
            # trajectory interpretable on few-core CI hosts.
            "cpu_count": os.cpu_count(),
        },
        "reports": [
            {"title": title, "metrics": metrics}
            for title, _text, metrics in _REPORTS
            if metrics is not None
        ],
        "benchmarks": _benchmark_fixture_records(config),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def pytest_terminal_summary(terminalreporter):
    """Print every collected figure/table series after the benchmark table,
    and honour ``--json`` with a machine-readable dump."""
    tr = terminalreporter
    json_path = tr.config.getoption("json_path", None)
    if json_path:
        _write_json_results(tr.config, json_path)
        tr.write_line(f"benchmark metrics written to {json_path}")
    if not _REPORTS:
        return
    tr.write_sep("=", "reproduced paper artefacts")
    for title, text, _metrics in _REPORTS:
        tr.write_line("")
        tr.write_sep("-", title)
        for line in text.splitlines():
            tr.write_line(line)
