"""Benchmark-suite plumbing.

Two services for the per-figure benchmark files:

* session-scoped caches of expensive shared computations (the four German
  Credit panels feed Figs. 5, 6 and 7);
* a ``report`` fixture collecting the rendered series of every artefact;
  the collected reports are printed in the terminal summary, so they appear
  in ``pytest benchmarks/ --benchmark-only`` output despite stdout capture.
"""

from __future__ import annotations

import pytest

from repro.datasets.german_credit import synthesize_german_credit
from repro.experiments.config import GermanCreditConfig
from repro.experiments.german_credit_exp import run_german_credit

#: (title, text) reports accumulated across the whole benchmark session.
_REPORTS: list[tuple[str, str]] = []


def pytest_addoption(parser):
    """``--fast``: shrink benchmark workloads to smoke-test size.

    Used by the CI perf-smoke job: the batch-engine benchmarks keep their
    speedup assertions (with a looser threshold) so a regression in the
    batched kernels fails the build instead of silently landing.
    """
    parser.addoption(
        "--fast",
        action="store_true",
        default=False,
        help="run shrunken benchmark workloads with relaxed perf thresholds",
    )


@pytest.fixture(scope="session")
def fast_mode(request) -> bool:
    """Whether ``--fast`` smoke sizing is active."""
    return bool(request.config.getoption("--fast"))

#: The paper's four panels: (theta, sigma).
PANEL_PARAMS = ((0.5, 0.0), (1.0, 0.0), (0.5, 1.0), (1.0, 1.0))

#: Benchmark-scale knobs for the German Credit sweeps: the full paper
#: protocol (10 sizes x 15 repeats x 1000 bootstrap) per panel; identical
#: workload shape to the paper.
PANEL_CONFIGS = {
    (theta, sigma): GermanCreditConfig(
        theta=theta,
        noise_sigma=sigma,
        sizes=(10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
        n_repeats=15,
        n_bootstrap=1000,
        seed=2024,
    )
    for theta, sigma in PANEL_PARAMS
}


@pytest.fixture(scope="session")
def german_credit_data():
    """The 1000-applicant German Credit replica, built once."""
    return synthesize_german_credit(seed=0)


@pytest.fixture(scope="session")
def german_panels(german_credit_data):
    """All four (theta, sigma) panels, computed once per session."""
    return {
        params: run_german_credit(cfg, data=german_credit_data)
        for params, cfg in PANEL_CONFIGS.items()
    }


@pytest.fixture
def report():
    """Collect a rendered artefact for the end-of-run summary."""

    def _add(title: str, text: str) -> None:
        _REPORTS.append((title, text))

    return _add


def pytest_terminal_summary(terminalreporter):
    """Print every collected figure/table series after the benchmark table."""
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.write_sep("=", "reproduced paper artefacts")
    for title, text in _REPORTS:
        tr.write_line("")
        tr.write_sep("-", title)
        for line in text.splitlines():
            tr.write_line(line)
