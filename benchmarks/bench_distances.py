"""Substrate micro-benchmarks: rank distance kernels.

Times the O(n log n) Kendall tau against the quadratic reference and the
other metrics at the paper's largest ranking size and beyond.
"""

import numpy as np
import pytest

from repro.rankings.distances import (
    footrule_distance,
    kendall_tau_distance,
    kendall_tau_distance_naive,
    spearman_distance,
    ulam_distance,
)
from repro.rankings.permutation import random_ranking


@pytest.fixture(scope="module")
def pair_100():
    return random_ranking(100, seed=0), random_ranking(100, seed=1)


@pytest.fixture(scope="module")
def pair_2000():
    return random_ranking(2000, seed=0), random_ranking(2000, seed=1)


def test_kendall_tau_fast_n100(benchmark, pair_100):
    p, q = pair_100
    d = benchmark(kendall_tau_distance, p, q)
    assert d == kendall_tau_distance_naive(p, q)


def test_kendall_tau_naive_n100(benchmark, pair_100):
    p, q = pair_100
    benchmark(kendall_tau_distance_naive, p, q)


def test_kendall_tau_fast_n2000(benchmark, pair_2000):
    p, q = pair_2000
    d = benchmark(kendall_tau_distance, p, q)
    assert 0 < d < 2000 * 1999 // 2


def test_footrule_n2000(benchmark, pair_2000):
    p, q = pair_2000
    benchmark(footrule_distance, p, q)


def test_spearman_n2000(benchmark, pair_2000):
    p, q = pair_2000
    benchmark(spearman_distance, p, q)


def test_ulam_n2000(benchmark, pair_2000):
    p, q = pair_2000
    benchmark(ulam_distance, p, q)


@pytest.fixture(scope="module")
def mallows_batch_10k():
    from repro.mallows.sampling import sample_mallows_batch

    center = random_ranking(50, seed=2)
    return center, sample_mallows_batch(center, 0.5, 10_000, seed=3)


def test_kendall_tau_batch_many_vs_one_10k(benchmark, mallows_batch_10k):
    """Batched inversion counting: 10k samples against one reference."""
    from repro.batch import batch_kendall_tau

    center, orders = mallows_batch_10k
    d = benchmark(batch_kendall_tau, orders, center)
    assert d.shape == (10_000,)


def test_kendall_tau_batch_pairwise_10k(benchmark, mallows_batch_10k):
    """Row-aligned many-vs-many Kendall tau over 10k pairs."""
    from repro.batch import batch_kendall_tau_pairwise

    center, orders = mallows_batch_10k
    d = benchmark(batch_kendall_tau_pairwise, orders, orders[::-1])
    assert d.shape == (10_000,)
