"""Experiment-level scheduler benchmarks: the whole pipeline on one pool.

PR 3 left ``run_all --jobs N`` parallel only *inside* each figure's loops;
the scheduler (:mod:`repro.batch.schedule`) flattens the seven figure
experiments, Table I, and all four German Credit panels into one task graph
on a single shared pool.  This file is the perf tripwire for that:

* the full-pipeline digest (:func:`reports_digest`) must be byte-identical
  across worker counts — always asserted, and the CI ``--fast`` smoke runs
  it at ``n_jobs=2`` so a seed-tree or scheduling regression fails the
  build loudly;
* ``run_all(fast=True, n_jobs=4)`` must be >= 2x faster than the serial
  pipeline on machines with at least 4 cores;
* the ``n_trials < n_jobs`` clamp must keep a heavy few-repeat German
  Credit loop parallel instead of silently running it inline.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.batch import run_trials
from repro.datasets.german_credit import synthesize_german_credit
from repro.experiments.config import GermanCreditConfig
from repro.experiments.german_credit_exp import _one_repeat
from repro.experiments.runner import reports_digest, run_all

SEED = 2024


def test_run_all_scheduler_fanout(fast_mode, report):
    """The acceptance case: whole-pipeline fan-out, byte-equal and >= 2x."""
    n_jobs = 2 if fast_mode else 4
    cores = os.cpu_count() or 1

    t0 = time.perf_counter()
    serial_digest = reports_digest(run_all(fast=True, n_jobs=1))
    serial_s = time.perf_counter() - t0

    fanout_s = float("inf")
    fanned_digest = None
    for _ in range(1 if fast_mode else 2):
        t0 = time.perf_counter()
        fanned_digest = reports_digest(run_all(fast=True, n_jobs=n_jobs))
        fanout_s = min(fanout_s, time.perf_counter() - t0)

    # Scheduling must never change results: the full report set byte-equal.
    assert fanned_digest == serial_digest

    speedup = serial_s / fanout_s
    report(
        "Scheduler — run_all(fast=True) whole-pipeline fan-out",
        (
            f"n_jobs={n_jobs} ({cores} cores available)\n"
            f"serial pipeline    : {serial_s * 1e3:9.1f} ms\n"
            f"scheduled pipeline : {fanout_s * 1e3:9.1f} ms\n"
            f"speedup            : {speedup:9.2f}x\n"
            f"digest             : {serial_digest[:16]}… (byte-equal)"
        ),
        metrics={
            "n_jobs": n_jobs, "cores": cores, "serial_s": serial_s,
            "fanout_s": fanout_s, "speedup": speedup,
            "digest": serial_digest,
            "fanout_assertion_active": not fast_mode and cores >= 4,
        },
    )
    if not fast_mode and cores >= 4:
        assert speedup >= 2.0, (
            f"run_all(fast=True, n_jobs={n_jobs}) only {speedup:.2f}x faster "
            f"than the serial pipeline on {cores} cores (required >= 2x)"
        )


def _heavy_trial(trial_index, rng, data, size, config):
    """One German Credit repeat (subsample + all solvers) as a trial unit —
    the heavy-trial shape the run_trials clamp exists for."""
    del trial_index
    return _one_repeat(data, size, config, rng)


def test_heavy_trials_clamp_stays_parallel(fast_mode, report):
    """The n_trials < n_jobs clamp in ``run_trials`` itself: five heavy
    German Credit repeats under n_jobs=8 must fan out on five workers of
    the shared pool (pre-clamp they fell back to the inline loop)."""
    cores = os.cpu_count() or 1
    data = synthesize_german_credit(seed=0)
    config = GermanCreditConfig(n_repeats=5, seed=SEED)
    size = 50 if fast_mode else 100
    n_trials = config.n_repeats  # 5 < 8 workers: the clamped regime
    payload = (data, size, config)

    t0 = time.perf_counter()
    serial = run_trials(_heavy_trial, n_trials, seed=SEED, n_jobs=1, payload=payload)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    clamped = run_trials(_heavy_trial, n_trials, seed=SEED, n_jobs=8, payload=payload)
    clamp_s = time.perf_counter() - t0

    # The clamp must never change results: identical per-repeat metrics.
    assert serial == clamped

    speedup = serial_s / clamp_s
    report(
        "Trial pool — n_trials=5 clamped fan-out under n_jobs=8",
        (
            f"k={size}, n_trials={n_trials}, n_jobs=8 ({cores} cores available)\n"
            f"serial loop  : {serial_s * 1e3:9.1f} ms\n"
            f"clamped pool : {clamp_s * 1e3:9.1f} ms\n"
            f"speedup      : {speedup:9.2f}x"
        ),
        metrics={
            "cores": cores, "size": size, "n_trials": n_trials,
            "serial_s": serial_s, "clamped_s": clamp_s, "speedup": speedup,
            "fanout_assertion_active": not fast_mode and cores >= 4,
        },
    )
    if not fast_mode and cores >= 4:
        assert speedup >= 1.5, (
            f"clamped 5-trial fan-out only {speedup:.2f}x faster on "
            f"{cores} cores (required >= 1.5x; pre-clamp this ran inline)"
        )


def test_warm_engine_beats_cold(fast_mode, report):
    """Session ownership pays: a warm engine (forked workers, primed
    kernel caches, learned costs) must serve a repeated identical batch
    faster than the cold first pass, with byte-identical responses."""
    from repro.batch.parallel import shutdown_workers
    from repro.engine import RankingEngine, RankingRequest, responses_digest
    from repro.algorithms.base import FairRankingProblem
    from repro.fairness.constraints import FairnessConstraints
    from repro.fairness.construction import weakly_fair_ranking

    cores = os.cpu_count() or 1
    data = synthesize_german_credit(seed=0)
    rng = np.random.default_rng(5)
    size = 100 if fast_mode else 200
    sub = data.subsample(size, seed=rng)
    constraints = FairnessConstraints.proportional(sub.age_sex)
    base = weakly_fair_ranking(
        sub.credit_amount, sub.age_sex, constraints, strong=False
    )
    problem = FairRankingProblem(
        base_ranking=base,
        scores=sub.credit_amount,
        groups=sub.age_sex,
        constraints=constraints,
    )
    requests = [
        RankingRequest(name, problem, params=params)
        for name, params in (
            ("ipf", {}),
            ("dp", {}),
            ("detconstsort", {}),
            ("mallows", {"theta": 0.5, "n_samples": 500}),
        )
    ] * (5 if fast_mode else 15)

    shutdown_workers()  # a truly cold pool: workers fork on first use
    engine = RankingEngine(n_jobs=2)

    t0 = time.perf_counter()
    cold = list(engine.rank_many(requests, seed=SEED))
    cold_s = time.perf_counter() - t0

    # The cold start happens once per session; the warm pass is the steady
    # state, so time it as benchmarks time steady states (best of a few).
    warm_s = float("inf")
    for _ in range(2 if fast_mode else 3):
        t0 = time.perf_counter()
        warm = list(engine.rank_many(requests, seed=SEED))
        warm_s = min(warm_s, time.perf_counter() - t0)

    # Warmth must never change results.
    assert responses_digest(warm) == responses_digest(cold)

    # The session cache serves repeated identical requests: exercise the
    # serial path so the parent-owned counters see the traffic.
    serial = RankingEngine(n_jobs=1)
    list(serial.rank_many(requests, seed=SEED))
    stats = serial.stats()
    assert stats.cache.hits > 0, stats.cache.summary()
    assert 0.0 < stats.utilization <= 1.0

    speedup = cold_s / warm_s
    report(
        "Engine — warm session vs cold start (repeated identical batch)",
        (
            f"{len(requests)} identical requests, n_jobs=2 "
            f"({cores} cores available)\n"
            f"cold engine : {cold_s * 1e3:9.1f} ms (fork + cold caches)\n"
            f"warm engine : {warm_s * 1e3:9.1f} ms\n"
            f"speedup     : {speedup:9.2f}x\n"
            f"serial-path session: {stats.summary()}"
        ),
        metrics={
            "cores": cores, "requests": len(requests), "cold_s": cold_s,
            "warm_s": warm_s, "speedup": speedup,
            "cache_hits": stats.cache.hits,
            "utilization": stats.utilization,
        },
    )
    # The cold pass pays the worker fork (hundreds of ms) on any machine;
    # warmth must win outright.
    assert warm_s < cold_s, (
        f"warm engine ({warm_s * 1e3:.1f} ms) not faster than cold start "
        f"({cold_s * 1e3:.1f} ms)"
    )
