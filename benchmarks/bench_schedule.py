"""Experiment-level scheduler benchmarks: the whole pipeline on one pool.

PR 3 left ``run_all --jobs N`` parallel only *inside* each figure's loops;
the scheduler (:mod:`repro.batch.schedule`) flattens the seven figure
experiments, Table I, and all four German Credit panels into one task graph
on a single shared pool.  This file is the perf tripwire for that:

* the full-pipeline digest (:func:`reports_digest`) must be byte-identical
  across worker counts — always asserted, and the CI ``--fast`` smoke runs
  it at ``n_jobs=2`` so a seed-tree or scheduling regression fails the
  build loudly;
* ``run_all(fast=True, n_jobs=4)`` must be >= 2x faster than the serial
  pipeline on machines with at least 4 cores;
* the ``n_trials < n_jobs`` clamp must keep a heavy few-repeat German
  Credit loop parallel instead of silently running it inline.
"""

from __future__ import annotations

import os
import time

from repro.batch import run_trials
from repro.datasets.german_credit import synthesize_german_credit
from repro.experiments.config import GermanCreditConfig
from repro.experiments.german_credit_exp import _one_repeat
from repro.experiments.runner import reports_digest, run_all

SEED = 2024


def test_run_all_scheduler_fanout(fast_mode, report):
    """The acceptance case: whole-pipeline fan-out, byte-equal and >= 2x."""
    n_jobs = 2 if fast_mode else 4
    cores = os.cpu_count() or 1

    t0 = time.perf_counter()
    serial_digest = reports_digest(run_all(fast=True, n_jobs=1))
    serial_s = time.perf_counter() - t0

    fanout_s = float("inf")
    fanned_digest = None
    for _ in range(1 if fast_mode else 2):
        t0 = time.perf_counter()
        fanned_digest = reports_digest(run_all(fast=True, n_jobs=n_jobs))
        fanout_s = min(fanout_s, time.perf_counter() - t0)

    # Scheduling must never change results: the full report set byte-equal.
    assert fanned_digest == serial_digest

    speedup = serial_s / fanout_s
    report(
        "Scheduler — run_all(fast=True) whole-pipeline fan-out",
        (
            f"n_jobs={n_jobs} ({cores} cores available)\n"
            f"serial pipeline    : {serial_s * 1e3:9.1f} ms\n"
            f"scheduled pipeline : {fanout_s * 1e3:9.1f} ms\n"
            f"speedup            : {speedup:9.2f}x\n"
            f"digest             : {serial_digest[:16]}… (byte-equal)"
        ),
        metrics={
            "n_jobs": n_jobs, "cores": cores, "serial_s": serial_s,
            "fanout_s": fanout_s, "speedup": speedup,
            "digest": serial_digest,
        },
    )
    if not fast_mode and cores >= 4:
        assert speedup >= 2.0, (
            f"run_all(fast=True, n_jobs={n_jobs}) only {speedup:.2f}x faster "
            f"than the serial pipeline on {cores} cores (required >= 2x)"
        )


def _heavy_trial(trial_index, rng, data, size, config):
    """One German Credit repeat (subsample + all solvers) as a trial unit —
    the heavy-trial shape the run_trials clamp exists for."""
    del trial_index
    return _one_repeat(data, size, config, rng)


def test_heavy_trials_clamp_stays_parallel(fast_mode, report):
    """The n_trials < n_jobs clamp in ``run_trials`` itself: five heavy
    German Credit repeats under n_jobs=8 must fan out on five workers of
    the shared pool (pre-clamp they fell back to the inline loop)."""
    cores = os.cpu_count() or 1
    data = synthesize_german_credit(seed=0)
    config = GermanCreditConfig(n_repeats=5, seed=SEED)
    size = 50 if fast_mode else 100
    n_trials = config.n_repeats  # 5 < 8 workers: the clamped regime
    payload = (data, size, config)

    t0 = time.perf_counter()
    serial = run_trials(_heavy_trial, n_trials, seed=SEED, n_jobs=1, payload=payload)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    clamped = run_trials(_heavy_trial, n_trials, seed=SEED, n_jobs=8, payload=payload)
    clamp_s = time.perf_counter() - t0

    # The clamp must never change results: identical per-repeat metrics.
    assert serial == clamped

    speedup = serial_s / clamp_s
    report(
        "Trial pool — n_trials=5 clamped fan-out under n_jobs=8",
        (
            f"k={size}, n_trials={n_trials}, n_jobs=8 ({cores} cores available)\n"
            f"serial loop  : {serial_s * 1e3:9.1f} ms\n"
            f"clamped pool : {clamp_s * 1e3:9.1f} ms\n"
            f"speedup      : {speedup:9.2f}x"
        ),
        metrics={
            "cores": cores, "size": size, "n_trials": n_trials,
            "serial_s": serial_s, "clamped_s": clamp_s, "speedup": speedup,
        },
    )
    if not fast_mode and cores >= 4:
        assert speedup >= 1.5, (
            f"clamped 5-trial fan-out only {speedup:.2f}x faster on "
            f"{cores} cores (required >= 1.5x; pre-clamp this ran inline)"
        )
