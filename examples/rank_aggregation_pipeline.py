"""Fair rank aggregation: aggregate many voters' rankings, then post-process.

The related-work pipeline (Wei et al., Chakraborty et al.): aggregate input
rankings into a consensus minimizing total Kendall tau distance, then make
the consensus P-fair.  With the paper's Mallows post-processor the second
stage needs no protected attribute at all.

Run:  python examples/rank_aggregation_pipeline.py
"""

import numpy as np

from repro import (
    FairAggregationPipeline,
    FairnessConstraints,
    GroupAssignment,
    MallowsFairRanking,
    DetConstSort,
    infeasible_index,
)
from repro.aggregation import (
    borda_aggregate,
    kemeny_aggregate_exact,
    kwiksort_aggregate,
    total_kendall_tau,
)
from repro.mallows.sampling import sample_mallows
from repro.rankings.permutation import Ranking

N_ITEMS = 8
N_VOTERS = 25


def main() -> None:
    # Ground truth consensus: a segregated ranking (all of group 0 on top).
    truth = Ranking(np.array([0, 2, 4, 6, 1, 3, 5, 7]))
    groups = GroupAssignment.from_indices(np.array([i % 2 for i in range(N_ITEMS)]))
    constraints = FairnessConstraints.proportional(groups)

    # Voters are noisy observations of the truth (Mallows voters).
    votes = sample_mallows(truth, theta=1.2, m=N_VOTERS, seed=0)

    print(f"{N_VOTERS} voters over {N_ITEMS} items; true consensus "
          f"{truth.order.tolist()} (Infeasible Index "
          f"{infeasible_index(truth, groups, constraints)})\n")

    print("Stage 1 — aggregation quality (total KT distance to voters):")
    for name, aggregate in (
        ("Borda", borda_aggregate),
        ("KwikSort", lambda rs: kwiksort_aggregate(rs, seed=1)),
        ("Kemeny (exact)", kemeny_aggregate_exact),
    ):
        consensus = aggregate(votes)
        print(f" {name:<15} {consensus.order.tolist()}  "
              f"total KT {total_kendall_tau(consensus, votes)}")

    print("\nStage 2 — fair post-processing of the Borda consensus:")
    for label, post in (
        ("Mallows (attribute-blind)", MallowsFairRanking(0.4, n_samples=25)),
        ("DetConstSort (attribute-aware)", DetConstSort()),
    ):
        pipeline = FairAggregationPipeline(post)
        result = pipeline.aggregate(
            votes, groups=groups, constraints=constraints, seed=2
        )
        print(
            f" {label:<32} {result.ranking.order.tolist()}  "
            f"II {infeasible_index(result.ranking, groups, constraints)}  "
            f"total KT {result.metadata['output_total_kt']} "
            f"(consensus was {result.metadata['consensus_total_kt']})"
        )


if __name__ == "__main__":
    main()
