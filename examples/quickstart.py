"""Quickstart: make an unfair score-based ranking fairer with Mallows noise,
served through the :class:`repro.engine.RankingEngine` facade.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FairnessConstraints,
    FairRankingProblem,
    GroupAssignment,
    RankingEngine,
    RankingRequest,
    infeasible_index,
    ndcg,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # Ten candidates in two groups; group "b" systematically outscores
    # group "a", so the plain score-sorted ranking is segregated.
    groups = GroupAssignment(["a"] * 5 + ["b"] * 5)
    scores = np.concatenate(
        [rng.uniform(0.0, 0.5, 5), rng.uniform(0.5, 1.0, 5)]
    )

    problem = FairRankingProblem.from_scores(scores, groups)
    constraints = FairnessConstraints.proportional(groups)

    print("Base (score-sorted) ranking:")
    print(" order:", problem.base_ranking.order.tolist())
    print(" NDCG :", round(ndcg(problem.base_ranking, scores), 4))
    print(
        " Infeasible Index:",
        infeasible_index(problem.base_ranking, groups, constraints),
    )

    # One engine session owns the worker pool and the kernel caches; every
    # algorithm in the zoo is a registry name away.  The paper's
    # Algorithm 1: sample 15 rankings from a Mallows distribution centred
    # on the base ranking; keep the best by NDCG.  Note the algorithm
    # itself never looks at `groups`.
    engine = RankingEngine(n_jobs=1)
    response = engine.rank(
        "mallows", problem, seed=0, theta=0.5, n_samples=15
    )

    print(f"\nMallows post-processed ({response.metadata['algorithm_label']}):")
    print(" order:", response.ranking.order.tolist())
    print(" NDCG :", round(ndcg(response.ranking, scores), 4))
    print(
        " Infeasible Index:",
        infeasible_index(response.ranking, groups, constraints),
    )

    # Sweep theta to see the fairness/efficiency trade-off.  The sweep is
    # one streamed batch: every (theta, trial) pair becomes a request and
    # the engine yields responses as they complete — byte-identical to a
    # serial loop, whatever the session's worker count.
    thetas = (0.1, 0.25, 0.5, 1.0, 2.0)
    trials = 50
    requests = [
        RankingRequest(
            "mallows",
            problem,
            params={"theta": theta, "n_samples": 1},
            request_id=theta,
        )
        for theta in thetas
        for _ in range(trials)
    ]
    ndcgs: dict[float, list[float]] = {t: [] for t in thetas}
    iis: dict[float, list[float]] = {t: [] for t in thetas}
    for response in engine.rank_many(requests, seed=2024):
        theta = response.request_id
        ndcgs[theta].append(ndcg(response.ranking, scores))
        iis[theta].append(
            infeasible_index(response.ranking, groups, constraints)
        )

    print(f"\ntheta sweep (mean over {trials} single samples):")
    print(" theta |  NDCG  | Infeasible Index")
    for theta in thetas:
        print(
            f" {theta:5.2f} | {np.mean(ndcgs[theta]):.4f} "
            f"| {np.mean(iis[theta]):5.2f}"
        )

    stats = engine.stats()
    print(f"\nengine session: {stats.summary()}")


if __name__ == "__main__":
    main()
