"""Quickstart: make an unfair score-based ranking fairer with Mallows noise.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FairnessConstraints,
    FairRankingProblem,
    GroupAssignment,
    MallowsFairRanking,
    infeasible_index,
    ndcg,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # Ten candidates in two groups; group "b" systematically outscores
    # group "a", so the plain score-sorted ranking is segregated.
    groups = GroupAssignment(["a"] * 5 + ["b"] * 5)
    scores = np.concatenate(
        [rng.uniform(0.0, 0.5, 5), rng.uniform(0.5, 1.0, 5)]
    )

    problem = FairRankingProblem.from_scores(scores, groups)
    constraints = FairnessConstraints.proportional(groups)

    print("Base (score-sorted) ranking:")
    print(" order:", problem.base_ranking.order.tolist())
    print(" NDCG :", round(ndcg(problem.base_ranking, scores), 4))
    print(
        " Infeasible Index:",
        infeasible_index(problem.base_ranking, groups, constraints),
    )

    # The paper's Algorithm 1: sample 15 rankings from a Mallows
    # distribution centred on the base ranking; keep the best by NDCG.
    # Note the algorithm itself never looks at `groups`.
    algorithm = MallowsFairRanking(theta=0.5, n_samples=15)
    result = algorithm.rank(problem, seed=0)

    print(f"\nMallows post-processed ({algorithm.name}):")
    print(" order:", result.ranking.order.tolist())
    print(" NDCG :", round(ndcg(result.ranking, scores), 4))
    print(
        " Infeasible Index:",
        infeasible_index(result.ranking, groups, constraints),
    )

    # Sweep theta to see the fairness/efficiency trade-off.
    print("\ntheta sweep (mean over 50 single samples):")
    print(" theta |  NDCG  | Infeasible Index")
    for theta in (0.1, 0.25, 0.5, 1.0, 2.0):
        alg = MallowsFairRanking(theta, n_samples=1)
        ndcgs, iis = [], []
        for seed in range(50):
            r = alg.rank(problem, seed=seed).ranking
            ndcgs.append(ndcg(r, scores))
            iis.append(infeasible_index(r, groups, constraints))
        print(
            f" {theta:5.2f} | {np.mean(ndcgs):.4f} | {np.mean(iis):5.2f}"
        )


if __name__ == "__main__":
    main()
