"""HR shortlisting: the paper's motivating scenario.

A recruiter gets hundreds of applications and must shortlist the top 10 for
interviews.  Protected attributes (here a hidden demographic that the
screening score happens to correlate with) are *not* on the resumes — in
many jurisdictions collecting them is illegal — yet the employer is liable
for indirect discrimination in the shortlist.

This example shows how attribute-blind Mallows post-processing improves the
hidden group's representation in the top-10 shortlist, and compares against
what an attribute-aware method (DetConstSort) could do if the attribute
*were* available.

Run:  python examples/hr_shortlisting.py
"""

import numpy as np

from repro import (
    DetConstSort,
    FairnessConstraints,
    FairRankingProblem,
    GroupAssignment,
    MallowsFairRanking,
    ndcg,
    percent_fair_positions,
)

N_APPLICANTS = 200
SHORTLIST = 10
N_TRIALS = 30


def simulate_applications(seed: int):
    """Screening scores with a hidden demographic bias.

    40% of applicants belong to a hidden group whose screening scores are
    depressed by a small systematic gap (e.g. biased historical training
    data), so a pure score ranking under-represents them at the top.
    """
    rng = np.random.default_rng(seed)
    hidden = rng.random(N_APPLICANTS) < 0.4
    scores = rng.normal(0.6, 0.15, N_APPLICANTS)
    scores[hidden] -= 0.08  # the bias
    scores = scores.clip(0.01, 1.0)
    groups = GroupAssignment(["hidden" if h else "majority" for h in hidden])
    return scores, groups


def representation(ranking, groups, k=SHORTLIST) -> float:
    """Fraction of the top-k shortlist from the hidden group."""
    top = ranking.prefix(k)
    return float(np.mean(groups.indices[top] == groups.index_of_label("hidden")))


def main() -> None:
    scores, groups = simulate_applications(seed=1)
    target = groups.proportions[groups.index_of_label("hidden")]
    constraints = FairnessConstraints.proportional(groups)

    # The recruiter's pipeline only has scores — no attributes.
    blind_problem = FairRankingProblem.from_scores(scores)
    base = blind_problem.base_ranking

    print(f"{N_APPLICANTS} applicants, hidden-group share {target:.0%}")
    print(f"\nScore-only shortlist (top {SHORTLIST}):")
    print(f" hidden-group representation: {representation(base, groups):.0%}")
    print(f" NDCG: {ndcg(base, scores):.4f}")

    print("\nMallows post-processing (attribute-blind), mean over "
          f"{N_TRIALS} runs:")
    for theta in (0.01, 0.03, 0.1):
        reps, ndcgs = [], []
        for seed in range(N_TRIALS):
            result = MallowsFairRanking(theta, n_samples=1).rank(
                blind_problem, seed=seed
            )
            reps.append(representation(result.ranking, groups))
            ndcgs.append(ndcg(result.ranking, scores))
        print(
            f" theta={theta:<5g} representation {np.mean(reps):.0%}  "
            f"NDCG {np.mean(ndcgs):.4f}"
        )

    # Upper bound: what an attribute-aware method achieves when the
    # attribute IS available (not the case in this scenario).
    aware_problem = FairRankingProblem.from_scores(scores, groups)
    aware = DetConstSort().rank(aware_problem, seed=0)
    print("\nDetConstSort with the attribute available (reference):")
    print(f" representation {representation(aware.ranking, groups):.0%}  "
          f"NDCG {ndcg(aware.ranking, scores):.4f}")
    print(
        " PPfair over all prefixes: "
        f"{percent_fair_positions(aware.ranking, groups, constraints):.1f}%"
    )


if __name__ == "__main__":
    main()
