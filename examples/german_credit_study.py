"""German Credit case study: the paper's Section V-C in miniature.

Ranks credit applicants by credit amount, makes the ranking weakly-p-fair
w.r.t. the *known* combined Age−Sex attribute, then compares all five
algorithms on (a) fairness w.r.t. the known attribute, (b) fairness w.r.t.
the *unknown* Housing attribute, and (c) NDCG — with and without Gaussian
noise in the baselines' fairness constraints.

Run:  python examples/german_credit_study.py
"""

import numpy as np

from repro import (
    ApproxMultiValuedIPF,
    DetConstSort,
    DpFairRanking,
    FairnessConstraints,
    FairRankingProblem,
    MallowsFairRanking,
    ndcg,
    percent_fair_positions,
    synthesize_german_credit,
    weakly_fair_ranking,
)
from repro.utils.tables import format_table

SIZE = 50
N_REPEATS = 10


def run_panel(noise_sigma: float, theta: float, seed: int = 0):
    data = synthesize_german_credit(seed=0)
    rng = np.random.default_rng(seed)
    algorithms = {
        "DetConstSort": DetConstSort(noise_sigma=noise_sigma),
        "ApproxMultiValuedIPF": ApproxMultiValuedIPF(noise_sigma=noise_sigma),
        "ILP (exact DP)": DpFairRanking(noise_sigma=noise_sigma),
        "Mallows m=1": MallowsFairRanking(theta, n_samples=1),
        "Mallows m=15": MallowsFairRanking(theta, n_samples=15),
    }
    sums = {name: np.zeros(3) for name in algorithms}
    for _ in range(N_REPEATS):
        sub = data.subsample(SIZE, seed=rng)
        fc_known = FairnessConstraints.proportional(sub.age_sex)
        fc_unknown = FairnessConstraints.proportional(sub.housing)
        base = weakly_fair_ranking(sub.credit_amount, sub.age_sex, fc_known)
        problem = FairRankingProblem(
            base_ranking=base, scores=sub.credit_amount,
            groups=sub.age_sex, constraints=fc_known,
        )
        for name, alg in algorithms.items():
            ranking = alg.rank(problem, seed=rng).ranking
            sums[name] += np.array([
                percent_fair_positions(ranking, sub.age_sex, fc_known),
                percent_fair_positions(ranking, sub.housing, fc_unknown),
                ndcg(ranking, sub.credit_amount),
            ])
    return {name: total / N_REPEATS for name, total in sums.items()}


def main() -> None:
    for theta, sigma in ((0.5, 0.0), (0.5, 1.0)):
        label = "no constraint noise" if sigma == 0 else f"noise sigma={sigma:g}"
        stats = run_panel(noise_sigma=sigma, theta=theta, seed=3)
        rows = [
            [name, round(v[0], 1), round(v[1], 1), round(v[2], 4)]
            for name, v in stats.items()
        ]
        print(
            format_table(
                ["algorithm", "PPfair Age-Sex %", "PPfair Housing %", "NDCG"],
                rows,
                title=(
                    f"\nGerman Credit, k={SIZE}, theta={theta:g}, {label} "
                    f"(mean of {N_REPEATS} subsamples)"
                ),
            )
        )


if __name__ == "__main__":
    main()
