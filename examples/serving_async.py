"""Async serving tier: concurrent clients, coalescing, priced admission.

The scenario: many asyncio clients share one ranking service.  Each
client awaits ``server.rank(...)`` for a *single* request, but the
:class:`repro.serve.AsyncRankingServer` coalesces every call landing
inside a small micro-batching window into one
:meth:`~repro.engine.RankingEngine.rank_many` dispatch on the shared
worker pool — so 24 concurrent awaits turn into a handful of batches,
not 24 pool round-trips.  Admission is priced by the session's learned
cost model: when predicted in-flight cost would exceed the budget,
excess requests queue, and past the queue bound they are rejected with
a structured :class:`~repro.serve.ServerOverloaded` the client can
retry against.

Determinism survives the concurrency: submission ``i`` draws the same
``SeedSequence`` child the serial loop would give request ``i``, so the
served response set digests byte-identically to ``rank_many`` over the
same submissions — for any window, batch cap, or worker count.

Run:  python examples/serving_async.py [n_clients]
"""

import asyncio
import sys

import numpy as np

from repro import (
    FairRankingProblem,
    GroupAssignment,
    RankingEngine,
    RankingRequest,
)
from repro.engine import responses_digest
from repro.serve import AsyncRankingServer, ServeConfig, ServerOverloaded

SEED = 7


def make_problems(n_problems: int = 6) -> list[FairRankingProblem]:
    """A small pool of mixed-size fair-ranking problems."""
    rng = np.random.default_rng(3)
    problems = []
    for p in range(n_problems):
        n = 30 + 10 * (p % 3)  # 30 / 40 / 50 candidates
        groups = GroupAssignment.from_indices(rng.integers(0, 3, size=n))
        scores = rng.uniform(0.0, 1.0, size=n)
        problems.append(FairRankingProblem.from_scores(scores, groups))
    return problems


def make_requests(problems, n_requests: int) -> list[RankingRequest]:
    """One request per client: cycle algorithms over the problem pool."""
    zoo = (
        ("dp", {}),
        ("mallows", {"theta": 0.7, "n_samples": 200}),
        ("ipf", {}),
        ("detconstsort", {}),
    )
    requests = []
    for i in range(n_requests):
        name, params = zoo[i % len(zoo)]
        requests.append(
            RankingRequest(
                name,
                problems[i % len(problems)],
                params=params,
                request_id=f"{name}#{i}",
            )
        )
    return requests


async def client(server, request, results):
    """One client coroutine: await a single ranking, retry if shed."""
    for attempt in range(50):
        try:
            response = await server.submit(request)
            break
        except ServerOverloaded as exc:
            # Structured shed: the server says what it couldn't afford.
            if attempt == 0:
                print(
                    f"  {request.request_id}: queued-out "
                    f"(predicted {exc.predicted_cost:.3f}s over budget), "
                    f"retrying"
                )
            await asyncio.sleep(0.005 * (attempt + 1))
    else:
        raise RuntimeError(f"{request.request_id} never admitted")
    results.append(response)


async def serve_swarm(engine, requests) -> None:
    config = ServeConfig(
        batch_window=0.005,  # 5 ms coalescing window
        max_batch_size=8,
        cost_budget=2.0,
        max_queue_depth=64,
        seed=SEED,
        n_jobs=engine.n_jobs,
    )
    results: list = []
    async with AsyncRankingServer(engine, config) as server:
        await asyncio.gather(
            *(client(server, req, results) for req in requests)
        )
        stats = server.stats()

    print(
        f"served {len(results)}/{len(requests)} concurrent clients in "
        f"{stats.dispatched_batches} coalesced batches "
        f"({stats.coalescing:.1f} requests/batch, largest "
        f"{stats.largest_batch})"
    )
    for label, summary in sorted(stats.latency_percentiles().items()):
        print(
            f"  {label:22s} "
            + "  ".join(f"{k}={v * 1e3:6.1f} ms" for k, v in summary.items())
        )

    # The determinism contract: the served response set is byte-identical
    # to the serial loop over the same submissions.
    served = responses_digest(results)
    serial = responses_digest(engine.rank_many(requests, seed=SEED, n_jobs=1))
    assert served == serial, "served responses diverged from the serial loop"
    print(f"byte-identical to the serial loop: ok ({served[:12]}...)")


def main() -> None:
    argv = sys.argv[1:]
    n_clients = int(argv[0]) if argv and argv[0].isdigit() else 24
    requests = make_requests(make_problems(), n_clients)

    with RankingEngine(n_jobs=2) as engine:
        print(f"{n_clients} clients -> one engine session (n_jobs=2)")
        asyncio.run(serve_swarm(engine, requests))


if __name__ == "__main__":
    main()
