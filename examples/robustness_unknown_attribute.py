"""Robustness study: fairness w.r.t. attributes the algorithm never saw.

Constructs a population with THREE protected attributes — one known to the
ranking pipeline, two hidden — and measures how each post-processing method
trades fairness across all three.  Attribute-aware methods optimize the
known attribute and have no guarantees elsewhere; Mallows randomization is
oblivious, spreading its fairness repair across every sufficiently large
group structure.

Run:  python examples/robustness_unknown_attribute.py
"""

import numpy as np

from repro import (
    ApproxMultiValuedIPF,
    DetConstSort,
    DpFairRanking,
    FairnessConstraints,
    FairRankingProblem,
    GroupAssignment,
    MallowsFairRanking,
    ndcg,
    percent_fair_positions,
)
from repro.utils.tables import format_table

N = 60
N_TRIALS = 15


def build_population(seed: int):
    """Scores plus three correlated binary attributes."""
    rng = np.random.default_rng(seed)
    known = rng.integers(0, 2, N)           # e.g. sex: available
    hidden_a = (known + rng.integers(0, 2, N)) % 2   # correlates with known
    hidden_b = rng.integers(0, 2, N)         # independent
    # Scores biased against known=0 AND hidden_b=0.
    scores = rng.random(N) + 0.25 * known + 0.35 * hidden_b
    return (
        scores,
        GroupAssignment.from_indices(known),
        GroupAssignment.from_indices(hidden_a),
        GroupAssignment.from_indices(hidden_b),
    )


def main() -> None:
    algorithms = {
        "DetConstSort": DetConstSort(),
        "ApproxMultiValuedIPF": ApproxMultiValuedIPF(),
        "ILP (exact DP)": DpFairRanking(),
        "Mallows theta=0.3": MallowsFairRanking(0.3, n_samples=15),
        "Mallows theta=0.1": MallowsFairRanking(0.1, n_samples=15),
    }
    sums = {name: np.zeros(4) for name in algorithms}
    base_sums = np.zeros(4)

    for trial in range(N_TRIALS):
        scores, known, hidden_a, hidden_b = build_population(seed=trial)
        fc_known = FairnessConstraints.proportional(known)
        fc_a = FairnessConstraints.proportional(hidden_a)
        fc_b = FairnessConstraints.proportional(hidden_b)
        problem = FairRankingProblem.from_scores(scores, known, fc_known)

        def evaluate(ranking):
            return np.array([
                percent_fair_positions(ranking, known, fc_known),
                percent_fair_positions(ranking, hidden_a, fc_a),
                percent_fair_positions(ranking, hidden_b, fc_b),
                ndcg(ranking, scores),
            ])

        base_sums += evaluate(problem.base_ranking)
        for name, alg in algorithms.items():
            result = alg.rank(problem, seed=trial)
            sums[name] += evaluate(result.ranking)

    rows = [["(score-sorted input)"] + [round(v, 1) for v in (base_sums / N_TRIALS)[:3]]
            + [round((base_sums / N_TRIALS)[3], 4)]]
    for name, total in sums.items():
        mean = total / N_TRIALS
        rows.append([name] + [round(v, 1) for v in mean[:3]] + [round(mean[3], 4)])

    print(
        format_table(
            [
                "algorithm",
                "PPfair known %",
                "PPfair hidden-A %",
                "PPfair hidden-B %",
                "NDCG",
            ],
            rows,
            title=(
                f"Fairness across known and hidden attributes "
                f"(n={N}, mean of {N_TRIALS} trials)"
            ),
        )
    )
    print(
        "\nReading: attribute-aware methods push 'PPfair known' toward 100%"
        "\nbut inherit whatever the hidden attributes got; Mallows trades a"
        "\nlittle NDCG for a more balanced profile across all attributes."
    )


if __name__ == "__main__":
    main()
