"""Serving over HTTP: the stdlib wire frontend on real localhost sockets.

The scenario: the async serving tier from ``serving_async.py``, but the
clients are on the other side of a socket.  An
:class:`~repro.net.HttpRankingServer` wraps the
:class:`~repro.serve.AsyncRankingServer` behind a stdlib HTTP/1.1 JSON
listener (``POST /v1/rank``, ``POST /v1/rank_many``, ``GET /stats``,
``GET /healthz``), and an :class:`~repro.net.AsyncHttpClient` swarm
talks to it over keep-alive connections — same coalescing, same priced
admission, same structured errors re-raised client-side.

Determinism is the interesting part: over a wire, arrival order is
whatever the network makes it, so the in-process trick of deriving
seeds from submission order does not survive.
:func:`~repro.serve.pin_request_seeds` pins each request's
``SeedSequence`` child client-side, the children travel inside the JSON
schema, and the served response set digests *byte-identically* to a
serial loop over the same requests — any transport, any worker count.

Run:  python examples/serving_http.py [n_requests]
"""

import asyncio
import sys

from repro.engine import RankingEngine, responses_digest
from repro.net import AsyncHttpClient, HttpRankingServer
from repro.serve import pin_request_seeds, run_load, synthetic_requests

SEED = 11


async def serve_and_query(requests):
    """Stand up the frontend, fire the swarm over HTTP, return the report."""
    with RankingEngine(n_jobs=2) as engine:
        async with HttpRankingServer(engine, seed=SEED) as server:
            async with AsyncHttpClient("127.0.0.1", server.port) as client:
                healthy, body = await client.healthz()
                print(f"healthz: {body['status']} (breaker {body['breaker']})")
                report = await run_load(client, requests)
                stats = await client.stats()
    return report, stats


def main() -> None:
    argv = sys.argv[1:]
    n_requests = int(argv[0]) if argv and argv[0].isdigit() else 24
    requests = pin_request_seeds(
        synthetic_requests(n_requests, seed=SEED), seed=SEED
    )
    report, stats = asyncio.run(serve_and_query(requests))

    print(
        f"served {report.served}/{report.n_requests} HTTP clients "
        f"in {report.elapsed:.3f}s ({report.throughput:.0f} req/s)"
    )
    counters = stats["counters"]
    print(
        f"server saw {counters['submitted']} submissions in "
        f"{counters['dispatched_batches']} coalesced batches "
        f"({stats['coalescing']:.2f}x coalescing)"
    )

    # The punchline: the over-the-wire response set digests identically
    # to a serial loop over the very same (pinned) requests.
    with RankingEngine(n_jobs=1) as ref:
        serial = responses_digest(ref.rank_many(requests, n_jobs=1))
    match = "ok" if report.digest() == serial else "MISMATCH"
    print(f"digest byte-identical to the serial loop: {match}")


if __name__ == "__main__":
    main()
