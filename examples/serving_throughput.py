"""Warm-pool streaming: serve a burst of mixed ranking requests.

The scenario: a ranking service keeps one long-lived
:class:`repro.engine.RankingEngine` session per process.  The session's
worker pool is warmed once at startup; each incoming burst of heterogeneous
requests — different algorithms, different problem sizes — is flattened
onto the shared scheduler by :meth:`~repro.engine.RankingEngine.rank_many`
and responses stream back **as each request completes**, so the fastest
requests are answered while the heaviest are still solving.  Repeated
traffic also teaches the session's cost model real per-kind wall-times, so
later bursts dispatch heaviest-first by *measured* cost.

Everything stays reproducible: request ``i`` of a burst draws from its own
``SeedSequence`` child, so the rankings are byte-identical to a serial
loop for any worker count.

Run:  python examples/serving_throughput.py [n_jobs]
"""

import sys
import time

import numpy as np

from repro import (
    FairRankingProblem,
    GroupAssignment,
    RankingEngine,
    RankingRequest,
)


def make_burst(n_problems: int = 12) -> list[RankingRequest]:
    """A mixed burst: per problem, one heavy Mallows best-of request, one
    exact-DP solve, one IPF matching, one DetConstSort pass."""
    rng = np.random.default_rng(42)
    requests: list[RankingRequest] = []
    for p in range(n_problems):
        n = 80 + 20 * (p % 3)  # 80 / 100 / 120 candidates
        groups = GroupAssignment.from_indices(rng.integers(0, 3, size=n))
        scores = rng.uniform(0.0, 1.0, size=n)
        problem = FairRankingProblem.from_scores(scores, groups)
        for algorithm, params in (
            ("mallows", {"theta": 0.5, "n_samples": 500}),
            ("dp", {}),
            ("ipf", {}),
            ("detconstsort", {}),
        ):
            requests.append(
                RankingRequest(
                    algorithm,
                    problem,
                    params=params,
                    request_id=f"{algorithm}@{p}",
                )
            )
    return requests


def serve_burst(engine: RankingEngine, requests, seed: int) -> float:
    """Stream one burst; prints arrivals as they land, returns seconds."""
    t0 = time.perf_counter()
    first = None
    for i, response in enumerate(engine.rank_many(requests, seed=seed)):
        if first is None:
            first = time.perf_counter() - t0
        if i < 3:  # show the as-completed property without drowning stdout
            print(
                f"  [{time.perf_counter() - t0:6.3f}s] "
                f"{response.request_id} -> "
                f"top-3 {response.ranking.order[:3].tolist()} "
                f"({response.seconds * 1e3:.1f} ms compute)"
            )
    elapsed = time.perf_counter() - t0
    print(
        f"  ... burst of {len(requests)} served in {elapsed:.3f}s "
        f"(first response after {first:.3f}s)"
    )
    return elapsed


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    requests = make_burst()

    engine = RankingEngine(n_jobs=n_jobs)
    print(f"warming {n_jobs} worker(s)...")
    engine.warm_up()

    print("\nburst 1 (cold caches, unlearned costs):")
    cold = serve_burst(engine, requests, seed=1)

    print("\nburst 2 (warm pool, learned per-kind costs):")
    warm = serve_burst(engine, requests, seed=2)

    stats = engine.stats()
    print(f"\nsession: {stats.summary()}")
    print(f"pool utilization: {stats.utilization:.0%}")
    if warm < cold:
        print(f"warm burst was {cold / warm:.2f}x faster than the cold one")

    # Reproducibility: the same burst re-served serially is byte-identical.
    from repro.engine import responses_digest

    streamed = responses_digest(engine.rank_many(requests, seed=1))
    serial = responses_digest(engine.rank_many(requests, seed=1, n_jobs=1))
    assert streamed == serial
    print("byte-identical to the serial loop: ok")


if __name__ == "__main__":
    main()
