"""Operating-point selection: frontiers, budgets, and guarantees.

Putting the extension machinery together on the German Credit data:

1. compute the fairness/efficiency frontier of Mallows randomization
   (mean Infeasible Index vs mean NDCG over a theta grid);
2. pick the most efficient theta meeting a fairness budget;
3. quantify the best-of-m amplification: per-sample fairness probability
   (with exact binomial CI) and the sample budget for 95% confidence;
4. compare a flat dispersion against a Generalized-Mallows head-shuffle
   profile at the chosen operating point.

Run:  python examples/tradeoff_frontier.py
"""

import numpy as np

from repro import (
    FairnessConstraints,
    FairRankingProblem,
    GeneralizedMallowsFairRanking,
    MallowsFairRanking,
    ndcg,
    percent_fair_positions,
    synthesize_german_credit,
    weakly_fair_ranking,
)
from repro.experiments.frontier import compute_tradeoff_frontier
from repro.fairness.guarantees import (
    estimate_fairness_probability,
    sample_budget_for_confidence,
)
from repro.mallows.generalized import dispersion_profile

SIZE = 40


def main() -> None:
    data = synthesize_german_credit(seed=0).subsample(SIZE, seed=11)
    fc = FairnessConstraints.proportional(data.age_sex)
    base = weakly_fair_ranking(data.credit_amount, data.age_sex, fc)

    # 1. The frontier w.r.t. the *unknown* Housing attribute.
    fc_housing = FairnessConstraints.proportional(data.housing)
    frontier = compute_tradeoff_frontier(
        base,
        data.credit_amount,
        data.housing,
        constraints=fc_housing,
        thetas=(0.05, 0.1, 0.25, 0.5, 1.0, 2.0),
        m=400,
        seed=0,
    )
    print(frontier.to_text())

    # 2. Operating point: most efficient theta within a fairness budget.
    # Housing has a small minority group, so random rankings violate many
    # prefixes; set the budget 20% of the way into the achievable range.
    unfs = [p.unfairness for p in frontier.points]
    ii_budget = min(unfs) + 0.2 * (max(unfs) - min(unfs))
    theta_star = frontier.best_theta(ii_budget)
    print(f"\nFairness budget E[II] <= {ii_budget:.1f}  =>  theta* = {theta_star:g}")

    # 3. Best-of-m amplification at theta*.
    prob = estimate_fairness_probability(
        base,
        theta_star,
        data.housing,
        fc_housing,
        max_infeasible_index=int(ii_budget),
        m=2000,
        seed=1,
    )
    print(
        f"per-sample P[II <= {ii_budget:.1f}] = {prob.estimate:.3f} "
        f"[{prob.low:.3f}, {prob.high:.3f}]"
    )
    if 0 < prob.estimate < 1:
        m_needed = sample_budget_for_confidence(prob.estimate, 0.05)
        print(f"samples needed for 95% confidence of one success: m = {m_needed}")

    # 4. Flat theta vs head-shuffle GMM profile at the operating point.
    problem = FairRankingProblem(
        base_ranking=base, scores=data.credit_amount,
        groups=data.age_sex, constraints=fc,
    )
    flat = MallowsFairRanking(theta_star, n_samples=15)
    profile = GeneralizedMallowsFairRanking(
        dispersion_profile(SIZE, theta_star / 4, 4 * theta_star, split=SIZE // 2),
        n_samples=15,
    )
    print("\nFlat vs head-shuffle profile (mean of 20 runs):")
    for label, alg in (("flat", flat), ("head-shuffle", profile)):
        nds, pus = [], []
        for s in range(20):
            r = alg.rank(problem, seed=s).ranking
            nds.append(ndcg(r, data.credit_amount))
            pus.append(percent_fair_positions(r, data.housing, fc_housing))
        print(
            f" {label:<13} NDCG {np.mean(nds):.4f}   "
            f"PPfair(Housing) {np.mean(pus):.1f}%"
        )


if __name__ == "__main__":
    main()
