"""The Mallows ranking model (Section III-E) and samplers."""

from repro.mallows.model import (
    MallowsModel,
    expected_kendall_tau,
    log_partition_function,
    partition_function,
)
from repro.mallows.sampling import (
    sample_mallows,
    sample_mallows_batch,
    sample_mallows_rankings,
)
from repro.mallows.learning import (
    estimate_center_borda,
    estimate_center_copeland,
    fit_mallows,
    fit_theta_mle,
)
from repro.mallows.mcmc import (
    plackett_luce_noise,
    plackett_luce_noise_batch,
    random_adjacent_swaps,
    random_adjacent_swaps_batch,
    sample_mallows_mcmc,
    sample_mallows_mcmc_batch,
)
from repro.mallows.generalized import (
    GeneralizedMallowsModel,
    dispersion_profile,
    displacement_vector,
    fit_generalized_mallows,
)
from repro.mallows.marginals import (
    exact_expected_exposure,
    exact_expected_ndcg,
    expected_positions,
    position_marginals,
    tune_theta_for_ndcg_exact,
)
from repro.mallows.plackett_luce import PlackettLuceModel, fit_plackett_luce

__all__ = [
    "MallowsModel",
    "partition_function",
    "log_partition_function",
    "expected_kendall_tau",
    "sample_mallows",
    "sample_mallows_batch",
    "sample_mallows_rankings",
    "fit_theta_mle",
    "fit_mallows",
    "estimate_center_borda",
    "estimate_center_copeland",
    "sample_mallows_mcmc",
    "sample_mallows_mcmc_batch",
    "plackett_luce_noise",
    "plackett_luce_noise_batch",
    "random_adjacent_swaps",
    "random_adjacent_swaps_batch",
    "GeneralizedMallowsModel",
    "dispersion_profile",
    "displacement_vector",
    "fit_generalized_mallows",
    "position_marginals",
    "expected_positions",
    "exact_expected_ndcg",
    "exact_expected_exposure",
    "tune_theta_for_ndcg_exact",
    "PlackettLuceModel",
    "fit_plackett_luce",
]
