"""Exact position marginals of the Mallows distribution.

The repeated-insertion view makes single-item marginals tractable: track the
item the centre ranks at position ``r`` through the insertion process.  It
enters at insertion step ``r`` (displaced by a truncated geometric) and each
later insertion independently lands either above it (shifting it down one)
or below it.  A forward DP over "current position of the tracked item"
yields the exact matrix

``M[r, t] = P( item with centre rank r ends at position t )``

in ``O(n²)`` per row / ``O(n³)`` overall — instant at the paper's scales.

From the marginals, expectations of any per-position functional follow in
closed form: expected NDCG of a Mallows sample, expected per-item and
per-group exposure, expected top-k membership.  These power an *exact*
θ-tuner (no Monte-Carlo jitter) and validate the samplers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.rankings.quality import idcg, position_discounts


def position_marginals(n: int, theta: float) -> np.ndarray:
    """The exact ``(n, n)`` marginal matrix ``M[r, t]`` for a Mallows model
    on ``n`` items with dispersion ``theta`` (centre-independent: rows are
    indexed by centre rank).

    At ``theta = 0`` every entry is ``1/n``; as ``theta → ∞`` the matrix
    approaches the identity.

    The ``O(n³)`` computation is memoized per ``(n, theta)`` in
    the active :class:`repro.batch.cache.KernelCache` (experiment loops
    sweep the same θ grid over and over); the returned matrix is read-only.
    """
    from repro.batch.cache import active_cache

    return active_cache().position_marginals(n, theta)


def _compute_position_marginals(n: int, theta: float) -> np.ndarray:
    """Uncached computation behind :func:`position_marginals`."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    if n == 0:
        return np.zeros((0, 0))
    q = math.exp(-theta) if theta > 0 else 1.0

    # Insertion-step displacement pmfs: step j inserts into a list of size
    # j; displacement v in {0..j} with P(v) ∝ q^v (v = slots from the end).
    # Precompute, for each step j, the probability that the new insertion
    # lands at index <= t of the new list: the insertion index is j - v.
    marginals = np.zeros((n, n), dtype=np.float64)
    step_pmf: list[np.ndarray] = []
    for j in range(n):
        if q >= 1.0:
            pmf = np.full(j + 1, 1.0 / (j + 1))
        else:
            pmf = np.power(q, np.arange(j + 1, dtype=np.float64))
            pmf /= pmf.sum()
        step_pmf.append(pmf)

    for r in range(n):
        # Distribution over the tracked item's position after its own
        # insertion (step r): inserted at index r - v.
        dist = np.zeros(n, dtype=np.float64)
        pmf_r = step_pmf[r]
        for v in range(r + 1):
            dist[r - v] = pmf_r[v]
        # Later insertions: step j inserts into a list of current size j.
        for j in range(r + 1, n):
            pmf_j = step_pmf[j]
            # P(new item lands at index <= t) = P(j - v <= t) = P(v >= j-t).
            # Precompute suffix sums of pmf_j.
            suffix = np.concatenate([np.cumsum(pmf_j[::-1])[::-1], [0.0]])
            new_dist = np.zeros(n, dtype=np.float64)
            for t in range(j):
                p = dist[t]
                if p == 0.0:
                    continue
                shift_prob = suffix[max(j - t, 0)] if j - t <= j else 0.0
                new_dist[t + 1] += p * shift_prob
                new_dist[t] += p * (1.0 - shift_prob)
            dist = new_dist
        marginals[r] = dist
    return marginals


def expected_positions(n: int, theta: float) -> np.ndarray:
    """Exact expected final position of each centre rank, ``shape (n,)``."""
    m = position_marginals(n, theta)
    return m @ np.arange(n, dtype=np.float64)


def exact_expected_ndcg(center: Ranking, scores: np.ndarray, theta: float) -> float:
    """Closed-form ``E[NDCG(π)]`` for ``π ~ M(center, θ)``.

    NDCG is linear in the per-(item, position) indicator, so the expectation
    is the marginal-weighted discount sum.
    """
    s = np.asarray(scores, dtype=np.float64)
    n = len(center)
    if s.size != n:
        raise ValueError(f"{s.size} scores for a ranking of {n} items")
    ideal = idcg(s, n)
    if ideal == 0.0:
        return 1.0
    m = position_marginals(n, theta)
    disc = position_discounts(n)
    # Item at centre rank r has score s[center.order[r]].
    rank_scores = s[center.order]
    return float((rank_scores[:, None] * m * disc[None, :]).sum() / ideal)


def exact_expected_exposure(
    center: Ranking,
    theta: float,
    groups: GroupAssignment,
    k: int | None = None,
) -> np.ndarray:
    """Closed-form mean group exposure under ``M(center, θ)``,
    ``shape (g,)`` (the exact counterpart of
    :func:`repro.fairness.exposure.expected_exposure_under_mallows`)."""
    n = len(center)
    if groups.n_items != n:
        raise ValueError(
            f"group assignment covers {groups.n_items} items for a "
            f"ranking of {n}"
        )
    k = n if k is None else k
    if not 0 <= k <= n:
        raise ValueError(f"k must be in [0, {n}], got {k}")
    m = position_marginals(n, theta)
    disc = np.zeros(n, dtype=np.float64)
    disc[:k] = position_discounts(k)
    per_rank = m @ disc                      # expected exposure by centre rank
    per_item = np.empty(n, dtype=np.float64)
    per_item[center.order] = per_rank
    g = groups.n_groups
    totals = np.zeros(g, dtype=np.float64)
    np.add.at(totals, groups.indices, per_item)
    sizes = groups.group_sizes
    out = np.zeros(g, dtype=np.float64)
    nonempty = sizes > 0
    out[nonempty] = totals[nonempty] / sizes[nonempty]
    return out


def tune_theta_for_ndcg_exact(
    center: Ranking,
    scores: np.ndarray,
    target_ndcg: float,
    tol: float = 1e-6,
    theta_hi: float = 20.0,
) -> float:
    """Exact version of the θ tuner: smallest ``θ`` with
    ``E[NDCG] >= target`` by bisection on the closed-form expectation
    (monotone in θ).  No Monte-Carlo jitter."""
    if not 0.0 < target_ndcg <= 1.0:
        raise ValueError(f"target_ndcg must be in (0, 1], got {target_ndcg}")
    s = np.asarray(scores, dtype=np.float64)
    if exact_expected_ndcg(center, s, 0.0) >= target_ndcg:
        return 0.0
    if exact_expected_ndcg(center, s, theta_hi) < target_ndcg:
        return theta_hi
    lo, hi = 0.0, theta_hi
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if exact_expected_ndcg(center, s, mid) >= target_ndcg:
            hi = mid
        else:
            lo = mid
    return hi
