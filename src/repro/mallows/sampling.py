"""Exact Mallows sampling via the Repeated Insertion Model (RIM).

Doignon et al.'s RIM builds a Mallows sample by inserting the centre's items
one at a time: when the ``(j+1)``-th item is inserted into the current list
of ``j`` items, placing it ``v`` positions from the *end* adds exactly ``v``
new discordant pairs, so drawing ``v`` from the truncated geometric
``P(v) ∝ e^{−θ v}`` on ``{0..j}`` yields a draw whose total displacement is
Mallows-distributed.  All the ``v`` draws are independent, which lets us
vectorize them across a whole batch with one inverse-CDF transform.

The list insertions themselves are done per-sample (``O(n²)`` worst case per
sample) which is far from the bottleneck at the paper's scales (``n ≤ 100``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator


def _displacement_draws(n: int, theta: float, m: int, rng: np.random.Generator) -> np.ndarray:
    """Draw the RIM displacement matrix ``V`` of ``shape (m, n)``.

    ``V[s, j]`` is the number of inversions added when inserting the
    ``(j+1)``-th item of sample ``s``; it lies in ``{0..j}`` and has
    ``P(v) ∝ q^v`` with ``q = e^{−θ}``.
    """
    u = rng.random((m, n))
    j = np.arange(n, dtype=np.float64)
    q = math.exp(-theta) if theta > 0.0 else 1.0
    if q >= 1.0:
        # theta == 0, or so small that e^{-theta} rounds to 1: the law is
        # (indistinguishable from) uniform over {0..j}, and the geometric
        # inverse CDF below would divide by log(1) = 0.
        return np.floor(u * (j + 1.0)).astype(np.int64)
    # CDF(v) = (1 − q^{v+1}) / (1 − q^{j+1});  inverse transform:
    #   v = floor( log(1 − u·(1 − q^{j+1})) / log q )
    tail = 1.0 - np.power(q, j + 1.0)
    v = np.floor(np.log1p(-u * tail) / math.log(q))
    v = np.clip(v, 0, j).astype(np.int64)
    return v


def _orders_from_displacements(center_order: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Materialize sample orders from displacement draws.

    For each sample, item ``center_order[j]`` is inserted at list index
    ``j − v[j]`` (i.e. ``v[j]`` slots before the current end).
    """
    m, n = v.shape
    out = np.empty((m, n), dtype=np.int64)
    center_list = center_order.tolist()
    for s in range(m):
        current: list[int] = []
        row = v[s]
        for j in range(n):
            current.insert(j - int(row[j]), center_list[j])
        out[s] = current
    return out


def sample_mallows_batch(
    center: Ranking,
    theta: float,
    m: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw ``m`` exact Mallows samples as an ``(m, n)`` order-view array.

    This is the fast path used by experiments; each row is the order view of
    one sampled ranking (item at each position, top first).
    """
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    if m < 0:
        raise ValueError(f"sample count must be non-negative, got {m}")
    n = len(center)
    if m == 0:
        return np.empty((0, n), dtype=np.int64)
    if n == 0:
        return np.empty((m, 0), dtype=np.int64)
    rng = as_generator(seed)
    v = _displacement_draws(n, theta, m, rng)
    return _orders_from_displacements(center.order, v)


def sample_mallows(
    center: Ranking,
    theta: float,
    m: int = 1,
    seed: SeedLike = None,
) -> list[Ranking]:
    """Draw ``m`` exact Mallows samples as :class:`Ranking` objects."""
    orders = sample_mallows_batch(center, theta, m, seed=seed)
    return [Ranking(row) for row in orders]


def sample_displacements_total(
    n: int, theta: float, m: int, seed: SeedLike = None
) -> np.ndarray:
    """Draw only the total KT distances of ``m`` Mallows samples (no
    permutation materialization) — handy for statistical tests of the
    sampler and for fast expected-distance estimation."""
    rng = as_generator(seed)
    if m == 0 or n == 0:
        return np.zeros(m, dtype=np.int64)
    v = _displacement_draws(n, theta, m, rng)
    return v.sum(axis=1)
