"""Exact Mallows sampling via the Repeated Insertion Model (RIM).

Doignon et al.'s RIM builds a Mallows sample by inserting the centre's items
one at a time: when the ``(j+1)``-th item is inserted into the current list
of ``j`` items, placing it ``v`` positions from the *end* adds exactly ``v``
new discordant pairs, so drawing ``v`` from the truncated geometric
``P(v) ∝ e^{−θ v}`` on ``{0..j}`` yields a draw whose total displacement is
Mallows-distributed.  All the ``v`` draws are independent, which lets us
vectorize them across a whole batch with one inverse-CDF transform.

Sample materialization is vectorized over the whole batch: instead of
replaying the insertions with per-sample Python list surgery, the final
position of every item is accumulated column-by-column over the ``(m, n)``
displacement matrix and the orders are scattered out in one shot (see
:func:`_orders_from_displacements`).  The decode is bit-for-bit identical to
the sequential insertion loop, which the test suite keeps as a private
reference implementation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.batch.container import BatchRankings
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator

#: Samples decoded per chunk: keeps the ``(n, chunk)`` position block and its
#: comparison buffer resident in cache, which is worth ~2x at large ``m``.
_DECODE_CHUNK = 8192


def _displacement_draws(n: int, theta: float, m: int, rng: np.random.Generator) -> np.ndarray:
    """Draw the RIM displacement matrix ``V`` of ``shape (m, n)``.

    ``V[s, j]`` is the number of inversions added when inserting the
    ``(j+1)``-th item of sample ``s``; it lies in ``{0..j}`` and has
    ``P(v) ∝ q^v`` with ``q = e^{−θ}``.
    """
    u = rng.random((m, n))
    j = np.arange(n, dtype=np.float64)
    q = math.exp(-theta) if theta > 0.0 else 1.0
    if q >= 1.0:
        # theta == 0, or so small that e^{-theta} rounds to 1: the law is
        # (indistinguishable from) uniform over {0..j}, and the geometric
        # inverse CDF below would divide by log(1) = 0.
        return np.floor(u * (j + 1.0)).astype(np.int64)
    # CDF(v) = (1 − q^{v+1}) / (1 − q^{j+1});  inverse transform:
    #   v = floor( log(1 − u·(1 − q^{j+1})) / log q )
    tail = 1.0 - np.power(q, j + 1.0)
    v = np.floor(np.log1p(-u * tail) / math.log(q))
    v = np.clip(v, 0, j).astype(np.int64)
    return v


def _decode_chunk(
    center_order: np.ndarray, vT: np.ndarray, out: np.ndarray, dtype: np.dtype
) -> None:
    """Decode one chunk of transposed displacements ``vT`` of ``shape (n, c)``
    into the order rows ``out`` of ``shape (c, n)``.

    Tracks the evolving position of every inserted item: inserting item ``j``
    at list index ``p = j − v[j]`` shifts every previously inserted item at
    index ``>= p`` down by one, which is a single vectorized
    compare-and-accumulate over the ``(j, c)`` block per step.  The final
    positions are scattered into order view with one ``put_along_axis``.
    """
    n, c = vT.shape
    pos = np.empty((n, c), dtype=dtype)
    pos[0] = 0
    for j in range(1, n):
        p = (j - vT[j]).astype(dtype, copy=False)
        left = pos[:j]
        np.add(left, left >= p[None, :], out=left, casting="unsafe")
        pos[j] = p
    np.put_along_axis(
        out, pos.T.astype(np.int64), np.broadcast_to(center_order, (c, n)), axis=1
    )


def _orders_from_displacements(center_order: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Materialize sample orders from displacement draws, fully vectorized.

    For each sample, item ``center_order[j]`` is inserted at list index
    ``j − v[j]`` (i.e. ``v[j]`` slots before the current end).  The whole
    ``(m, n)`` displacement matrix is decoded with ``O(n)`` NumPy calls
    (``O(m·n²)`` elementwise work in a cache-sized dtype) instead of ``m·n``
    Python-level list insertions; results are bit-for-bit identical to the
    sequential insertion loop.
    """
    m, n = v.shape
    out = np.empty((m, n), dtype=np.int64)
    if m == 0 or n == 0:
        return out
    # Positions fit the smallest dtype that can hold 0..n-1; smaller elements
    # mean proportionally less memory traffic in the decode loop.
    dtype = np.dtype(np.int16) if n <= np.iinfo(np.int16).max else np.dtype(np.int64)
    vT = np.ascontiguousarray(v.T)
    for lo in range(0, m, _DECODE_CHUNK):
        hi = min(lo + _DECODE_CHUNK, m)
        _decode_chunk(center_order, np.ascontiguousarray(vT[:, lo:hi]), out[lo:hi], dtype)
    return out


def sample_mallows_batch(
    center: Ranking,
    theta: float,
    m: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw ``m`` exact Mallows samples as an ``(m, n)`` order-view array.

    This is the fast path used by experiments; each row is the order view of
    one sampled ranking (item at each position, top first).
    """
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    if m < 0:
        raise ValueError(f"sample count must be non-negative, got {m}")
    n = len(center)
    if m == 0:
        return np.empty((0, n), dtype=np.int64)
    if n == 0:
        return np.empty((m, 0), dtype=np.int64)
    rng = as_generator(seed)
    v = _displacement_draws(n, theta, m, rng)
    return _orders_from_displacements(center.order, v)


def sample_mallows_rankings(
    center: Ranking,
    theta: float,
    m: int,
    seed: SeedLike = None,
) -> BatchRankings:
    """Draw ``m`` exact Mallows samples as a :class:`BatchRankings` container.

    Same draws as :func:`sample_mallows_batch` (identical under the same
    seed); the container adds the cached position view and per-row accessors
    that the batch kernels consume.
    """
    orders = sample_mallows_batch(center, theta, m, seed=seed)
    return BatchRankings(orders, validate=False)


def sample_mallows(
    center: Ranking,
    theta: float,
    m: int = 1,
    seed: SeedLike = None,
) -> list[Ranking]:
    """Draw ``m`` exact Mallows samples as :class:`Ranking` objects."""
    orders = sample_mallows_batch(center, theta, m, seed=seed)
    return [Ranking(row) for row in orders]


def sample_displacements_total(
    n: int, theta: float, m: int, seed: SeedLike = None
) -> np.ndarray:
    """Draw only the total KT distances of ``m`` Mallows samples (no
    permutation materialization) — handy for statistical tests of the
    sampler and for fast expected-distance estimation."""
    rng = as_generator(seed)
    if m == 0 or n == 0:
        return np.zeros(m, dtype=np.int64)
    v = _displacement_draws(n, theta, m, rng)
    return v.sum(axis=1)
