"""Exact Mallows sampling via the Repeated Insertion Model (RIM).

Doignon et al.'s RIM builds a Mallows sample by inserting the centre's items
one at a time: when the ``(j+1)``-th item is inserted into the current list
of ``j`` items, placing it ``v`` positions from the *end* adds exactly ``v``
new discordant pairs, so drawing ``v`` from the truncated geometric
``P(v) ∝ e^{−θ v}`` on ``{0..j}`` yields a draw whose total displacement is
Mallows-distributed.  All the ``v`` draws are independent, which lets us
vectorize them across a whole batch with one inverse-CDF transform.

Sample materialization is vectorized over the whole batch and dispatched
between two bit-identical decodes:

* the **chunked decode** (:func:`_decode_chunk`) accumulates the final
  position of every item column-by-column over the ``(m, n)`` displacement
  matrix — ``O(n)`` NumPy calls but ``O(m·n²)`` elementwise work;
* the **Fenwick decode** (:func:`_decode_chunk_fenwick`) replays the
  insertions in reverse with a batch of Fenwick (binary-indexed) trees: the
  item inserted at step ``j`` lands in the ``(j − v_j + 1)``-th still-empty
  slot of the final order, an order-statistic select that the tree answers
  in ``O(log n)`` — ``O(m·n·log n)`` work overall.

Both decodes replay the same insertion process exactly (integer arithmetic
only), so their outputs are bit-for-bit identical to each other and to the
sequential insertion loop the test suite keeps as a private reference.  The
dispatcher picks by batch shape; measured wall-clock on the development
machine (``theta = 0.5``, ``m = 2048``):

======  ==============  ==============
``n``   chunked decode  Fenwick decode
======  ==============  ==============
   500       199 ms         358 ms
  1000       397 ms         390 ms
  1408       771 ms         629 ms
  2000      1296 ms         880 ms
  4000     ~4800 ms       ~2600 ms
======  ==============  ==============

The constant factors favour the chunked decode up to ``n ≈ 1000`` (and for
small batches, where the Fenwick per-call overhead cannot amortize), so the
default crossover is conservative: Fenwick runs only when
``n >= 1024 and m >= 512``.  :func:`calibrate_decode_crossover` re-measures
the crossover on the host and adjusts the threshold; because the two paths
agree bit-for-bit, the dispatch point never affects results.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

import numpy as np

from repro.batch.container import BatchRankings
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator

#: Samples decoded per chunk: keeps the ``(n, chunk)`` position block and its
#: comparison buffer resident in cache, which is worth ~2x at large ``m``.
_DECODE_CHUNK = 8192

#: Default ``n`` at or above which the Fenwick decode takes over (see the
#: crossover table in the module docstring).  ``n <= 500`` is always safely
#: below it, keeping the paper-scale workloads on the chunked path.
DEFAULT_DECODE_CROSSOVER = 1024

#: Minimum batch rows for the Fenwick decode: below this the per-call NumPy
#: overhead of the ``O(log n)`` descent dominates and the chunked decode
#: wins even at large ``n``.
FENWICK_MIN_ROWS = 512

#: Byte budget for one chunk of Fenwick trees; bounds the working set so the
#: trees stay cache-resident (an int16 tree row is ``2 * (N + 1)`` bytes).
_FENWICK_CHUNK_BYTES = 1 << 23

_decode_crossover = DEFAULT_DECODE_CROSSOVER


def _displacement_draws(n: int, theta: float, m: int, rng: np.random.Generator) -> np.ndarray:
    """Draw the RIM displacement matrix ``V`` of ``shape (m, n)``.

    ``V[s, j]`` is the number of inversions added when inserting the
    ``(j+1)``-th item of sample ``s``; it lies in ``{0..j}`` and has
    ``P(v) ∝ q^v`` with ``q = e^{−θ}``.
    """
    u = rng.random((m, n))
    j = np.arange(n, dtype=np.float64)
    q = math.exp(-theta) if theta > 0.0 else 1.0
    if q >= 1.0:
        # theta == 0, or so small that e^{-theta} rounds to 1: the law is
        # (indistinguishable from) uniform over {0..j}, and the geometric
        # inverse CDF below would divide by log(1) = 0.
        return np.floor(u * (j + 1.0)).astype(np.int64)
    # CDF(v) = (1 − q^{v+1}) / (1 − q^{j+1});  inverse transform:
    #   v = floor( log(1 − u·(1 − q^{j+1})) / log q )
    tail = 1.0 - np.power(q, j + 1.0)
    v = np.floor(np.log1p(-u * tail) / math.log(q))
    v = np.clip(v, 0, j).astype(np.int64)
    return v


def _decode_chunk(
    center_order: np.ndarray, vT: np.ndarray, out: np.ndarray, dtype: np.dtype
) -> None:
    """Decode one chunk of transposed displacements ``vT`` of ``shape (n, c)``
    into the order rows ``out`` of ``shape (c, n)``.

    Tracks the evolving position of every inserted item: inserting item ``j``
    at list index ``p = j − v[j]`` shifts every previously inserted item at
    index ``>= p`` down by one, which is a single vectorized
    compare-and-accumulate over the ``(j, c)`` block per step.  The final
    positions are scattered into order view with one ``put_along_axis``.
    """
    n, c = vT.shape
    pos = np.empty((n, c), dtype=dtype)
    pos[0] = 0
    for j in range(1, n):
        p = (j - vT[j]).astype(dtype, copy=False)
        left = pos[:j]
        np.add(left, left >= p[None, :], out=left, casting="unsafe")
        pos[j] = p
    np.put_along_axis(
        out, pos.T.astype(np.int64), np.broadcast_to(center_order, (c, n)), axis=1
    )


def _fenwick_tree_row(n: int, size: int) -> np.ndarray:
    """The Fenwick tree of an all-ones occupancy array over ``n`` slots,
    padded to ``size`` (a power of two): entry ``i`` (1-indexed) covers the
    slot range ``(i − lowbit(i), i]``, so its count has the closed form
    ``clip(min(i, n) − (i − lowbit(i)), 0, lowbit(i))``."""
    idx = np.arange(1, size + 1, dtype=np.int64)
    lowbit = idx & -idx
    counts = np.clip(np.minimum(idx, n) - (idx - lowbit), 0, lowbit)
    # Counts reach n at the root; int16 keeps the trees cache-resident for
    # every realistic n, with an int32 escape hatch above its range.
    dtype = np.int16 if n <= np.iinfo(np.int16).max else np.int32
    return counts.astype(dtype)


def _decode_chunk_fenwick(
    center_order: np.ndarray, vT: np.ndarray, out: np.ndarray
) -> None:
    """Decode one chunk of transposed displacements ``vT`` of ``shape (n, c)``
    into the order rows ``out`` of ``shape (c, n)`` in ``O(n log n)`` per
    sample.

    Replays the insertions in reverse: once the items inserted after step
    ``j`` occupy their final slots, item ``j`` — which sits at index
    ``p = j − v[j]`` among the first ``j + 1`` items — occupies the
    ``(p + 1)``-th still-empty slot.  Each sample's slot occupancy lives in
    a Fenwick tree (all trees advance in lockstep, one level per NumPy
    call): a top-down descent selects the ``(p + 1)``-th empty slot and a
    point update marks it taken.  The update walks ``base + s`` with
    ``s → s + lowbit(s)`` for a fixed ``log2(N) + 1`` steps; once a
    sample's path leaves the tree its writes are clipped onto a scrap
    column that no descent ever reads, which keeps the loop branch-free.
    """
    n, c = vT.shape
    size = 1 << max(0, (n - 1).bit_length())  # power of two >= n
    levels = size.bit_length() - 1
    row_w = size + 1  # + 1 scrap column absorbing out-of-tree update writes
    tree_row = _fenwick_tree_row(n, size)
    tree = np.empty((c, row_w), dtype=tree_row.dtype)
    tree[:, :size] = tree_row
    flat = tree.ravel()
    base = np.arange(c, dtype=np.int64) * row_w
    pos = np.empty((n, c), dtype=np.int64)
    k = np.empty(c, dtype=np.int64)
    for j in range(n - 1, -1, -1):
        # Rank of item j's final slot among the still-empty slots, 1-indexed.
        np.subtract(j + 1, vT[j], out=k, casting="unsafe")
        bp = base.copy()
        step = size >> 1
        while step:
            counts = flat.take(bp + (step - 1))
            descend = counts < k
            k -= counts * descend
            bp += step * descend
            step >>= 1
        slot = bp - base
        pos[j] = slot
        if j == 0:
            break
        s = slot + 1
        for _ in range(levels + 1):
            flat[base + np.minimum(s, row_w) - 1] -= 1
            s += s & -s
    np.put_along_axis(
        out, pos.T, np.broadcast_to(center_order, (c, n)), axis=1
    )


def _use_fenwick_decode(m: int, n: int) -> bool:
    """Shape-based dispatch between the two bit-identical decodes."""
    return n >= _decode_crossover and m >= FENWICK_MIN_ROWS


def decode_crossover() -> int:
    """The ``n`` at or above which batches decode via the Fenwick path."""
    return _decode_crossover


def set_decode_crossover(n: int | None) -> None:
    """Override the Fenwick dispatch threshold (``None`` restores the
    default).  Outputs are bit-identical on either side of the threshold,
    so this only ever changes speed."""
    global _decode_crossover
    if n is None:
        _decode_crossover = DEFAULT_DECODE_CROSSOVER
        return
    if n < 1:
        raise ValueError(f"decode crossover must be >= 1, got {n}")
    _decode_crossover = int(n)


@contextmanager
def decode_override(n: int | None):
    """Temporarily override the Fenwick dispatch threshold for the duration
    of the ``with`` block (no-op when ``n`` is ``None``); the previous
    threshold is restored on exit.  Like :func:`set_decode_crossover` this
    only ever changes speed — the decodes agree bit for bit."""
    if n is None:
        yield
        return
    previous = decode_crossover()
    set_decode_crossover(n)
    try:
        yield
    finally:
        set_decode_crossover(previous)


def calibrate_decode_crossover(
    n_grid: tuple[int, ...] = (512, 724, 1024, 1448, 2048),
    m: int = 1024,
    theta: float = 0.5,
    apply: bool = True,
) -> int:
    """Measure the chunked/Fenwick crossover on this machine.

    Times both decodes on the same displacement draws for each ``n`` in
    ``n_grid`` (ascending) and returns the smallest ``n`` from which the
    Fenwick decode stays ahead — or ``n_grid[-1] + 1`` when it never wins,
    which keeps every grid point on the chunked path.  With ``apply=True``
    (the default) the measured value becomes the live dispatch threshold.

    Calibration affects *speed only*: the decodes agree bit-for-bit, so
    results stay reproducible whatever this measures.
    """
    if m < 1:
        raise ValueError(f"calibration batch must have >= 1 rows, got {m}")
    if not n_grid or any(n < 1 for n in n_grid):
        raise ValueError(f"calibration grid must be positive, got {n_grid!r}")
    # Calibration shapes the dispatch threshold only — the decodes agree
    # bit-for-bit — so its private fixed-seed stream never reaches results.
    rng = np.random.default_rng(0)  # repro: noqa[REP001] timing-only draws
    crossover = None
    for n in sorted(n_grid):
        v = _displacement_draws(n, theta, m, rng)
        center = np.arange(n, dtype=np.int64)
        timings = []
        for fn in (_decode_chunk, _decode_chunk_fenwick):
            out = np.empty((m, n), dtype=np.int64)
            vT = np.ascontiguousarray(v.T)
            # This *is* a timing measurement: it picks the faster decode,
            # never a different answer.
            start = time.perf_counter()  # repro: noqa[REP002] speed-only
            if fn is _decode_chunk:
                dtype = (
                    np.dtype(np.int16)
                    if n <= np.iinfo(np.int16).max
                    else np.dtype(np.int64)
                )
                fn(center, vT, out, dtype)
            else:
                fn(center, vT, out)
            timings.append(
                time.perf_counter() - start  # repro: noqa[REP002] speed-only
            )
        if timings[1] < timings[0]:
            if crossover is None:
                crossover = n
        else:
            crossover = None  # must win from the crossover onwards
    result = crossover if crossover is not None else max(n_grid) + 1
    if apply:
        set_decode_crossover(result)
    return result


def _orders_from_displacements(
    center_order: np.ndarray, v: np.ndarray, method: str = "auto"
) -> np.ndarray:
    """Materialize sample orders from displacement draws, fully vectorized.

    For each sample, item ``center_order[j]`` is inserted at list index
    ``j − v[j]`` (i.e. ``v[j]`` slots before the current end).  Small-``n``
    batches decode with the chunked position accumulator (``O(n)`` NumPy
    calls, ``O(m·n²)`` elementwise work in a cache-sized dtype); past the
    measured crossover (see the module docstring) large-``n`` batches use
    the Fenwick order-statistic decode (``O(m·n·log n)``).  Both are
    bit-for-bit identical to the sequential insertion loop; ``method``
    (``"auto"``/``"chunked"``/``"fenwick"``) forces a path for tests and
    benchmarks.
    """
    if method not in ("auto", "chunked", "fenwick"):
        raise ValueError(f"unknown decode method {method!r}")
    m, n = v.shape
    out = np.empty((m, n), dtype=np.int64)
    if m == 0 or n == 0:
        return out
    vT = np.ascontiguousarray(v.T)
    if method == "fenwick" or (method == "auto" and _use_fenwick_decode(m, n)):
        size = 1 << max(0, (n - 1).bit_length())
        chunk = max(32, _FENWICK_CHUNK_BYTES // (2 * (size + 1)))
        for lo in range(0, m, chunk):
            hi = min(lo + chunk, m)
            _decode_chunk_fenwick(
                center_order, np.ascontiguousarray(vT[:, lo:hi]), out[lo:hi]
            )
        return out
    # Positions fit the smallest dtype that can hold 0..n-1; smaller elements
    # mean proportionally less memory traffic in the decode loop.
    dtype = np.dtype(np.int16) if n <= np.iinfo(np.int16).max else np.dtype(np.int64)
    for lo in range(0, m, _DECODE_CHUNK):
        hi = min(lo + _DECODE_CHUNK, m)
        _decode_chunk(center_order, np.ascontiguousarray(vT[:, lo:hi]), out[lo:hi], dtype)
    return out


def sample_mallows_batch(
    center: Ranking,
    theta: float,
    m: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw ``m`` exact Mallows samples as an ``(m, n)`` order-view array.

    This is the fast path used by experiments; each row is the order view of
    one sampled ranking (item at each position, top first).
    """
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    if m < 0:
        raise ValueError(f"sample count must be non-negative, got {m}")
    n = len(center)
    if m == 0:
        return np.empty((0, n), dtype=np.int64)
    if n == 0:
        return np.empty((m, 0), dtype=np.int64)
    rng = as_generator(seed)
    v = _displacement_draws(n, theta, m, rng)
    return _orders_from_displacements(center.order, v)


def sample_mallows_rankings(
    center: Ranking,
    theta: float,
    m: int,
    seed: SeedLike = None,
) -> BatchRankings:
    """Draw ``m`` exact Mallows samples as a :class:`BatchRankings` container.

    Same draws as :func:`sample_mallows_batch` (identical under the same
    seed); the container adds the cached position view and per-row accessors
    that the batch kernels consume.
    """
    orders = sample_mallows_batch(center, theta, m, seed=seed)
    return BatchRankings(orders, validate=False)


def sample_mallows(
    center: Ranking,
    theta: float,
    m: int = 1,
    seed: SeedLike = None,
) -> list[Ranking]:
    """Draw ``m`` exact Mallows samples as :class:`Ranking` objects."""
    orders = sample_mallows_batch(center, theta, m, seed=seed)
    return [Ranking(row) for row in orders]


def sample_displacements_total(
    n: int, theta: float, m: int, seed: SeedLike = None
) -> np.ndarray:
    """Draw only the total KT distances of ``m`` Mallows samples (no
    permutation materialization) — handy for statistical tests of the
    sampler and for fast expected-distance estimation."""
    rng = as_generator(seed)
    if m == 0 or n == 0:
        return np.zeros(m, dtype=np.int64)
    v = _displacement_draws(n, theta, m, rng)
    return v.sum(axis=1)
