"""The Generalized Mallows Model (GMM) with per-position dispersions.

Fligner & Verducci's generalization replaces the single dispersion ``θ``
with a vector ``θ_1..θ_{n-1}``: the KT distance decomposes into independent
per-insertion displacements ``V_j ∈ {0..j}`` (item ``j+1`` of the centre),
and the GMM gives each its own dispersion:

``P(π) ∝ exp(−Σ_j θ_j · V_j(π))``

This directly implements the paper's future-work proposal of "tuning
parameters within the noise distribution": large ``θ_j`` for early ``j``
keeps the *top* of the ranking stable while still randomizing the tail (or
vice versa) — e.g. preserve the podium of a search results page but shuffle
the long tail for fairness.

The RIM sampler, the partition function, and the MLE all factor across
positions, so everything here is exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import EstimationError
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator

_THETA_MAX = 50.0


def _check_thetas(thetas: np.ndarray, n: int) -> np.ndarray:
    thetas = np.asarray(thetas, dtype=np.float64)
    if thetas.shape != (n - 1,):
        raise ValueError(
            f"need {n - 1} dispersions for {n} items, got shape {thetas.shape}"
        )
    if np.any(thetas < 0):
        raise ValueError("dispersions must be non-negative")
    return thetas


def displacement_vector(ranking: Ranking, center: Ranking) -> np.ndarray:
    """The insertion displacements ``V_1..V_{n-1}`` of ``ranking`` w.r.t.
    ``center``.

    ``V_j`` counts, among the first ``j+1`` items of the centre, how many
    that the centre ranks *before* item ``j+1`` end up *after* it in
    ``ranking``.  Their sum is the Kendall tau distance (the classical
    inversion-table decomposition).
    """
    if len(ranking) != len(center):
        raise ValueError("rankings must have equal length")
    n = len(center)
    if n < 2:
        return np.zeros(0, dtype=np.int64)
    # Position of each centre item inside `ranking`.
    pos = ranking.positions[center.order]
    v = np.empty(n - 1, dtype=np.int64)
    for j in range(1, n):
        v[j - 1] = int((pos[:j] > pos[j]).sum())
    return v


@dataclass(frozen=True)
class GeneralizedMallowsModel:
    """A Generalized Mallows distribution.

    Attributes
    ----------
    center:
        The central ranking.
    thetas:
        Per-insertion dispersions, ``shape (n-1,)``; ``thetas[j-1]``
        controls ``V_j`` (the displacement of the centre's ``(j+1)``-th
        item).  A constant vector reduces to the standard Mallows model.
    """

    center: Ranking
    thetas: np.ndarray

    def __post_init__(self) -> None:
        thetas = _check_thetas(self.thetas, len(self.center))
        thetas = thetas.copy()
        thetas.setflags(write=False)
        object.__setattr__(self, "thetas", thetas)

    @classmethod
    def standard(cls, center: Ranking, theta: float) -> "GeneralizedMallowsModel":
        """The GMM that coincides with ``M(center, theta)``."""
        n = len(center)
        return cls(center=center, thetas=np.full(max(n - 1, 0), float(theta)))

    @property
    def n(self) -> int:
        """Number of items."""
        return len(self.center)

    # -- exact quantities -------------------------------------------------------

    def log_partition_function(self) -> float:
        """``log Z = Σ_j log Σ_{v=0..j} e^{−θ_j v}`` (factorized)."""
        total = 0.0
        for j in range(1, self.n):
            theta = float(self.thetas[j - 1])
            if theta == 0.0:
                total += math.log(j + 1)
            else:
                # log( (1 - e^{-θ(j+1)}) / (1 - e^{-θ}) ), via expm1.
                total += math.log(-math.expm1(-theta * (j + 1))) - math.log(
                    -math.expm1(-theta)
                )
        return total

    def log_pmf(self, ranking: Ranking) -> float:
        """Exact log-probability of ``ranking``."""
        v = displacement_vector(ranking, self.center)
        return float(-(self.thetas * v).sum() - self.log_partition_function())

    def pmf(self, ranking: Ranking) -> float:
        """Exact probability of ``ranking``."""
        return math.exp(self.log_pmf(ranking))

    def expected_displacements(self) -> np.ndarray:
        """``E[V_j]`` for each insertion — the mean of a truncated geometric
        on ``{0..j}`` with rate ``θ_j``."""
        out = np.empty(max(self.n - 1, 0), dtype=np.float64)
        for j in range(1, self.n):
            theta = float(self.thetas[j - 1])
            out[j - 1] = _truncated_geometric_mean(theta, j)
        return out

    def expected_distance(self) -> float:
        """Expected KT distance from the centre (sum of ``E[V_j]``)."""
        return float(self.expected_displacements().sum())

    # -- sampling ----------------------------------------------------------------

    def sample_orders(self, m: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``m`` exact samples as an ``(m, n)`` order-view array."""
        if m < 0:
            raise ValueError(f"sample count must be non-negative, got {m}")
        rng = as_generator(seed)
        n = self.n
        if m == 0:
            return np.empty((0, n), dtype=np.int64)
        if n == 0:
            return np.empty((m, 0), dtype=np.int64)
        u = rng.random((m, n - 1))
        v = np.zeros((m, n), dtype=np.int64)
        for j in range(1, n):
            v[:, j] = _truncated_geometric_icdf(u[:, j - 1], self.thetas[j - 1], j)
        out = np.empty((m, n), dtype=np.int64)
        center_list = self.center.order.tolist()
        for s in range(m):
            current: list[int] = []
            for j in range(n):
                current.insert(j - int(v[s, j]), center_list[j])
            out[s] = current
        return out

    def sample(self, m: int = 1, seed: SeedLike = None) -> list[Ranking]:
        """Draw ``m`` exact samples as :class:`Ranking` objects."""
        return [Ranking(row) for row in self.sample_orders(m, seed=seed)]


def _truncated_geometric_mean(theta: float, j: int) -> float:
    """Mean of ``P(v) ∝ e^{−θ v}`` on ``{0..j}``."""
    if theta == 0.0:
        return j / 2.0
    q = math.exp(-theta)
    return q / (1.0 - q) - (j + 1) * q ** (j + 1) / (1.0 - q ** (j + 1))


def _truncated_geometric_icdf(u: np.ndarray, theta: float, j: int) -> np.ndarray:
    """Inverse CDF of ``P(v) ∝ e^{−θ v}`` on ``{0..j}`` applied to ``u``."""
    if theta == 0.0:
        return np.floor(u * (j + 1)).astype(np.int64)
    q = math.exp(-theta)
    tail = 1.0 - q ** (j + 1)
    v = np.floor(np.log1p(-u * tail) / math.log(q))
    return np.clip(v, 0, j).astype(np.int64)


def fit_generalized_mallows(
    rankings: Sequence[Ranking],
    center: Ranking | None = None,
) -> GeneralizedMallowsModel:
    """Maximum-likelihood GMM fit: Borda centre (unless given) + per-position
    dispersion MLE.

    Each ``θ_j`` solves its own one-dimensional moment equation
    ``E_{θ_j}[V_j] = mean observed V_j`` (the factorized likelihood), found
    by bisection.
    """
    if not rankings:
        raise EstimationError("cannot fit a GMM from zero rankings")
    if center is None:
        from repro.mallows.learning import estimate_center_borda

        center = estimate_center_borda(rankings)
    n = len(center)
    if n < 2:
        return GeneralizedMallowsModel(center=center, thetas=np.zeros(0))

    v_sum = np.zeros(n - 1, dtype=np.float64)
    for r in rankings:
        if len(r) != n:
            raise EstimationError("all rankings must have the same length")
        v_sum += displacement_vector(r, center)
    v_bar = v_sum / len(rankings)

    thetas = np.empty(n - 1, dtype=np.float64)
    for j in range(1, n):
        thetas[j - 1] = _solve_theta_j(float(v_bar[j - 1]), j)
    return GeneralizedMallowsModel(center=center, thetas=thetas)


def _solve_theta_j(target: float, j: int, tol: float = 1e-10) -> float:
    """Solve ``E_θ[V_j] = target`` for ``θ`` (monotone decreasing in θ)."""
    if target >= j / 2.0:
        return 0.0
    if target <= 0.0:
        return _THETA_MAX
    lo, hi = 0.0, 1.0
    while _truncated_geometric_mean(hi, j) > target:
        hi *= 2.0
        if hi > _THETA_MAX:
            return _THETA_MAX
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if _truncated_geometric_mean(mid, j) > target:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return (lo + hi) / 2.0


def dispersion_profile(
    n: int, theta_head: float, theta_tail: float, split: int
) -> np.ndarray:
    """Two-level dispersion profile: ``theta_head`` for the first ``split``
    insertions, ``theta_tail`` for the rest.

    Insertion ``j`` governs the displacement of the centre's ``(j+1)``-th
    item, so the profile controls *items*, not positions:

    * ``theta_head ≈ 0, theta_tail`` large — the centre's top items shuffle
      freely among themselves while tail items stay put (the head's
      *membership* is preserved, its internal order randomized);
    * ``theta_head`` large, ``theta_tail ≈ 0`` — the top items keep their
      relative order but tail items may jump anywhere, including the head.

    The first regime is the fairness-friendly one for applications that must
    keep the shortlist membership stable; the second models noisy long-tail
    data.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0 <= split <= n - 1:
        raise ValueError(f"split must be in [0, {n - 1}], got {split}")
    if theta_head < 0 or theta_tail < 0:
        raise ValueError("dispersions must be non-negative")
    thetas = np.full(n - 1, float(theta_tail))
    thetas[:split] = float(theta_head)
    return thetas
