"""The Plackett–Luce ranking model: sampling, likelihood, MM-algorithm MLE.

Plackett–Luce is the second classical ranking distribution and the paper's
future-work candidate for an alternative "noise distribution": each item has
a positive worth ``w_i``, and a ranking is built top-down by repeatedly
choosing the next item with probability proportional to its worth among the
remaining ones.

``P(π) = Π_{j=1..n} w_{π(j)} / Σ_{t≥j} w_{π(t)}``

Used as a randomizer, worths decreasing in the central ranking's positions
(``w = strength^position``) yield a tunable perturbation analogous to
Mallows noise; the MLE here (Hunter's minorize–maximize algorithm) lets the
dispersion be *learned* from observed rankings, completing the paper's
"tuning parameters within the noise distribution" programme for this family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import EstimationError
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class PlackettLuceModel:
    """A Plackett–Luce distribution over rankings of ``n`` items.

    Attributes
    ----------
    worths:
        Positive worth per item, ``shape (n,)``.  Only ratios matter; the
        constructor normalizes to sum 1 for numerical comfort.
    """

    worths: np.ndarray

    def __post_init__(self) -> None:
        w = np.asarray(self.worths, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("worths must be a non-empty 1-D vector")
        if np.any(w <= 0) or not np.all(np.isfinite(w)):
            raise ValueError("worths must be positive and finite")
        w = w / w.sum()
        w.setflags(write=False)
        object.__setattr__(self, "worths", w)

    @classmethod
    def from_center(cls, center: Ranking, strength: float) -> "PlackettLuceModel":
        """Noise model centred on a ranking: ``w_i = strength^{position(i)}``.

        ``strength → 0`` concentrates on the centre, ``strength → 1`` is
        uniform — the PL analogue of the Mallows dispersion.
        """
        if not 0.0 < strength <= 1.0:
            raise ValueError(f"strength must be in (0, 1], got {strength}")
        w = np.power(strength, center.positions.astype(np.float64))
        return cls(worths=w)

    @property
    def n(self) -> int:
        """Number of items."""
        return int(self.worths.size)

    # -- likelihood ---------------------------------------------------------------

    def log_pmf(self, ranking: Ranking) -> float:
        """Exact log-probability of ``ranking``."""
        if len(ranking) != self.n:
            raise ValueError(
                f"ranking of {len(ranking)} items under a model of {self.n}"
            )
        w_in_order = self.worths[ranking.order]
        # Suffix sums: the denominator at step j is the worth of items not
        # yet placed (including the one being placed).
        suffix = np.cumsum(w_in_order[::-1])[::-1]
        return float(np.log(w_in_order).sum() - np.log(suffix).sum())

    def pmf(self, ranking: Ranking) -> float:
        """Exact probability of ``ranking``."""
        return math.exp(self.log_pmf(ranking))

    def log_likelihood(self, rankings: Sequence[Ranking]) -> float:
        """Joint log-likelihood of an i.i.d. sample."""
        return float(sum(self.log_pmf(r) for r in rankings))

    # -- sampling -------------------------------------------------------------------

    def sample_orders(self, m: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``m`` samples as an ``(m, n)`` order array via Gumbel-max.

        Adding i.i.d. Gumbel noise to log-worths and sorting descending
        yields exact Plackett–Luce draws in one vectorized pass.
        """
        if m < 0:
            raise ValueError(f"sample count must be non-negative, got {m}")
        rng = as_generator(seed)
        if m == 0:
            return np.empty((0, self.n), dtype=np.int64)
        log_w = np.log(self.worths)
        gumbel = rng.gumbel(size=(m, self.n))
        return np.argsort(-(log_w[None, :] + gumbel), axis=1, kind="stable")

    def sample(self, m: int = 1, seed: SeedLike = None) -> list[Ranking]:
        """Draw ``m`` samples as :class:`Ranking` objects."""
        return [Ranking(row) for row in self.sample_orders(m, seed=seed)]

    def top_choice_probabilities(self) -> np.ndarray:
        """Probability of each item being ranked first (= the worths)."""
        return self.worths.copy()


def fit_plackett_luce(
    rankings: Sequence[Ranking],
    max_iter: int = 500,
    tol: float = 1e-9,
) -> PlackettLuceModel:
    """Maximum-likelihood worths via Hunter's MM algorithm.

    Iterates ``w_i ← (appearances of i in non-final choice sets) /
    Σ (1 / suffix worth)`` until the worth vector stabilizes.  Converges for
    any sample in which every item is beaten at least once (guaranteed when
    complete rankings are observed, ``n >= 2``).

    Raises
    ------
    EstimationError
        On an empty sample or mixed ranking lengths.
    """
    if not rankings:
        raise EstimationError("cannot fit Plackett-Luce from zero rankings")
    n = len(rankings[0])
    for r in rankings:
        if len(r) != n:
            raise EstimationError("all rankings must have the same length")
    if n < 2:
        return PlackettLuceModel(worths=np.ones(max(n, 1)))

    orders = np.stack([r.order for r in rankings])
    m = orders.shape[0]
    # Wins: every non-last placement of an item is one "choice win".
    wins = np.bincount(orders[:, :-1].ravel(), minlength=n).astype(np.float64)
    # Items never placed above last have no wins; regularize minimally so
    # the MM update keeps them positive (they get the smallest worth).
    wins = np.maximum(wins, 1e-12)

    w = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        denom = np.zeros(n, dtype=np.float64)
        w_in_order = w[orders]                              # (m, n)
        suffix = np.cumsum(w_in_order[:, ::-1], axis=1)[:, ::-1]
        inv_suffix = 1.0 / suffix[:, :-1]                   # last stage is trivial
        # Item at stage j of sample s contributes inv_suffix[s, j] to every
        # item still present at stage j; accumulate via reverse cumsum per
        # sample on the positional axis, then scatter back to items.
        contrib = np.cumsum(inv_suffix, axis=1)             # (m, n-1)
        # The item placed at position j was present at stages 0..j.
        stage_weight = np.empty((m, n), dtype=np.float64)
        stage_weight[:, : n - 1] = contrib
        stage_weight[:, n - 1] = contrib[:, -1]
        np.add.at(denom, orders.ravel(), stage_weight.ravel())

        new_w = wins / np.maximum(denom, 1e-300)
        new_w /= new_w.sum()
        if np.abs(new_w - w).max() < tol:
            w = new_w
            break
        w = new_w
    return PlackettLuceModel(worths=w)
