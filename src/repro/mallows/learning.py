"""Learning Mallows models from data.

Two standard estimators are provided:

* **Centre estimation** — Borda (sort items by mean position; consistent for
  Mallows) and Copeland (sort by pairwise wins) as a robustness alternative.
* **Dispersion MLE** — given the centre, the log-likelihood of ``θ`` depends
  on the data only through the mean KT distance ``d̄``; the MLE solves the
  monotone equation ``E_θ[D] = d̄`` which we bracket and bisect.

These implement the "learning of Mallows distributions" substrate the paper
cites and enable the future-work direction of tuning noise from data.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.exceptions import EstimationError
from repro.mallows.model import MallowsModel, expected_kendall_tau
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking

_THETA_MAX = 50.0  # e^{-50} underflows any practical distance resolution.


def estimate_center_borda(rankings: Sequence[Ranking]) -> Ranking:
    """Borda centre: items sorted by their mean position across the sample.

    For samples from a Mallows distribution this is a consistent estimator
    of the central ranking.
    """
    if not rankings:
        raise EstimationError("cannot estimate a centre from zero rankings")
    n = len(rankings[0])
    mean_pos = np.zeros(n, dtype=np.float64)
    for r in rankings:
        if len(r) != n:
            raise EstimationError("all rankings must have the same length")
        mean_pos += r.positions
    mean_pos /= len(rankings)
    return Ranking(np.argsort(mean_pos, kind="stable"))


def estimate_center_copeland(rankings: Sequence[Ranking]) -> Ranking:
    """Copeland centre: items sorted by the number of pairwise majority wins.

    More robust than Borda to a minority of adversarial rankings.
    """
    if not rankings:
        raise EstimationError("cannot estimate a centre from zero rankings")
    n = len(rankings[0])
    wins = np.zeros((n, n), dtype=np.int64)
    for r in rankings:
        if len(r) != n:
            raise EstimationError("all rankings must have the same length")
        pos = r.positions
        wins += (pos[:, None] < pos[None, :]).astype(np.int64)
    majority = (wins > (len(rankings) / 2.0)).sum(axis=1)
    # More wins => earlier position; stable tie-break by item id.
    return Ranking(np.argsort(-majority, kind="stable"))


def fit_theta_mle(
    rankings: Sequence[Ranking],
    center: Ranking,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> float:
    """Maximum-likelihood dispersion given a known centre.

    Solves ``E_θ[D] = d̄`` (mean sample distance) by bisection; the left side
    is continuous and strictly decreasing in ``θ``, so the root is unique.
    Returns ``0.0`` when ``d̄`` is at or above the uniform mean and
    ``_THETA_MAX`` when ``d̄ == 0`` (point mass on the centre).
    """
    if not rankings:
        raise EstimationError("cannot fit theta from zero rankings")
    n = len(center)
    d_bar = float(
        np.mean([kendall_tau_distance(r, center) for r in rankings])
    )
    uniform_mean = n * (n - 1) / 4.0
    if d_bar >= uniform_mean:
        return 0.0
    if d_bar <= 0.0:
        return _THETA_MAX

    lo, hi = 0.0, 1.0
    while expected_kendall_tau(n, hi) > d_bar:
        hi *= 2.0
        if hi > _THETA_MAX:
            return _THETA_MAX
    for _ in range(max_iter):
        mid = (lo + hi) / 2.0
        if expected_kendall_tau(n, mid) > d_bar:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return (lo + hi) / 2.0


def fit_mallows(
    rankings: Sequence[Ranking],
    center: Ranking | None = None,
) -> MallowsModel:
    """Fit a full Mallows model: Borda centre (unless given) + MLE of θ."""
    if center is None:
        center = estimate_center_borda(rankings)
    theta = fit_theta_mle(rankings, center)
    return MallowsModel(center=center, theta=theta)
