"""Alternative randomizers: MCMC Mallows for arbitrary distances, and the
paper's future-work "other noise distributions" (Plackett–Luce noise,
random adjacent swaps).

The RIM sampler is exact but specific to the Kendall tau distance; the
Metropolis sampler here targets ``P(π) ∝ exp(−θ·d(π, π₀))`` for *any*
distance ``d`` using adjacent-transposition proposals (irreducible and
symmetric on ``S_n``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator

DistanceFn = Callable[[Ranking, Ranking], float]


def sample_mallows_mcmc(
    center: Ranking,
    theta: float,
    m: int,
    distance: DistanceFn,
    burn_in: int = 500,
    thin: int = 10,
    seed: SeedLike = None,
) -> list[Ranking]:
    """Metropolis sampling from ``P(π) ∝ exp(−θ·d(π, center))``.

    Parameters
    ----------
    center, theta:
        Model parameters; ``theta >= 0``.
    m:
        Number of (thinned) samples to return.
    distance:
        Any ranking distance, e.g. :func:`footrule_distance` or
        :func:`ulam_distance`.
    burn_in:
        Steps discarded before collecting.
    thin:
        Steps between collected samples (reduces autocorrelation).
    """
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    if m < 0:
        raise ValueError(f"sample count must be non-negative, got {m}")
    if burn_in < 0 or thin < 1:
        raise ValueError("burn_in must be >= 0 and thin >= 1")
    rng = as_generator(seed)
    n = len(center)
    if m == 0:
        return []
    if n < 2:
        return [center] * m

    current = center
    current_d = 0.0
    samples: list[Ranking] = []
    total_steps = burn_in + m * thin
    cut_points = rng.integers(0, n - 1, size=total_steps)
    accept_u = rng.random(total_steps)

    for step in range(total_steps):
        j = int(cut_points[step])
        proposal = current.swap_positions(j, j + 1)
        prop_d = float(distance(proposal, center))
        log_ratio = -theta * (prop_d - current_d)
        if log_ratio >= 0 or accept_u[step] < np.exp(log_ratio):
            current = proposal
            current_d = prop_d
        if step >= burn_in and (step - burn_in) % thin == thin - 1:
            samples.append(current)
    return samples


def plackett_luce_noise(
    center: Ranking,
    strength: float,
    m: int,
    seed: SeedLike = None,
) -> list[Ranking]:
    """Plackett–Luce perturbation of a ranking.

    Items get utilities decreasing geometrically with their central position
    (``w_i = strength^{position}`` with ``strength ∈ (0, 1)``) and a PL
    sample is drawn by Gumbel-max.  ``strength → 0`` concentrates on the
    centre; ``strength → 1`` approaches uniform.
    """
    if not 0.0 < strength <= 1.0:
        raise ValueError(f"strength must be in (0, 1], got {strength}")
    if m < 0:
        raise ValueError(f"sample count must be non-negative, got {m}")
    rng = as_generator(seed)
    n = len(center)
    log_w = np.log(strength) * center.positions.astype(np.float64)
    samples = []
    for _ in range(m):
        gumbel = rng.gumbel(size=n)
        samples.append(Ranking(np.argsort(-(log_w + gumbel), kind="stable")))
    return samples


def random_adjacent_swaps(
    center: Ranking,
    n_swaps: int,
    m: int,
    seed: SeedLike = None,
) -> list[Ranking]:
    """Baseline noise: apply ``n_swaps`` uniformly random adjacent
    transpositions to the centre, ``m`` independent times."""
    if n_swaps < 0:
        raise ValueError(f"n_swaps must be non-negative, got {n_swaps}")
    if m < 0:
        raise ValueError(f"sample count must be non-negative, got {m}")
    rng = as_generator(seed)
    n = len(center)
    samples = []
    for _ in range(m):
        order = center.order.copy()
        if n >= 2:
            for j in rng.integers(0, n - 1, size=n_swaps):
                order[j], order[j + 1] = order[j + 1], order[j]
        samples.append(Ranking(order))
    return samples
