"""Alternative randomizers: MCMC Mallows for arbitrary distances, and the
paper's future-work "other noise distributions" (Plackett–Luce noise,
random adjacent swaps).

The RIM sampler is exact but specific to the Kendall tau distance; the
Metropolis sampler here targets ``P(π) ∝ exp(−θ·d(π, π₀))`` for *any*
distance ``d`` using adjacent-transposition proposals (irreducible and
symmetric on ``S_n``).

Each sampler has a ``*_batch`` variant returning a
:class:`~repro.batch.container.BatchRankings` (the currency of the batched
evaluation kernels); the list-of-:class:`Ranking` APIs are thin wrappers over
those.  The noise samplers draw their randomness in one vectorized block, in
the exact stream order of the historical per-sample loops, so seeded results
are unchanged.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.batch.container import BatchRankings
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator

DistanceFn = Callable[[Ranking, Ranking], float]


def sample_mallows_mcmc_batch(
    center: Ranking,
    theta: float,
    m: int,
    distance: DistanceFn,
    burn_in: int = 500,
    thin: int = 10,
    seed: SeedLike = None,
) -> BatchRankings:
    """Metropolis sampling from ``P(π) ∝ exp(−θ·d(π, center))`` as a batch.

    Parameters
    ----------
    center, theta:
        Model parameters; ``theta >= 0``.
    m:
        Number of (thinned) samples to return.
    distance:
        Any ranking distance, e.g. :func:`footrule_distance` or
        :func:`ulam_distance`.
    burn_in:
        Steps discarded before collecting.
    thin:
        Steps between collected samples (reduces autocorrelation).
    """
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    if m < 0:
        raise ValueError(f"sample count must be non-negative, got {m}")
    if burn_in < 0 or thin < 1:
        raise ValueError("burn_in must be >= 0 and thin >= 1")
    rng = as_generator(seed)
    n = len(center)
    if m == 0:
        return BatchRankings(np.empty((0, n), dtype=np.int64), validate=False)
    if n < 2:
        return BatchRankings(
            np.tile(center.order, (m, 1)), validate=False
        )

    current = center
    current_d = 0.0
    out = np.empty((m, n), dtype=np.int64)
    collected = 0
    total_steps = burn_in + m * thin
    cut_points = rng.integers(0, n - 1, size=total_steps)
    accept_u = rng.random(total_steps)

    for step in range(total_steps):
        j = int(cut_points[step])
        proposal = current.swap_positions(j, j + 1)
        prop_d = float(distance(proposal, center))
        log_ratio = -theta * (prop_d - current_d)
        if log_ratio >= 0 or accept_u[step] < np.exp(log_ratio):
            current = proposal
            current_d = prop_d
        if step >= burn_in and (step - burn_in) % thin == thin - 1:
            out[collected] = current.order
            collected += 1
    return BatchRankings(out, validate=False)


def sample_mallows_mcmc(
    center: Ranking,
    theta: float,
    m: int,
    distance: DistanceFn,
    burn_in: int = 500,
    thin: int = 10,
    seed: SeedLike = None,
) -> list[Ranking]:
    """Metropolis Mallows sampling returning :class:`Ranking` objects; see
    :func:`sample_mallows_mcmc_batch` for the parameters."""
    return sample_mallows_mcmc_batch(
        center, theta, m, distance, burn_in=burn_in, thin=thin, seed=seed
    ).to_rankings()


def plackett_luce_noise_batch(
    center: Ranking,
    strength: float,
    m: int,
    seed: SeedLike = None,
) -> BatchRankings:
    """Plackett–Luce perturbation of a ranking, as a batch.

    Items get utilities decreasing geometrically with their central position
    (``w_i = strength^{position}`` with ``strength ∈ (0, 1)``) and a PL
    sample is drawn by Gumbel-max.  ``strength → 0`` concentrates on the
    centre; ``strength → 1`` approaches uniform.  All ``m`` Gumbel blocks are
    drawn at once and ranked with one batched argsort.
    """
    if not 0.0 < strength <= 1.0:
        raise ValueError(f"strength must be in (0, 1], got {strength}")
    if m < 0:
        raise ValueError(f"sample count must be non-negative, got {m}")
    rng = as_generator(seed)
    n = len(center)
    log_w = np.log(strength) * center.positions.astype(np.float64)
    gumbel = rng.gumbel(size=(m, n))
    orders = np.argsort(-(log_w[None, :] + gumbel), axis=1, kind="stable")
    return BatchRankings(orders, validate=False)


def plackett_luce_noise(
    center: Ranking,
    strength: float,
    m: int,
    seed: SeedLike = None,
) -> list[Ranking]:
    """Plackett–Luce perturbation returning :class:`Ranking` objects; see
    :func:`plackett_luce_noise_batch`."""
    return plackett_luce_noise_batch(center, strength, m, seed=seed).to_rankings()


def random_adjacent_swaps_batch(
    center: Ranking,
    n_swaps: int,
    m: int,
    seed: SeedLike = None,
) -> BatchRankings:
    """Baseline noise: apply ``n_swaps`` uniformly random adjacent
    transpositions to the centre, ``m`` independent times, as a batch.

    The swap indices for all samples are drawn in one ``(m, n_swaps)`` block;
    the swaps are then applied swap-step by swap-step across the whole batch
    (each step touches two columns per row via fancy indexing).
    """
    if n_swaps < 0:
        raise ValueError(f"n_swaps must be non-negative, got {n_swaps}")
    if m < 0:
        raise ValueError(f"sample count must be non-negative, got {m}")
    rng = as_generator(seed)
    n = len(center)
    orders = np.tile(center.order, (m, 1)) if m else np.empty((0, n), dtype=np.int64)
    if m and n >= 2 and n_swaps:
        cuts = rng.integers(0, n - 1, size=(m, n_swaps))
        rows = np.arange(m)
        for t in range(n_swaps):
            j = cuts[:, t]
            left = orders[rows, j]
            orders[rows, j] = orders[rows, j + 1]
            orders[rows, j + 1] = left
    return BatchRankings(orders, validate=False)


def random_adjacent_swaps(
    center: Ranking,
    n_swaps: int,
    m: int,
    seed: SeedLike = None,
) -> list[Ranking]:
    """Adjacent-swap noise returning :class:`Ranking` objects; see
    :func:`random_adjacent_swaps_batch`."""
    return random_adjacent_swaps_batch(center, n_swaps, m, seed=seed).to_rankings()
