"""The Mallows distribution ``M(π₀, θ)`` under the Kendall tau distance.

``P[π | π₀, θ] = exp(−θ · d_KT(π, π₀)) / Z_k(θ)`` where the partition
function ``Z_k(θ) = Π_{j=1..k} (1 − e^{−jθ}) / (1 − e^{−θ})`` depends only on
the length ``k`` and the dispersion ``θ`` (not on the centre) — a classical
fact that also yields the exact repeated-insertion sampler.

``θ = 0`` is the uniform distribution over ``S_k``; ``θ → ∞`` concentrates on
the central ranking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.rankings.distances import kendall_tau_distance, max_kendall_tau
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike


def log_partition_function(n: int, theta: float) -> float:
    """``log Z_n(θ)`` for the KT-distance Mallows model on ``S_n``.

    Numerically stable for all ``θ >= 0``; at ``θ = 0`` equals ``log n!``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    if n <= 1:
        return 0.0
    if theta == 0.0:
        return float(math.lgamma(n + 1))
    # log Z = sum_{j=1..n} [log(1 - e^{-j θ}) - log(1 - e^{-θ})], written
    # via expm1 so that tiny θ (where e^{-θ} rounds to 1) stays finite:
    # 1 - e^{-x} = -expm1(-x) ≈ x for small x.
    j = np.arange(1, n + 1, dtype=np.float64)
    log_terms = np.log(-np.expm1(-j * theta))
    return float(log_terms.sum() - n * math.log(-math.expm1(-theta)))


def partition_function(n: int, theta: float) -> float:
    """``Z_n(θ)`` (may overflow to ``inf`` for large ``n`` at ``θ = 0``)."""
    return float(math.exp(log_partition_function(n, theta)))


def expected_kendall_tau(n: int, theta: float) -> float:
    """Expected KT distance of a Mallows sample from its centre.

    ``E[D] = n·q/(1−q) − Σ_{j=1..n} j·q^j/(1−q^j)`` with ``q = e^{−θ}``.
    At ``θ = 0`` this is the uniform mean ``n(n−1)/4``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    if n <= 1:
        return 0.0
    if theta == 0.0:
        return n * (n - 1) / 4.0
    q = math.exp(-theta)
    j = np.arange(1, n + 1, dtype=np.float64)
    qj = np.exp(-j * theta)
    total = n * q / (1.0 - q) - float((j * qj / (1.0 - qj)).sum())
    return float(total)


def variance_kendall_tau(n: int, theta: float) -> float:
    """Variance of the KT distance of a Mallows sample from its centre.

    The distance decomposes into independent per-insertion displacements
    ``V_j`` on ``{0..j−1}`` with ``P(v) ∝ q^v``, so the variance is the sum
    of truncated-geometric variances.
    """
    if n <= 1:
        return 0.0
    if theta == 0.0:
        # Var of uniform inversions: sum_{j=1..n-1} (j^2 + 2j)/12  (variance
        # of uniform on {0..j}).
        j = np.arange(1, n, dtype=np.float64)
        return float((((j + 1) ** 2 - 1) / 12.0).sum())
    q = math.exp(-theta)
    var = 0.0
    for j in range(2, n + 1):
        # V on {0..j-1}, P(v) ∝ q^v: Var = q/(1-q)^2 − j² q^j/(1−q^j)².
        var += q / (1 - q) ** 2 - (j**2) * (q**j) / (1 - q**j) ** 2
    return float(var)


@dataclass(frozen=True)
class MallowsModel:
    """A Mallows distribution with centre ``center`` and dispersion ``theta``.

    Provides exact pmf evaluation, moments, and sampling (delegated to
    :mod:`repro.mallows.sampling`).
    """

    center: Ranking
    theta: float

    def __post_init__(self) -> None:
        if self.theta < 0:
            raise ValueError(f"theta must be non-negative, got {self.theta}")

    @property
    def n(self) -> int:
        """Number of items."""
        return len(self.center)

    def log_pmf(self, ranking: Ranking) -> float:
        """``log P[ranking]`` under the model."""
        d = kendall_tau_distance(ranking, self.center)
        return -self.theta * d - log_partition_function(self.n, self.theta)

    def pmf(self, ranking: Ranking) -> float:
        """``P[ranking]`` under the model."""
        return float(math.exp(self.log_pmf(ranking)))

    def expected_distance(self) -> float:
        """Expected KT distance from the centre."""
        return expected_kendall_tau(self.n, self.theta)

    def distance_std(self) -> float:
        """Standard deviation of the KT distance from the centre."""
        return math.sqrt(variance_kendall_tau(self.n, self.theta))

    def max_distance(self) -> int:
        """Largest possible KT distance, ``n(n−1)/2``."""
        return max_kendall_tau(self.n)

    def sample(self, m: int = 1, seed: SeedLike = None) -> list[Ranking]:
        """Draw ``m`` exact samples (repeated-insertion model)."""
        from repro.mallows.sampling import sample_mallows

        return sample_mallows(self.center, self.theta, m, seed=seed)

    def sample_orders(self, m: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``m`` samples as an ``(m, n)`` order-view array (fast path)."""
        from repro.mallows.sampling import sample_mallows_batch

        return sample_mallows_batch(self.center, self.theta, m, seed=seed)

    def log_likelihood(self, rankings: Sequence[Ranking]) -> float:
        """Joint log-likelihood of an i.i.d. sample."""
        return float(sum(self.log_pmf(r) for r in rankings))
