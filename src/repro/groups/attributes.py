"""Group assignments: which protected group each item belongs to.

A :class:`GroupAssignment` maps each of ``n`` items to one of ``g`` groups.
Group labels may be arbitrary hashables (strings like ``"<35-female"`` or
ints); internally items are stored as dense group indices ``0..g-1`` so that
fairness computations are vectorized.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.exceptions import GroupAssignmentError


class GroupAssignment:
    """Assignment of ``n`` items to ``g`` protected groups.

    Parameters
    ----------
    labels:
        One group label per item.  Labels may be any hashable; the distinct
        labels are sorted (by string representation) to obtain a stable
        group indexing.

    Examples
    --------
    >>> ga = GroupAssignment(["a", "b", "a", "a"])
    >>> ga.n_groups
    2
    >>> ga.group_sizes.tolist()
    [3, 1]
    """

    __slots__ = ("_indices", "_labels", "_label_to_index")

    def __init__(self, labels: Sequence[Hashable]):
        labels = list(labels)
        if not labels:
            raise GroupAssignmentError("group assignment cannot be empty")
        distinct = sorted(set(labels), key=lambda x: (str(type(x)), str(x)))
        self._labels: tuple[Hashable, ...] = tuple(distinct)
        self._label_to_index = {lab: i for i, lab in enumerate(self._labels)}
        self._indices = np.array(
            [self._label_to_index[lab] for lab in labels], dtype=np.int64
        )
        self._indices.setflags(write=False)

    @classmethod
    def from_indices(cls, indices: Sequence[int] | np.ndarray, n_groups: int | None = None) -> "GroupAssignment":
        """Build from dense group indices ``0..g-1``.

        ``n_groups`` may declare trailing empty groups (indices never used);
        this matters when constraints are defined for groups that happen to
        be absent from a particular sample.
        """
        arr = np.asarray(indices, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise GroupAssignmentError(
                f"indices must be a non-empty 1-D array, got shape {arr.shape}"
            )
        if arr.min() < 0:
            raise GroupAssignmentError("group indices must be non-negative")
        g = int(arr.max()) + 1 if n_groups is None else int(n_groups)
        if arr.max() >= g:
            raise GroupAssignmentError(
                f"index {int(arr.max())} out of range for {g} groups"
            )
        obj = cls.__new__(cls)
        obj._labels = tuple(range(g))
        obj._label_to_index = {i: i for i in range(g)}
        idx = arr.copy()
        idx.setflags(write=False)
        obj._indices = idx
        return obj

    # -- basic views -----------------------------------------------------------

    @property
    def n_items(self) -> int:
        """Number of items."""
        return int(self._indices.size)

    @property
    def n_groups(self) -> int:
        """Number of distinct groups ``g``."""
        return len(self._labels)

    @property
    def labels(self) -> tuple[Hashable, ...]:
        """Group labels in index order."""
        return self._labels

    @property
    def indices(self) -> np.ndarray:
        """Read-only dense group index of each item."""
        return self._indices

    @property
    def group_sizes(self) -> np.ndarray:
        """Size of each group, ``shape (g,)``."""
        return np.bincount(self._indices, minlength=self.n_groups)

    @property
    def proportions(self) -> np.ndarray:
        """Fraction of items in each group, ``shape (g,)``."""
        return self.group_sizes / self.n_items

    def group_of(self, item: int) -> Hashable:
        """Label of the group containing ``item``."""
        return self._labels[int(self._indices[item])]

    def index_of_label(self, label: Hashable) -> int:
        """Dense index of a group label."""
        try:
            return self._label_to_index[label]
        except KeyError:
            raise GroupAssignmentError(f"unknown group label {label!r}") from None

    def members(self, label: Hashable) -> np.ndarray:
        """Items belonging to the group with the given label."""
        return np.flatnonzero(self._indices == self.index_of_label(label))

    def subset(self, items: Sequence[int] | np.ndarray) -> "GroupAssignment":
        """Assignment restricted to ``items`` (re-indexed 0..len(items)-1),
        keeping the full group space so constraint vectors stay aligned."""
        items = np.asarray(items, dtype=np.int64)
        return GroupAssignment.from_indices(self._indices[items], self.n_groups)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GroupAssignment):
            return NotImplemented
        return self._labels == other._labels and bool(
            np.array_equal(self._indices, other._indices)
        )

    def __repr__(self) -> str:
        return (
            f"GroupAssignment(n_items={self.n_items}, n_groups={self.n_groups}, "
            f"sizes={self.group_sizes.tolist()})"
        )


def combine_attributes(*assignments: GroupAssignment) -> GroupAssignment:
    """Cross two or more attributes into one combined attribute.

    The paper combines the binary ``Sex`` and ``Age`` attributes of German
    Credit into a four-valued ``Sex−Age`` attribute; this helper generalizes
    that construction.  The combined label of an item is the tuple of its
    per-attribute labels.
    """
    if not assignments:
        raise GroupAssignmentError("need at least one assignment to combine")
    n = assignments[0].n_items
    for a in assignments[1:]:
        if a.n_items != n:
            raise GroupAssignmentError(
                "all assignments must cover the same items "
                f"({n} vs {a.n_items})"
            )
    combined = [
        tuple(a.group_of(i) for a in assignments) for i in range(n)
    ]
    return GroupAssignment(combined)
