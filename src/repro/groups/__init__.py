"""Protected-attribute layer: group assignments and proportion vectors."""

from repro.groups.attributes import GroupAssignment, combine_attributes
from repro.groups.proportions import (
    proportional_bounds,
    relaxed_proportional_bounds,
)

__all__ = [
    "GroupAssignment",
    "combine_attributes",
    "proportional_bounds",
    "relaxed_proportional_bounds",
]
