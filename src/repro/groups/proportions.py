"""Constructing (α, β) proportion vectors from group statistics.

The paper's two-sided P-fairness bounds each group ``i`` in every prefix
``P`` between ``⌊β_i·|P|⌋`` and ``⌈α_i·|P|⌉`` elements.  The natural choice,
used throughout the experiments, sets both vectors to the groups' population
proportions (``α = β = p``); :func:`relaxed_proportional_bounds` widens the
band by a slack factor for applications that tolerate looser representation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidConstraintError
from repro.groups.attributes import GroupAssignment


def proportional_bounds(groups: GroupAssignment) -> tuple[np.ndarray, np.ndarray]:
    """``(alpha, beta)`` both equal to the group proportions.

    With ``α = β = p`` the feasible count for group ``i`` in a prefix of
    length ``ℓ`` is the integer band ``[⌊p_i·ℓ⌋, ⌈p_i·ℓ⌉]`` — proportional
    representation up to rounding.
    """
    p = groups.proportions
    return p.copy(), p.copy()


def relaxed_proportional_bounds(
    groups: GroupAssignment, slack: float
) -> tuple[np.ndarray, np.ndarray]:
    """Proportions widened by ``slack``: lower bounds scaled by ``1 − slack``
    and upper bounds by ``1 + slack`` (clipped to ``[0, 1]``).

    Parameters
    ----------
    slack:
        Relative relaxation in ``[0, 1]``.  ``slack = 0`` reduces to
        :func:`proportional_bounds`.
    """
    if not 0.0 <= slack <= 1.0:
        raise InvalidConstraintError(f"slack must be in [0, 1], got {slack}")
    p = groups.proportions
    lower = np.clip(p * (1.0 - slack), 0.0, 1.0)
    upper = np.clip(p * (1.0 + slack), 0.0, 1.0)
    return upper, lower  # (alpha, beta) = (upper-rate, lower-rate)
