"""Aggregate-then-make-fair pipeline.

The related-work recipe (Wei et al., Chakraborty et al.): first aggregate the
input rankings into a near-optimal consensus for the Kemeny objective, then
transform that consensus into a P-fair ranking with a post-processing
algorithm.  Any aggregator from this package and any
:class:`~repro.algorithms.base.FairRankingAlgorithm` compose — including the
paper's attribute-blind Mallows method, which turns the pipeline into fair
aggregation *without* the protected attribute.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.algorithms.base import (
    FairRankingAlgorithm,
    FairRankingProblem,
    FairRankingResult,
)
from repro.aggregation.borda import borda_aggregate
from repro.aggregation.pairwise import total_kendall_tau
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike

Aggregator = Callable[[Sequence[Ranking]], Ranking]


class FairAggregationPipeline:
    """Compose an aggregation rule with a fair post-processing algorithm.

    Parameters
    ----------
    postprocessor:
        Any fair-ranking algorithm; it receives the aggregated consensus as
        the base ranking.
    aggregator:
        Aggregation rule mapping input rankings to a consensus
        (default: Borda).
    """

    def __init__(
        self,
        postprocessor: FairRankingAlgorithm,
        aggregator: Aggregator = borda_aggregate,
    ):
        self.postprocessor = postprocessor
        self.aggregator = aggregator

    def aggregate(
        self,
        rankings: Sequence[Ranking],
        groups: Optional[GroupAssignment] = None,
        constraints: Optional[FairnessConstraints] = None,
        scores: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> FairRankingResult:
        """Aggregate ``rankings`` and post-process the consensus.

        When ``scores`` is omitted, a Borda-style positional score derived
        from the consensus is supplied so NDCG-driven post-processors remain
        applicable; distance-driven ones ignore it.
        """
        if not rankings:
            raise ValueError("need at least one input ranking")
        consensus = self.aggregator(rankings)
        if scores is None:
            n = len(consensus)
            # Positional surrogate scores: n-1 for the consensus top item.
            scores = np.empty(n, dtype=np.float64)
            scores[consensus.order] = np.arange(n - 1, -1, -1, dtype=np.float64)
        problem = FairRankingProblem(
            base_ranking=consensus,
            scores=np.asarray(scores, dtype=np.float64),
            groups=groups,
            constraints=constraints,
        )
        result = self.postprocessor.rank(problem, seed=seed)
        result.metadata["consensus_total_kt"] = total_kendall_tau(consensus, rankings)
        result.metadata["output_total_kt"] = total_kendall_tau(
            result.ranking, rankings
        )
        return result
