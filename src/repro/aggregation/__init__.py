"""Rank-aggregation substrate (the related-work pipeline the paper builds on):
aggregate many input rankings into one, then post-process it to be P-fair."""

from repro.aggregation.pairwise import pairwise_preference_matrix, total_kendall_tau
from repro.aggregation.borda import borda_aggregate
from repro.aggregation.copeland import copeland_aggregate
from repro.aggregation.kemeny import kemeny_aggregate_exact, kwiksort_aggregate
from repro.aggregation.fair_aggregation import FairAggregationPipeline

__all__ = [
    "pairwise_preference_matrix",
    "total_kendall_tau",
    "borda_aggregate",
    "copeland_aggregate",
    "kemeny_aggregate_exact",
    "kwiksort_aggregate",
    "FairAggregationPipeline",
]
