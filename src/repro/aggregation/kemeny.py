"""Kemeny rank aggregation: exact (small n) and KwikSort approximation.

The Kemeny optimum minimizes the total Kendall tau distance to the inputs —
the objective the fair-aggregation literature (Wei et al., Chakraborty et
al.) starts from.  Exact search is factorial, so it is gated to small ``n``;
KwikSort (Ailon–Charikar–Newman) gives an expected 11/7-approximation by
quicksorting around random pivots using majority preferences.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregation.pairwise import (
    kemeny_objective_from_matrix,
    pairwise_preference_matrix,
)
from repro.exceptions import LengthMismatchError
from repro.rankings.permutation import Ranking, all_rankings
from repro.utils.rng import SeedLike, as_generator

_EXACT_LIMIT = 9


def kemeny_aggregate_exact(rankings: Sequence[Ranking]) -> Ranking:
    """Exhaustive Kemeny optimum (``n <= 9`` guarded — n! candidates)."""
    if not rankings:
        raise ValueError("need at least one ranking")
    n = len(rankings[0])
    for r in rankings[1:]:
        if len(r) != n:
            raise LengthMismatchError(
                f"all rankings must have the same length, got {n} and {len(r)}"
            )
    if n > _EXACT_LIMIT:
        raise ValueError(
            f"exact Kemeny is factorial; refusing n={n} > {_EXACT_LIMIT} "
            "(use kwiksort_aggregate)"
        )
    w = pairwise_preference_matrix(rankings)
    best: Ranking | None = None
    best_cost = None
    for candidate in all_rankings(n):
        cost = kemeny_objective_from_matrix(candidate, w)
        if best_cost is None or cost < best_cost:
            best, best_cost = candidate, cost
    assert best is not None
    return best


def kwiksort_aggregate(rankings: Sequence[Ranking], seed: SeedLike = None) -> Ranking:
    """KwikSort approximation to Kemeny: randomized quicksort by majority."""
    if not rankings:
        raise ValueError("need at least one ranking")
    rng = as_generator(seed)
    w = pairwise_preference_matrix(rankings)
    items = list(range(len(rankings[0])))
    ordered = _kwiksort(items, w, rng)
    return Ranking(np.array(ordered, dtype=np.int64))


def _kwiksort(items: list[int], w: np.ndarray, rng: np.random.Generator) -> list[int]:
    """Iterative KwikSort with an explicit work stack.

    Unlucky pivots make the partition tree a chain of depth ``n``, which the
    natural recursion turns into a ``RecursionError`` for large ``n``; the
    explicit stack is depth-proof.  Work items are processed left branch
    first, so pivots are drawn in exactly the recursive implementation's
    order and seeded outputs are unchanged.
    """
    ordered: list[int] = []
    stack: list[list[int] | int] = [items]
    while stack:
        top = stack.pop()
        if isinstance(top, int):
            ordered.append(top)
            continue
        if len(top) <= 1:
            ordered.extend(top)
            continue
        pivot = top[int(rng.integers(0, len(top)))]
        left = [i for i in top if i != pivot and w[i, pivot] > w[pivot, i]]
        right = [i for i in top if i != pivot and w[i, pivot] <= w[pivot, i]]
        stack.append(right)
        stack.append(pivot)
        stack.append(left)
    return ordered
