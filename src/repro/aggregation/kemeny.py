"""Kemeny rank aggregation: exact (small n) and KwikSort approximation.

The Kemeny optimum minimizes the total Kendall tau distance to the inputs —
the objective the fair-aggregation literature (Wei et al., Chakraborty et
al.) starts from.  Exact search is factorial, so it is gated to small ``n``;
KwikSort (Ailon–Charikar–Newman) gives an expected 11/7-approximation by
quicksorting around random pivots using majority preferences.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregation.pairwise import (
    kemeny_objective_from_matrix,
    pairwise_preference_matrix,
)
from repro.rankings.permutation import Ranking, all_rankings
from repro.utils.rng import SeedLike, as_generator

_EXACT_LIMIT = 9


def kemeny_aggregate_exact(rankings: Sequence[Ranking]) -> Ranking:
    """Exhaustive Kemeny optimum (``n <= 9`` guarded — n! candidates)."""
    if not rankings:
        raise ValueError("need at least one ranking")
    n = len(rankings[0])
    if n > _EXACT_LIMIT:
        raise ValueError(
            f"exact Kemeny is factorial; refusing n={n} > {_EXACT_LIMIT} "
            "(use kwiksort_aggregate)"
        )
    w = pairwise_preference_matrix(rankings)
    best: Ranking | None = None
    best_cost = None
    for candidate in all_rankings(n):
        cost = kemeny_objective_from_matrix(candidate, w)
        if best_cost is None or cost < best_cost:
            best, best_cost = candidate, cost
    assert best is not None
    return best


def kwiksort_aggregate(rankings: Sequence[Ranking], seed: SeedLike = None) -> Ranking:
    """KwikSort approximation to Kemeny: randomized quicksort by majority."""
    if not rankings:
        raise ValueError("need at least one ranking")
    rng = as_generator(seed)
    w = pairwise_preference_matrix(rankings)
    items = list(range(len(rankings[0])))
    ordered = _kwiksort(items, w, rng)
    return Ranking(np.array(ordered, dtype=np.int64))


def _kwiksort(items: list[int], w: np.ndarray, rng: np.random.Generator) -> list[int]:
    if len(items) <= 1:
        return items
    pivot = items[int(rng.integers(0, len(items)))]
    left = [i for i in items if i != pivot and w[i, pivot] > w[pivot, i]]
    right = [i for i in items if i != pivot and w[i, pivot] <= w[pivot, i]]
    return _kwiksort(left, w, rng) + [pivot] + _kwiksort(right, w, rng)
