"""Pairwise-preference machinery shared by the aggregation rules.

Both entry points are backed by the batched kernels: the preference matrix
is accumulated from the stacked ``(m, n)`` position views in row chunks, and
the Kemeny objective sums one many-vs-one batched Kendall tau call instead
of ``m`` scalar merge sorts.  Results are integer-identical to the original
per-ranking loops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import LengthMismatchError
from repro.rankings.permutation import Ranking

#: Elements per (chunk, n, n) comparison tensor when accumulating the
#: preference matrix — same memory philosophy as the kernel budgets.
_PREFERENCE_BUDGET = 1 << 24


def _stacked_positions(rankings: Sequence[Ranking]) -> np.ndarray:
    """``(m, n)`` position views, validated to share one length."""
    n = len(rankings[0])
    for r in rankings:
        if len(r) != n:
            raise LengthMismatchError("all rankings must have the same length")
    return np.stack([r.positions for r in rankings])


def pairwise_preference_matrix(rankings: Sequence[Ranking]) -> np.ndarray:
    """``W[i, j]`` = number of input rankings placing item ``i`` before ``j``.

    The diagonal is zero and ``W[i, j] + W[j, i] = len(rankings)`` off the
    diagonal.
    """
    if not rankings:
        raise ValueError("need at least one ranking")
    pos = _stacked_positions(rankings)
    m, n = pos.shape
    w = np.zeros((n, n), dtype=np.int64)
    chunk = max(1, _PREFERENCE_BUDGET // max(1, n * n))
    for lo in range(0, m, chunk):
        p = pos[lo : lo + chunk]
        w += (p[:, :, None] < p[:, None, :]).sum(axis=0, dtype=np.int64)
    np.fill_diagonal(w, 0)
    return w


def total_kendall_tau(candidate: Ranking, rankings: Sequence[Ranking]) -> int:
    """Total KT distance from ``candidate`` to all input rankings — the
    Kemeny objective."""
    from repro.batch.kernels import batch_kendall_tau

    if not rankings:
        return 0
    n = len(candidate)
    for r in rankings:
        if len(r) != n:
            raise LengthMismatchError(
                f"rankings must have the same length, got {n} and {len(r)}"
            )
    orders = np.stack([r.order for r in rankings])
    return int(batch_kendall_tau(orders, candidate).sum())


def kemeny_objective_from_matrix(candidate: Ranking, w: np.ndarray) -> int:
    """Kemeny objective evaluated from a precomputed preference matrix:
    for each ordered pair the candidate puts ``i`` before ``j``, it pays
    ``W[j, i]`` (the rankings that disagree)."""
    pos = candidate.positions
    before = pos[:, None] < pos[None, :]
    return int((w.T * before).sum())
