"""Pairwise-preference machinery shared by the aggregation rules."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import LengthMismatchError
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking


def pairwise_preference_matrix(rankings: Sequence[Ranking]) -> np.ndarray:
    """``W[i, j]`` = number of input rankings placing item ``i`` before ``j``.

    The diagonal is zero and ``W[i, j] + W[j, i] = len(rankings)`` off the
    diagonal.
    """
    if not rankings:
        raise ValueError("need at least one ranking")
    n = len(rankings[0])
    w = np.zeros((n, n), dtype=np.int64)
    for r in rankings:
        if len(r) != n:
            raise LengthMismatchError("all rankings must have the same length")
        pos = r.positions
        w += (pos[:, None] < pos[None, :]).astype(np.int64)
    np.fill_diagonal(w, 0)
    return w


def total_kendall_tau(candidate: Ranking, rankings: Sequence[Ranking]) -> int:
    """Total KT distance from ``candidate`` to all input rankings — the
    Kemeny objective."""
    return sum(kendall_tau_distance(candidate, r) for r in rankings)


def kemeny_objective_from_matrix(candidate: Ranking, w: np.ndarray) -> int:
    """Kemeny objective evaluated from a precomputed preference matrix:
    for each ordered pair the candidate puts ``i`` before ``j``, it pays
    ``W[j, i]`` (the rankings that disagree)."""
    pos = candidate.positions
    before = pos[:, None] < pos[None, :]
    return int((w.T * before).sum())
