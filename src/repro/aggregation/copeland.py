"""Copeland aggregation: sort items by pairwise-majority wins."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregation.pairwise import pairwise_preference_matrix
from repro.rankings.permutation import Ranking


def copeland_aggregate(rankings: Sequence[Ranking]) -> Ranking:
    """Order items by the number of opponents they beat in a strict pairwise
    majority (ties broken by total preference weight, then item id)."""
    w = pairwise_preference_matrix(rankings)
    m = len(rankings)
    wins = (w > m / 2.0).sum(axis=1).astype(np.float64)
    margin = w.sum(axis=1).astype(np.float64)
    # lexsort keys: last key is primary.
    order = np.lexsort((np.arange(w.shape[0]), -margin, -wins))
    return Ranking(order)
