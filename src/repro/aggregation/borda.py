"""Borda-count aggregation: sort items by mean position.

A 5-approximation to the Kemeny optimum and a consistent centre estimator
for Mallows mixtures — the workhorse first stage of the
aggregate-then-make-fair pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import LengthMismatchError
from repro.rankings.permutation import Ranking


def borda_scores(rankings: Sequence[Ranking]) -> np.ndarray:
    """Borda score of each item: total positional credit ``(n−1−position)``
    summed over the input rankings (higher = preferred)."""
    if not rankings:
        raise ValueError("need at least one ranking")
    n = len(rankings[0])
    for r in rankings:
        if len(r) != n:
            raise LengthMismatchError("all rankings must have the same length")
    positions = np.stack([r.positions for r in rankings])
    # One stacked reduction; the credits are exact integers well inside
    # float64, so this matches the old sequential accumulation bit-for-bit.
    return ((n - 1) - positions).sum(axis=0).astype(np.float64)


def borda_aggregate(rankings: Sequence[Ranking]) -> Ranking:
    """Aggregate by descending Borda score (ties broken by item id)."""
    credit = borda_scores(rankings)
    return Ranking(np.argsort(-credit, kind="stable"))
