"""Borda-count aggregation: sort items by mean position.

A 5-approximation to the Kemeny optimum and a consistent centre estimator
for Mallows mixtures — the workhorse first stage of the
aggregate-then-make-fair pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import LengthMismatchError
from repro.rankings.permutation import Ranking


def borda_scores(rankings: Sequence[Ranking]) -> np.ndarray:
    """Borda score of each item: total positional credit ``(n−1−position)``
    summed over the input rankings (higher = preferred)."""
    if not rankings:
        raise ValueError("need at least one ranking")
    n = len(rankings[0])
    credit = np.zeros(n, dtype=np.float64)
    for r in rankings:
        if len(r) != n:
            raise LengthMismatchError("all rankings must have the same length")
        credit += (n - 1) - r.positions
    return credit


def borda_aggregate(rankings: Sequence[Ranking]) -> Ranking:
    """Aggregate by descending Borda score (ties broken by item id)."""
    credit = borda_scores(rankings)
    return Ranking(np.argsort(-credit, kind="stable"))
