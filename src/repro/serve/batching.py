"""The coalescing micro-batch window.

Single ``rank`` submissions arriving close together are worth far more to
the engine as one ``rank_many`` call: one scheduler pass, one pool
round-trip per worker instead of per request, shared kernel-cache warmth.
:class:`MicroBatcher` is the little state machine that decides *which*
requests ride together:

* the first admitted request **opens** a batch and starts its window;
* every admission within ``window`` seconds of the open joins it;
* the batch **closes** when the window expires, when it reaches
  ``max_batch_size`` (a full batch never waits), or when the server
  force-flushes (shutdown drain);
* closed batches sit in a due list until the server collects them for
  dispatch.

Time never comes from a clock here — every method takes ``now`` — so the
exact production coalescing semantics run under the deterministic
fake-clock test harness without a single real sleep.
"""

from __future__ import annotations

from repro.serve.protocol import Ticket


class MicroBatcher:
    """Window-and-cap coalescing of admitted tickets (see module doc)."""

    def __init__(self, window: float, max_batch_size: int) -> None:
        if window < 0.0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        self.window = float(window)
        self.max_batch_size = int(max_batch_size)
        self._open: list[Ticket] = []
        self._flush_at: float | None = None
        self._due: list[list[Ticket]] = []

    def __len__(self) -> int:
        """Tickets currently held (open window + closed-but-uncollected)."""
        return len(self._open) + sum(len(b) for b in self._due)

    def add(self, ticket: Ticket, now: float) -> None:
        """Admit ``ticket`` into the open batch (opening one at ``now`` if
        none is open); a batch reaching ``max_batch_size`` closes
        immediately."""
        if not self._open:
            self._flush_at = now + self.window
        self._open.append(ticket)
        if len(self._open) >= self.max_batch_size:
            self._close()

    def remove(self, ticket: Ticket) -> bool:
        """Drop ``ticket`` from the open window or a due batch (deadline
        expiry / cancellation before dispatch); ``True`` if it was held.

        An emptied open window resets so the next admission starts a
        fresh window; an emptied due batch simply disappears.
        """
        if ticket in self._open:
            self._open.remove(ticket)
            if not self._open:
                self._flush_at = None
            return True
        for batch in self._due:
            if ticket in batch:
                batch.remove(ticket)
                if not batch:
                    self._due.remove(batch)
                return True
        return False

    def next_flush_at(self) -> float | None:
        """When the open window expires — ``None`` without an open batch.

        Closed batches are already collectable; they need no timer.
        """
        if self._due:
            return float("-inf")  # collectable immediately
        return self._flush_at

    def collect_due(self, now: float) -> list[list[Ticket]]:
        """Every batch ready to dispatch at ``now``: all closed batches,
        plus the open one if its window has expired."""
        if self._flush_at is not None and now >= self._flush_at:
            self._close()
        due, self._due = self._due, []
        return [batch for batch in due if batch]

    def flush_all(self) -> list[list[Ticket]]:
        """Close and collect everything regardless of windows (shutdown
        drain, or a closed server with no reason to keep waiting)."""
        self._close()
        due, self._due = self._due, []
        return [batch for batch in due if batch]

    def _close(self) -> None:
        if self._open:
            self._due.append(self._open)
            self._open = []
        self._flush_at = None


__all__ = ["MicroBatcher"]
