"""Cost-priced admission control.

The serving tier's load-shedding decision in one place: a request's
predicted cost is its kind's EWMA seconds from the engine's
:class:`~repro.engine.costs.CostModel` (or a configured default for kinds
never measured), and the policy holds the invariant

    sum(predicted cost of admitted-but-unfinished requests) <= budget

with three outcomes per submission — **admit** (within budget), **queue**
(bounded wait for budget to drain), or **reject** (queue full too).  A
single request is always admitted when nothing is in flight, so one
request pricier than the whole budget cannot wedge the server; and because
predictions come from the same model the engine feeds with measured
wall-times, the policy sharpens with traffic — or instantly, when the
model is warm-started from a persisted ``BENCH_*.json`` table.

Pricing never touches results: it decides *whether and when* a request
reaches the engine, not what the engine computes.
"""

from __future__ import annotations

from enum import Enum
from typing import Hashable

from repro.engine.costs import CostModel


class Decision(Enum):
    """Outcome of one admission check."""

    ADMIT = "admit"
    QUEUE = "queue"
    REJECT = "reject"


class AdmissionPolicy:
    """Budgeted in-flight cost accounting over a shared cost model.

    Single-owner by design: every method is called from the server's
    scheduling context (the event loop thread, or the test driver), so
    the accounting needs no lock of its own — the underlying
    :class:`CostModel` is thread-safe for the engine's concurrent
    ``observe`` calls.
    """

    def __init__(
        self,
        costs: CostModel,
        *,
        cost_budget: float,
        default_cost: float,
        max_queue_depth: int,
    ) -> None:
        if not cost_budget > 0.0:
            raise ValueError(f"cost_budget must be > 0, got {cost_budget}")
        if not default_cost > 0.0:
            raise ValueError(f"default_cost must be > 0, got {default_cost}")
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        self._costs = costs
        self.cost_budget = float(cost_budget)
        self.default_cost = float(default_cost)
        self.max_queue_depth = int(max_queue_depth)
        self._inflight_cost = 0.0
        self._inflight_count = 0

    # -- pricing --------------------------------------------------------------

    def predict(self, kind: Hashable) -> float:
        """Predicted seconds for one request of ``kind``: the model's EWMA
        when observed (or warm-started), else the configured default."""
        return self._costs.weight(kind, default=self.default_cost)

    @property
    def inflight_cost(self) -> float:
        """Predicted seconds of everything admitted but unfinished."""
        return self._inflight_cost

    @property
    def inflight_count(self) -> int:
        """Number of admitted-but-unfinished requests."""
        return self._inflight_count

    # -- decisions ------------------------------------------------------------

    def can_admit(self, cost: float) -> bool:
        """Whether a request of predicted ``cost`` fits the budget now.

        Empty-server override: with nothing in flight the request is
        admitted regardless of its price (progress beats pricing).
        """
        if self._inflight_count == 0:
            return True
        return self._inflight_cost + cost <= self.cost_budget

    def decide(self, cost: float, queue_depth: int) -> Decision:
        """Admit / queue / reject one submission of predicted ``cost``
        given the current wait-queue depth."""
        if self.can_admit(cost):
            return Decision.ADMIT
        if queue_depth < self.max_queue_depth:
            return Decision.QUEUE
        return Decision.REJECT

    # -- accounting -----------------------------------------------------------

    def acquire(self, cost: float) -> None:
        """Charge an admitted request's predicted cost to the budget."""
        self._inflight_cost += cost
        self._inflight_count += 1

    def release(self, cost: float) -> None:
        """Return a finished (or pre-dispatch-dropped) request's share.

        Clamped at zero: float drift across thousands of acquire/release
        pairs must never leave a phantom negative load.
        """
        self._inflight_count = max(0, self._inflight_count - 1)
        self._inflight_cost = max(0.0, self._inflight_cost - cost)
        if self._inflight_count == 0:
            self._inflight_cost = 0.0


__all__ = ["AdmissionPolicy", "Decision"]
