"""repro.serve — the async serving tier over one engine session.

An :class:`AsyncRankingServer` fronts a
:class:`~repro.engine.RankingEngine` for many concurrent asyncio clients:
single ``rank`` submissions arriving within a micro-batching window
coalesce into one ``rank_many`` dispatch, admission is priced by the
engine's learned cost model (admit / bounded queue / structured
rejection), and per-request deadlines and cancellation drop work before
it burns compute.  Responses stream back to their originating waiters as
they complete, and — the tier's headline contract — the served responses
digest byte-identically to a serial loop over the same submissions,
whatever the coalescing or worker count.

Layering (deterministic testability is the design driver):

* :mod:`repro.serve.protocol` — config, errors, tickets, stats;
* :mod:`repro.serve.admission` — cost-priced admit/queue/reject;
* :mod:`repro.serve.batching` — the coalescing window;
* :mod:`repro.serve.core` — the sans-IO semantics state machine
  (explicit clocks; what the fake-clock harness drives), including the
  health circuit breaker that sheds admissions with
  :class:`ServerUnhealthy` after an exhausted pool recovery;
* :mod:`repro.serve.server` — the asyncio shell;
* :mod:`repro.serve.loadgen` — synthetic request streams + client swarm.
"""

from repro.serve.admission import AdmissionPolicy, Decision
from repro.serve.batching import MicroBatcher
from repro.serve.core import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    ServerCore,
)
from repro.serve.loadgen import (
    LoadReport,
    RankingTransport,
    pin_request_seeds,
    run_load,
    synthetic_problems,
    synthetic_requests,
)
from repro.serve.protocol import (
    DeadlineExceeded,
    ServeConfig,
    ServeError,
    ServeStats,
    ServerClosed,
    ServerOverloaded,
    ServerUnhealthy,
    Ticket,
    Waiter,
    percentile_summary,
)
from repro.serve.server import AsyncRankingServer

__all__ = [
    "AdmissionPolicy",
    "AsyncRankingServer",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "Decision",
    "DeadlineExceeded",
    "LoadReport",
    "MicroBatcher",
    "percentile_summary",
    "pin_request_seeds",
    "RankingTransport",
    "run_load",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "ServerClosed",
    "ServerCore",
    "ServerOverloaded",
    "ServerUnhealthy",
    "synthetic_problems",
    "synthetic_requests",
    "Ticket",
    "Waiter",
]
