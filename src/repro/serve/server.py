"""The asyncio serving shell: :class:`AsyncRankingServer`.

The shell owns exactly the things the semantics core
(:class:`~repro.serve.core.ServerCore`) refuses to: an event loop, one
timer, one dispatcher task, and one worker thread that drains coalesced
batches through the engine's blocking
:meth:`~repro.engine.RankingEngine.rank_many_submit` hook.  Every
decision — admit/queue/reject, window flush, deadline expiry,
cancellation, budget accounting — is delegated to the core with the
loop's clock, so the shell stays a thin, auditable adapter:

* ``submit()`` hands the core a fresh ``asyncio.Future`` waiter and
  awaits it; client-side ``cancel()`` of that await is forwarded to the
  core (dropped pre-dispatch, discarded post-dispatch);
* one ``call_later`` timer tracks ``core.next_event_at()`` (window
  flushes and deadline expiries); submissions and completions tick the
  core via ``call_soon``;
* dispatched batches queue onto a single dispatcher task that runs them
  **one at a time** in a private one-thread executor — the engine
  session is a shared resource, and its internal ``n_jobs`` pool is the
  parallelism, not concurrent drains;
* engine completions are marshalled back with
  ``call_soon_threadsafe``, so core state is only ever touched from the
  loop thread.

Shutdown is leak-free by construction: ``stop()`` drains (or aborts)
every ticket, retires the dispatcher task, and joins the executor — the
CI smoke lane asserts no stray tasks or threads survive it.

Example
-------
::

    engine = RankingEngine(n_jobs=4)
    engine.warm_start_costs("BENCH_PR6.json")   # price admission from day 0
    async with AsyncRankingServer(engine, batch_window=0.002) as server:
        response = await server.rank("mallows", problem, theta=1.0)
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any

from repro.algorithms.base import FairRankingProblem
from repro.engine.core import RankingEngine, RankingRequest, RankingResponse
from repro.faults.policy import DEGRADE_RAISE, RetryPolicy
from repro.serve.core import ServerCore
from repro.serve.protocol import (
    ServeConfig,
    ServeStats,
    ServerClosed,
    Ticket,
)
from repro.utils.rng import SeedLike


class AsyncRankingServer:
    """An asyncio serving tier fronting one :class:`RankingEngine` session.

    Parameters
    ----------
    engine:
        The engine session to serve from (owns workers, caches, and the
        cost model that prices admission).
    config:
        A :class:`~repro.serve.protocol.ServeConfig`; keyword overrides
        may be passed instead of (or on top of) it, e.g.
        ``AsyncRankingServer(engine, batch_window=0.005)``.
    """

    def __init__(
        self,
        engine: RankingEngine,
        config: ServeConfig | None = None,
        **overrides: Any,
    ) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self._engine = engine
        self._config = config
        # Crash recovery for dispatched batches: the configured policy,
        # or the engine's bounds with on_exhausted flipped to "raise" —
        # a server must shed load through the core's circuit breaker
        # when the pool is gone, not drag every batch through inline
        # serial execution on its single drain thread.
        self._retry: RetryPolicy = (
            config.retry
            if config.retry is not None
            else replace(engine.retry_policy, on_exhausted=DEGRADE_RAISE)
        )
        self._core: ServerCore | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._dispatch_queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._timer: asyncio.TimerHandle | None = None
        self._poll_handle: asyncio.Handle | None = None
        self._idle: asyncio.Event | None = None

    # -- lifecycle ------------------------------------------------------------

    @property
    def engine(self) -> RankingEngine:
        return self._engine

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def retry_policy(self) -> RetryPolicy:
        """The crash-recovery policy applied to dispatched batches."""
        return self._retry

    @property
    def started(self) -> bool:
        return self._core is not None

    def stats(self) -> ServeStats:
        """The live counter object (see
        :class:`~repro.serve.protocol.ServeStats`)."""
        if self._core is None:
            raise RuntimeError("the server has not been started")
        return self._core.stats

    @property
    def breaker_state(self) -> str:
        """The core's circuit-breaker state (``closed``/``open``/
        ``half-open``) — what ``/healthz`` reports over HTTP."""
        if self._core is None:
            raise RuntimeError("the server has not been started")
        return self._core.breaker_state

    async def start(self) -> "AsyncRankingServer":
        """Bind to the running loop and start the dispatcher."""
        if self._core is not None:
            raise RuntimeError("the server is already started")
        self._loop = asyncio.get_running_loop()
        self._core = ServerCore(self._engine, self._config)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._dispatch_queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._dispatcher = self._loop.create_task(
            self._dispatch_loop(), name="repro-serve-dispatcher"
        )
        return self

    async def __aenter__(self) -> "AsyncRankingServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the server, leak-free.

        ``drain=True`` (default) serves everything already accepted —
        pending windows flush immediately (nothing new can join them) and
        queued requests promote as budget frees.  ``drain=False`` fails
        every not-yet-dispatched request with
        :class:`~repro.serve.protocol.ServerClosed`; work already in the
        engine still runs to completion (compute cannot be yanked from a
        process pool) and is delivered if its waiter survives.
        """
        if self._core is None:
            return
        core, loop = self._core, self._loop
        core.close()
        if not drain:
            core.abort_pending(
                ServerClosed("the server was stopped without draining"),
                loop.time(),
            )
        # A closed core flushes pending windows on the next tick.
        self._schedule_poll()
        await self._idle.wait()
        await self._dispatch_queue.put(None)
        await self._dispatcher
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._poll_handle is not None:
            self._poll_handle.cancel()
            self._poll_handle = None
        self._executor.shutdown(wait=True)
        self._core = None
        self._dispatcher = None
        self._dispatch_queue = None
        self._executor = None
        self._loop = None
        self._idle = None

    # -- the client surface ---------------------------------------------------

    async def submit(
        self, request: RankingRequest, *, deadline: float | None = None
    ) -> RankingResponse:
        """Serve one request through the tier.

        Coalesces with concurrent submissions inside the batching window,
        subject to cost-priced admission — raises
        :class:`~repro.serve.protocol.ServerOverloaded` immediately when
        shedding load, :class:`~repro.serve.protocol.DeadlineExceeded`
        when ``deadline`` (or the config default) expires first, and the
        request's own engine-side exception if its algorithm fails.
        Cancelling the returned awaitable drops an undispatched request
        from the queue/window; a dispatched one finishes in the
        background and its result is discarded.
        """
        if self._core is None:
            raise RuntimeError("the server has not been started")
        waiter: asyncio.Future = self._loop.create_future()
        ticket = self._core.submit(
            request, now=self._loop.time(), waiter=waiter, deadline=deadline
        )
        self._idle.clear()
        self._schedule_poll()
        try:
            return await waiter
        except asyncio.CancelledError:
            self._core.cancel(ticket, self._loop.time())
            self._schedule_poll()
            self._update_idle()
            raise

    async def rank(
        self,
        algorithm: str,
        problem: FairRankingProblem,
        *,
        deadline: float | None = None,
        seed: SeedLike = None,
        request_id: Any = None,
        **params: Any,
    ) -> RankingResponse:
        """Inline-form convenience over :meth:`submit` (mirrors
        ``engine.rank("mallows", problem, theta=1.0)``)."""
        return await self.submit(
            RankingRequest(
                algorithm,
                problem,
                params=params,
                seed=seed,
                request_id=request_id,
            ),
            deadline=deadline,
        )

    # -- scheduling plumbing (loop thread only) -------------------------------

    def _schedule_poll(self) -> None:
        if self._poll_handle is None and self._core is not None:
            self._poll_handle = self._loop.call_soon(self._poll)

    def _poll(self) -> None:
        self._poll_handle = None
        if self._core is None:
            return
        for batch in self._core.poll(self._loop.time()):
            self._dispatch_queue.put_nowait(batch)
        self._update_idle()
        self._arm_timer()

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        when = self._core.next_event_at()
        if when is None:
            return
        delay = max(0.0, when - self._loop.time())
        self._timer = self._loop.call_later(delay, self._schedule_poll)

    def _update_idle(self) -> None:
        if self._core is not None and self._core.live == 0:
            self._idle.set()

    def _on_engine_response(
        self, ticket: Ticket, response: RankingResponse
    ) -> None:
        if self._core is None:
            return
        self._core.on_response(ticket, response, self._loop.time())
        self._update_idle()
        self._schedule_poll()  # freed budget may promote queued tickets

    def _on_engine_error(self, ticket: Ticket, error: BaseException) -> None:
        if self._core is None:
            return
        self._core.on_request_error(ticket, error, self._loop.time())
        self._update_idle()
        self._schedule_poll()

    # -- dispatch (one batch at a time through the engine) --------------------

    async def _dispatch_loop(self) -> None:
        while True:
            batch = await self._dispatch_queue.get()
            if batch is None:
                return
            try:
                await self._loop.run_in_executor(
                    self._executor, self._drain_batch, batch
                )
            except Exception as exc:
                # Engine/scheduler-level failure (e.g. a broken pool):
                # per-request failures never surface here — they were
                # already routed by rank_many_submit's on_error.
                self._core.on_batch_aborted(batch, exc, self._loop.time())
                self._update_idle()
                self._schedule_poll()

    def _drain_batch(self, batch: list[Ticket]) -> None:
        """Blocking engine drain — runs in the serve worker thread.

        Every ticket's request carries its pinned per-submission seed, so
        the batch-level seed is irrelevant: the served rankings are the
        same whatever window/cap carved this particular batch.
        """
        loop = self._loop

        def deliver(response: RankingResponse) -> None:
            loop.call_soon_threadsafe(
                self._on_engine_response, batch[response.index], response
            )

        def fail(index: int, request: RankingRequest, error: Exception) -> None:
            loop.call_soon_threadsafe(
                self._on_engine_error, batch[index], error
            )

        self._engine.rank_many_submit(
            [ticket.request for ticket in batch],
            n_jobs=self._config.n_jobs,
            on_response=deliver,
            on_error=fail,
            retry=self._retry,
        )


__all__ = ["AsyncRankingServer"]
