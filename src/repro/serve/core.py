"""The serving-tier semantics core — synchronous, clock-free, loop-free.

:class:`ServerCore` owns every decision the async server makes — admission
pricing, queueing, micro-batch coalescing, deadline expiry, cancellation,
budget accounting — as a plain state machine whose methods take explicit
``now`` timestamps and return work to do.  The asyncio shell
(:class:`repro.serve.server.AsyncRankingServer`) is reduced to plumbing:
translate loop time into these calls, run dispatched batches on the
engine, and marshal completions back in.

This sans-IO split is what the deterministic test harness exploits: the
*production* semantics — the same object, not a test double — run under a
fake clock with inline engine drains, so batching-window coalescing,
max-batch cutoff, deadline expiry, queue-full rejection, client
cancellation, and the health circuit breaker are all tested without a
single real sleep.

The core also owns the serving tier's *health* semantics: when a
dispatched batch dies because the worker pool's crash recovery ran out
of budget (:class:`~repro.exceptions.PoolRecoveryExhausted` via
:meth:`ServerCore.on_batch_aborted`), a circuit breaker opens — new
admissions are shed with :class:`~repro.serve.protocol.ServerUnhealthy`
(carrying a Retry-After hint) for ``breaker_cooldown`` seconds, then a
single probe request is let through; the probe completing (result or
per-request error, either proves the pool executed) closes the breaker.
Requests already admitted are never shed, and only the tickets of the
failed batch see errors.

Determinism contract
--------------------
Server-wide submission ``i`` derives its seed from child ``i`` of the
config's seed root — exactly the rule
:meth:`repro.engine.RankingEngine.rank_many` applies to a batch — and
delivered responses are re-indexed by submission order.  However requests
coalesce into micro-batches, then, :func:`responses_digest` over the
served responses is byte-identical to one big ``rank_many`` (or the
serial loop) over the same submissions, for every ``n_jobs``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Any

import numpy as np

from repro.engine.core import RankingEngine, RankingRequest, RankingResponse
from repro.engine.registry import algorithm_spec
from repro.exceptions import WorkerCrashError
from repro.serve.admission import AdmissionPolicy, Decision
from repro.serve.batching import MicroBatcher
from repro.serve.protocol import (
    BATCHED,
    DISPATCHED,
    QUEUED,
    RETIRED,
    DeadlineExceeded,
    ServeConfig,
    ServeStats,
    ServerClosed,
    ServerOverloaded,
    ServerUnhealthy,
    Ticket,
    Waiter,
)

# Circuit-breaker states (module constants, matching the ticket-state
# idiom): CLOSED = healthy, OPEN = shedding admissions after an exhausted
# pool recovery, HALF_OPEN = cooled down, one probe allowed through.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class ServerCore:
    """Admission + coalescing + deadline state machine over one engine.

    Single-owner: every method must be called from one scheduling context
    (the event loop thread, or a test driver).  Time is always passed in;
    the core never reads a clock, never sleeps, never spawns anything.
    """

    def __init__(
        self, engine: RankingEngine, config: ServeConfig | None = None
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        self.policy = AdmissionPolicy(
            engine.costs,
            cost_budget=self.config.cost_budget,
            default_cost=self.config.default_cost,
            max_queue_depth=self.config.max_queue_depth,
        )
        self.batcher = MicroBatcher(
            self.config.batch_window, self.config.max_batch_size
        )
        self.stats = ServeStats()
        self._queue: deque[Ticket] = deque()
        self._live: set[Ticket] = set()
        self._seed_root = (
            self.config.seed
            if isinstance(self.config.seed, np.random.SeedSequence)
            else np.random.SeedSequence(self.config.seed)
        )
        self._next_index = 0
        self._closed = False
        # Circuit breaker: trips when a dispatched batch dies of an
        # exhausted pool recovery (WorkerCrashError), sheds new admissions
        # with ServerUnhealthy while open, and re-admits after one probe
        # request proves the rebuilt pool healthy.  Transitions are lazy
        # (evaluated against the `now` each submission carries) — the core
        # stays clock-free.
        self._breaker = BREAKER_CLOSED
        self._breaker_until = 0.0
        self._probe: Ticket | None = None

    # -- intake ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def live(self) -> int:
        """Unretired submissions (queued + batched + dispatched)."""
        return len(self._live)

    @property
    def breaker_state(self) -> str:
        """Circuit-breaker state: ``"closed"`` / ``"open"`` /
        ``"half-open"`` (as of the last transition — open→half-open
        happens lazily on the next submission past the cooldown)."""
        return self._breaker

    @property
    def healthy(self) -> bool:
        """Whether admissions flow normally (breaker closed)."""
        return self._breaker == BREAKER_CLOSED

    def close(self) -> None:
        """Stop accepting submissions (already-accepted work continues)."""
        self._closed = True

    def submit(
        self,
        request: RankingRequest,
        *,
        now: float,
        waiter: Waiter,
        deadline: float | None = None,
    ) -> Ticket:
        """Price and admit one submission.

        Raises :class:`ServerClosed` on a closed server,
        :class:`ServerUnhealthy` while the circuit breaker sheds (its
        ``retry_after`` says when to come back; shed submissions consume
        no seed child and no submission index — they were never priced),
        :class:`ServerOverloaded` when neither budget nor queue can take
        the request, and ``KeyError`` for an unknown algorithm (eagerly —
        a bad name must not burn a batch slot).  Otherwise returns the
        live ticket; the caller delivers via ``waiter``.
        """
        if self._closed:
            raise ServerClosed("the server is stopped and accepts no requests")
        if deadline is None:
            deadline = self.config.default_deadline
        if deadline is not None and not deadline > 0.0:
            raise ValueError(f"deadline must be > 0 or None, got {deadline}")
        self._check_breaker(now)
        spec = algorithm_spec(request.algorithm)  # eager validation

        # Seed tree: submission i takes child i of the server's root —
        # spawned unconditionally so pinned-seed requests do not shift
        # their neighbours' streams — matching rank_many's per-index rule.
        index = self._next_index
        self._next_index += 1
        child = self._seed_root.spawn(1)[0]
        if request.seed is None:
            request = replace(request, seed=child)

        kind = ("rank", spec.name, request.problem.n_items)
        cost = self.policy.predict(kind)
        ticket = Ticket(
            index=index,
            request=request,
            kind=kind,
            cost=cost,
            waiter=waiter,
            submitted_at=now,
            deadline_at=None if deadline is None else now + deadline,
        )
        self.stats.submitted += 1

        decision = self.policy.decide(cost, len(self._queue))
        if decision is Decision.REJECT:
            self.stats.rejected += 1
            raise ServerOverloaded(
                predicted_cost=cost,
                inflight_cost=self.policy.inflight_cost,
                cost_budget=self.policy.cost_budget,
                queue_depth=len(self._queue),
                max_queue_depth=self.policy.max_queue_depth,
            )
        if decision is Decision.ADMIT:
            self._admit(ticket, now)
            self.stats.admitted += 1
        else:
            self._queue.append(ticket)
            self.stats.queued += 1
        self._live.add(ticket)
        if self._breaker == BREAKER_HALF_OPEN and self._probe is None:
            # First accepted submission past the cooldown is the probe:
            # its completion (result *or* per-request error — either
            # proves the pool executed) closes the breaker.
            self._probe = ticket
            self.stats.breaker_probes += 1
        return ticket

    def _check_breaker(self, now: float) -> None:
        if self._breaker == BREAKER_CLOSED:
            return
        if self._breaker == BREAKER_OPEN:
            if now < self._breaker_until:
                self.stats.shed_unhealthy += 1
                raise ServerUnhealthy(
                    retry_after=self._breaker_until - now,
                    state=BREAKER_OPEN,
                )
            self._breaker = BREAKER_HALF_OPEN
            self._probe = None
            return
        if self._probe is not None:
            # Half-open with a probe already in flight: shed until it
            # reports (the cooldown is an honest re-poll hint).
            self.stats.shed_unhealthy += 1
            raise ServerUnhealthy(
                retry_after=self.config.breaker_cooldown,
                state=BREAKER_HALF_OPEN,
            )

    def _trip_breaker(self, now: float) -> None:
        """An exhausted pool recovery killed a batch: shed admissions
        until the cooldown passes, then probe."""
        self.stats.pool_failures += 1
        if self._breaker != BREAKER_OPEN:
            self.stats.breaker_opened += 1
        self._breaker = BREAKER_OPEN
        self._breaker_until = now + self.config.breaker_cooldown
        self._probe = None

    def _close_breaker(self) -> None:
        """The engine completed a request end-to-end: the pool is
        healthy, admissions flow again."""
        if self._breaker == BREAKER_CLOSED:
            return
        self._breaker = BREAKER_CLOSED
        self._probe = None
        self.stats.breaker_closed += 1

    def _admit(self, ticket: Ticket, now: float) -> None:
        self.policy.acquire(ticket.cost)
        ticket.state = BATCHED
        self.batcher.add(ticket, now)

    # -- the scheduling tick --------------------------------------------------

    def poll(self, now: float) -> list[list[Ticket]]:
        """One scheduling tick: expire deadlines, promote queued tickets
        into freed budget, and collect every micro-batch due for
        dispatch (window expired, batch full, or — on a closed server —
        everything pending, since nothing new can join a window).

        Returned batches are already marked dispatched; the caller must
        run each through the engine and feed completions back via
        :meth:`on_response` / :meth:`on_request_error` /
        :meth:`on_batch_aborted`.
        """
        self._expire(now)
        self._promote(now)
        batches = (
            self.batcher.flush_all()
            if self._closed
            else self.batcher.collect_due(now)
        )
        for batch in batches:
            self.stats.dispatched_batches += 1
            self.stats.dispatched_requests += len(batch)
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            for ticket in batch:
                ticket.state = DISPATCHED
        return batches

    def next_event_at(self) -> float | None:
        """Earliest instant the core needs a tick: the open window's
        flush, or the nearest live deadline.  ``None`` = nothing timed
        pending (ticks still happen on submissions and completions)."""
        candidates = []
        flush_at = self.batcher.next_flush_at()
        if flush_at is not None:
            candidates.append(flush_at)
        for ticket in self._live:
            if ticket.deadline_at is not None and not ticket.settled:
                candidates.append(ticket.deadline_at)
        return min(candidates) if candidates else None

    def _expire(self, now: float) -> None:
        for ticket in list(self._live):
            if (
                ticket.settled
                or ticket.deadline_at is None
                or now < ticket.deadline_at
            ):
                continue
            dispatched = ticket.state == DISPATCHED
            self._settle(
                ticket,
                error=DeadlineExceeded(
                    request_id=ticket.request_id,
                    deadline=ticket.deadline_at - ticket.submitted_at,
                    dispatched=dispatched,
                ),
            )
            if dispatched:
                # The engine is still chewing this request: its budget
                # share stays charged until the work actually finishes.
                self.stats.expired_after_dispatch += 1
            else:
                self.stats.expired_before_dispatch += 1
                self._drop_pending(ticket)

    def _promote(self, now: float) -> None:
        while self._queue and self.policy.can_admit(self._queue[0].cost):
            ticket = self._queue.popleft()
            self._admit(ticket, now)
            self.stats.promoted += 1

    # -- client-side events ---------------------------------------------------

    def cancel(self, ticket: Ticket, now: float) -> None:
        """The client abandoned its wait.  Before dispatch the ticket is
        dropped outright; after dispatch the in-flight compute finishes
        in the background and its late result is discarded."""
        if ticket.settled or ticket.state == RETIRED:
            return
        ticket.settled = True  # waiter is already cancelled client-side
        if ticket.state == DISPATCHED:
            self.stats.cancelled_after_dispatch += 1
        else:
            self.stats.cancelled_before_dispatch += 1
            self._drop_pending(ticket)

    # -- engine-side events ---------------------------------------------------

    def on_response(
        self, ticket: Ticket, response: RankingResponse, now: float
    ) -> None:
        """One dispatched request finished: deliver (unless the waiter
        already expired/cancelled), account latency, release budget."""
        if ticket not in self._live:
            return
        self._close_breaker()
        if not ticket.settled:
            self._settle(
                ticket,
                result=replace(
                    response,
                    index=ticket.index,
                    request_id=ticket.request_id,
                ),
            )
            self.stats.completed += 1
            self.stats.observe_latency(ticket.kind, now - ticket.submitted_at)
        self._retire(ticket)

    def on_request_error(
        self, ticket: Ticket, error: BaseException, now: float
    ) -> None:
        """One dispatched request failed in the engine: the error surfaces
        to exactly this waiter; batchmates are untouched.  A per-request
        failure still *proves the pool healthy* — the guarded unit ran to
        completion — so it closes the breaker like a response does."""
        if ticket not in self._live:
            return
        self._close_breaker()
        if not ticket.settled:
            self._settle(ticket, error=error)
            self.stats.failed += 1
        self._retire(ticket)

    def on_batch_aborted(
        self, batch: list[Ticket], error: BaseException, now: float
    ) -> None:
        """The whole drain died (broken pool, scheduler failure): fail
        every still-unresolved ticket of the batch.

        A :class:`~repro.exceptions.WorkerCrashError` (in practice
        :class:`~repro.exceptions.PoolRecoveryExhausted` — lesser crashes
        are absorbed by the supervised scheduler and never reach here)
        additionally trips the circuit breaker: new admissions shed with
        Retry-After semantics while the pool rebuilds, and a probe
        re-opens the floor once it proves the pool healthy.  Only this
        batch's unsettled tickets see errors — already-settled batchmates
        keep their results.
        """
        if isinstance(error, WorkerCrashError):
            self._trip_breaker(now)
        for ticket in batch:
            if ticket not in self._live:
                continue
            if not ticket.settled:
                self._settle(ticket, error=error)
                self.stats.failed += 1
            self._retire(ticket)

    # -- shutdown -------------------------------------------------------------

    def abort_pending(self, error: BaseException, now: float) -> list[Ticket]:
        """Fail every not-yet-dispatched ticket (non-drain shutdown);
        returns the aborted tickets.  Dispatched work is left to finish —
        compute cannot be yanked out of the pool."""
        aborted = []
        for ticket in list(self._live):
            if ticket.state not in (QUEUED, BATCHED):
                continue
            if not ticket.settled:
                self._settle(ticket, error=error)
                self.stats.failed += 1
            self._drop_pending(ticket)
            aborted.append(ticket)
        return aborted

    # -- plumbing -------------------------------------------------------------

    def _settle(
        self,
        ticket: Ticket,
        *,
        result: RankingResponse | None = None,
        error: BaseException | None = None,
    ) -> None:
        ticket.settled = True
        waiter = ticket.waiter
        if waiter.done() or waiter.cancelled():
            return
        if error is not None:
            waiter.set_exception(error)
        else:
            waiter.set_result(result)

    def _drop_pending(self, ticket: Ticket) -> None:
        """Remove a never-dispatched ticket from wherever it waits, give
        back its budget share if it had one, and retire it."""
        if ticket.state == QUEUED:
            try:
                self._queue.remove(ticket)
            except ValueError:
                pass
        elif ticket.state == BATCHED:
            self.batcher.remove(ticket)
            self.policy.release(ticket.cost)
        if ticket is self._probe:
            # The probe died before dispatch (expiry/cancel/abort): free
            # the half-open slot so the next submission can probe.
            self._probe = None
        ticket.state = RETIRED
        self._live.discard(ticket)

    def _retire(self, ticket: Ticket) -> None:
        """Account the end of a dispatched ticket's compute."""
        if ticket.state == DISPATCHED:
            self.policy.release(ticket.cost)
        if ticket is self._probe:
            # The probe is resolved one way or another; a successful one
            # already closed the breaker (probe cleared there), so this
            # only frees the half-open slot after a failed drain.
            self._probe = None
        ticket.state = RETIRED
        self._live.discard(ticket)


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "ServerCore",
]
