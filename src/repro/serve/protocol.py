"""Wire-level types of the serving tier: config, errors, tickets, stats.

Everything here is loop-free and clock-free — plain dataclasses and
exceptions shared by the synchronous semantics core
(:class:`repro.serve.core.ServerCore`) and the asyncio shell
(:class:`repro.serve.server.AsyncRankingServer`).  Keeping the protocol
separate is what lets the deterministic test harness drive the exact
production semantics without an event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Protocol, runtime_checkable

import numpy as np

from repro.engine.core import RankingRequest, RankingResponse
from repro.engine.costs import kind_label
from repro.faults.policy import RetryPolicy
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class ServeConfig:
    """Every serving-tier knob in one place.

    Attributes
    ----------
    batch_window:
        Micro-batching window in seconds: the first admitted request opens
        a batch, and every admission within ``batch_window`` of it
        coalesces into the same ``rank_many`` dispatch.  ``0.0`` flushes
        on the next scheduler tick (requests arriving in the same tick
        still coalesce).
    max_batch_size:
        Hard cap per coalesced batch; a full batch dispatches immediately,
        before its window expires.
    max_queue_depth:
        Bound of the admission queue (requests holding for budget).  A
        submission that can neither be admitted nor queued is rejected
        with :class:`ServerOverloaded`.
    cost_budget:
        In-flight budget in *predicted seconds*: a request is admitted
        while the predicted cost of everything admitted-but-unfinished
        plus its own stays within this budget.  One request is always
        admitted when nothing is in flight, so a single request pricier
        than the whole budget cannot deadlock the server.
    default_cost:
        Predicted seconds for a request kind the cost model has never
        observed (warm-starting the model replaces this guess with
        measured EWMAs — see
        :meth:`repro.engine.RankingEngine.warm_start_costs`).
    default_deadline:
        Deadline in seconds applied to submissions that do not carry
        their own (``None`` = no deadline).
    seed:
        Root of the server's seed tree.  Submission ``i`` (server-wide
        order) derives its request seed from child ``i`` unless the
        request pins its own — exactly the :meth:`rank_many` rule, which
        is what makes the served responses byte-identical to the serial
        loop over the same submissions.
    n_jobs:
        Worker override for each coalesced batch (``None`` = the engine
        session's budget).
    retry:
        Crash-recovery budget for dispatched batches (``None`` derives a
        serving policy from the engine's: same bounds, but
        ``on_exhausted="raise"`` — a server sheds load through its
        circuit breaker instead of dragging all traffic through one
        inline thread).
    breaker_cooldown:
        Seconds the circuit breaker sheds new admissions with
        :class:`ServerUnhealthy` after pool recovery is exhausted, before
        letting a single probe request through (see
        :class:`repro.serve.core.ServerCore`).
    """

    batch_window: float = 0.002
    max_batch_size: int = 16
    max_queue_depth: int = 128
    cost_budget: float = 1.0
    default_cost: float = 0.05
    default_deadline: float | None = None
    seed: SeedLike = 0
    n_jobs: int | None = None
    retry: "RetryPolicy | None" = None
    breaker_cooldown: float = 1.0

    def __post_init__(self) -> None:
        if self.batch_window < 0.0:
            raise ValueError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if not self.cost_budget > 0.0:
            raise ValueError(
                f"cost_budget must be > 0, got {self.cost_budget}"
            )
        if not self.default_cost > 0.0:
            raise ValueError(
                f"default_cost must be > 0, got {self.default_cost}"
            )
        if self.default_deadline is not None and not self.default_deadline > 0.0:
            raise ValueError(
                f"default_deadline must be > 0 or None, got "
                f"{self.default_deadline}"
            )
        if not self.breaker_cooldown > 0.0:
            raise ValueError(
                f"breaker_cooldown must be > 0, got {self.breaker_cooldown}"
            )


class ServeError(RuntimeError):
    """Base of every structured serving-tier error."""


class ServerClosed(ServeError):
    """The server is stopped (or stopping) and accepts no new requests."""


class ServerOverloaded(ServeError):
    """Admission control rejected a request: the predicted in-flight cost
    exceeds the budget and the wait queue is full.

    Attributes carry the admission arithmetic so a client can implement
    informed backoff (retry after ``inflight_cost`` drains, shed load,
    or re-route).
    """

    def __init__(
        self,
        *,
        predicted_cost: float,
        inflight_cost: float,
        cost_budget: float,
        queue_depth: int,
        max_queue_depth: int,
    ) -> None:
        self.predicted_cost = predicted_cost
        self.inflight_cost = inflight_cost
        self.cost_budget = cost_budget
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth
        super().__init__(
            f"server overloaded: predicted request cost "
            f"{predicted_cost:.4f}s on top of {inflight_cost:.4f}s in "
            f"flight exceeds the {cost_budget:.4f}s budget, and the wait "
            f"queue is full ({queue_depth}/{max_queue_depth})"
        )


class ServerUnhealthy(ServeError):
    """The circuit breaker is shedding admissions: the worker pool failed
    beyond its recovery budget and has not yet proven itself healthy.

    ``retry_after`` is the Retry-After hint in seconds: how long until
    the breaker lets a probe through (``state="open"``), or a small
    re-poll hint while a probe is already in flight
    (``state="half-open"``).  Requests already admitted are unaffected —
    only new admissions are shed.
    """

    def __init__(self, *, retry_after: float, state: str) -> None:
        self.retry_after = max(0.0, float(retry_after))
        self.state = state
        super().__init__(
            f"server unhealthy (circuit {state}): worker-pool recovery "
            f"exhausted; retry after {self.retry_after:.3f}s"
        )


class DeadlineExceeded(ServeError):
    """A request's deadline expired before its response could be served.

    ``dispatched`` distinguishes the two paths: ``False`` means the
    request was dropped from the queue/window before any compute started;
    ``True`` means it was already dispatched — the waiter is released at
    the deadline, the in-flight compute finishes in the background (its
    budget share is released on completion), and the late result is
    discarded without poisoning the rest of the batch.
    """

    def __init__(
        self, *, request_id: Any, deadline: float, dispatched: bool
    ) -> None:
        self.request_id = request_id
        self.deadline = deadline
        self.dispatched = dispatched
        stage = "after dispatch" if dispatched else "before dispatch"
        super().__init__(
            f"request {request_id!r} exceeded its {deadline:.4f}s deadline "
            f"{stage}"
        )


@runtime_checkable
class Waiter(Protocol):
    """Completion sink of one submission.

    The asyncio shell hands in an :class:`asyncio.Future`; the
    deterministic harness hands in a plain recording object.  The core
    only ever settles a waiter that is neither done nor cancelled.
    """

    def set_result(self, result: RankingResponse) -> None: ...

    def set_exception(self, error: BaseException) -> None: ...

    def done(self) -> bool: ...

    def cancelled(self) -> bool: ...


# Ticket lifecycle states (module constants, not an Enum, so the hot path
# compares interned strings).
QUEUED = "queued"
BATCHED = "batched"
DISPATCHED = "dispatched"
RETIRED = "retired"


@dataclass(eq=False)
class Ticket:
    """One live submission inside the server.

    ``settled`` tracks the waiter (result/error delivered), ``state``
    tracks the compute: a ticket can be settled yet still dispatched —
    deadline-expired or cancelled after dispatch — in which case its
    budget share is held until the engine actually finishes the work.
    """

    index: int
    request: RankingRequest
    kind: Hashable
    cost: float
    waiter: Waiter
    submitted_at: float
    deadline_at: float | None = None
    state: str = QUEUED
    settled: bool = False

    @property
    def request_id(self) -> Any:
        rid = self.request.request_id
        return rid if rid is not None else self.index


@dataclass
class ServeStats:
    """Mutable counters of one server's lifetime, plus per-kind latency
    samples for SLO reporting.

    ``latencies`` maps a kind label (``"rank:dp:150"``) to submit-to-
    delivery wall seconds of every *completed* request of that kind —
    queueing, batching window, and compute included, which is what a
    client actually experiences.
    """

    submitted: int = 0
    admitted: int = 0
    queued: int = 0
    promoted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    expired_before_dispatch: int = 0
    expired_after_dispatch: int = 0
    cancelled_before_dispatch: int = 0
    cancelled_after_dispatch: int = 0
    dispatched_batches: int = 0
    dispatched_requests: int = 0
    largest_batch: int = 0
    #: Batches aborted by a worker-pool failure beyond its retry budget.
    pool_failures: int = 0
    #: Circuit-breaker transitions: opened (pool failure), probes admitted
    #: while half-open, closed (a probe proved the pool healthy again).
    breaker_opened: int = 0
    breaker_probes: int = 0
    breaker_closed: int = 0
    #: Submissions shed with :class:`ServerUnhealthy` while open/half-open.
    shed_unhealthy: int = 0
    latencies: dict[str, list[float]] = field(default_factory=dict)

    def observe_latency(self, kind: Hashable, seconds: float) -> None:
        self.latencies.setdefault(kind_label(kind), []).append(float(seconds))

    @property
    def coalescing(self) -> float:
        """Mean requests per dispatched batch (1.0 = no coalescing)."""
        if self.dispatched_batches == 0:
            return 0.0
        return self.dispatched_requests / self.dispatched_batches

    def latency_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> dict[str, dict[str, float]]:
        """Per-kind latency percentiles: ``{"rank:dp:150": {"p50": ...}}``."""
        return {
            label: percentile_summary(samples, percentiles)
            for label, samples in sorted(self.latencies.items())
        }

    def summary(self) -> str:
        """One-line human-readable rendering (CLI / benchmark reports)."""
        return (
            f"{self.submitted} submitted: {self.completed} completed, "
            f"{self.failed} failed, {self.rejected} rejected, "
            f"{self.expired_before_dispatch + self.expired_after_dispatch} "
            f"expired, {self.cancelled_before_dispatch + self.cancelled_after_dispatch} "
            f"cancelled; {self.dispatched_requests} requests in "
            f"{self.dispatched_batches} batches "
            f"(coalescing {self.coalescing:.2f}x, largest {self.largest_batch})"
            + (
                f"; {self.pool_failures} pool failure(s), breaker "
                f"opened {self.breaker_opened}/probed {self.breaker_probes}/"
                f"closed {self.breaker_closed}, {self.shed_unhealthy} shed"
                if self.pool_failures or self.shed_unhealthy
                else ""
            )
        )


def percentile_summary(
    samples: "list[float] | np.ndarray",
    percentiles: tuple[float, ...] = (50.0, 95.0, 99.0),
) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` of ``samples`` (empty
    input yields an empty mapping)."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return {}
    values = np.percentile(arr, list(percentiles))
    return {
        f"p{int(p) if float(p).is_integer() else p}": float(v)
        for p, v in zip(percentiles, values)
    }


__all__ = [
    "BATCHED",
    "DISPATCHED",
    "DeadlineExceeded",
    "QUEUED",
    "RETIRED",
    "RankingRequest",
    "RankingResponse",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "ServerClosed",
    "ServerOverloaded",
    "ServerUnhealthy",
    "Ticket",
    "Waiter",
    "percentile_summary",
]
