"""Synthetic load generation for the serving tier.

Two pieces, shared by ``repro bench-client``, ``benchmarks/bench_serve.py``
and the serving tests:

* :func:`synthetic_requests` — a reproducible mixed-kind request stream
  (per-problem Mallows / DP / IPF / DetConstSort over small weakly-fair
  instances), sized so a load test exercises heterogeneous cost kinds
  without dominating wall-time;
* :func:`run_load` — an asyncio client swarm: every request becomes one
  concurrent client task against an :class:`AsyncRankingServer`, with an
  optional open-loop arrival rate; outcomes (served / rejected / expired)
  are folded into a :class:`LoadReport` with per-kind latency percentiles
  and the response digest, so callers can assert the determinism contract
  straight off a load run.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import Protocol, Sequence

import numpy as np

from repro.algorithms.base import FairRankingProblem, GroupAssignment
from repro.engine.core import RankingRequest, RankingResponse, responses_digest
from repro.serve.protocol import (
    DeadlineExceeded,
    ServerOverloaded,
    percentile_summary,
)
from repro.utils.rng import SeedLike, spawn_seed_sequences


class RankingTransport(Protocol):
    """Anything :func:`run_load` can fire a swarm at.

    Both :class:`~repro.serve.server.AsyncRankingServer` (in-process)
    and :class:`~repro.net.client.AsyncHttpClient` (over the wire)
    satisfy it, which is what lets one load harness race the two.
    """

    async def submit(
        self, request: RankingRequest, *, deadline: float | None = None
    ) -> RankingResponse: ...


def pin_request_seeds(
    requests: Sequence[RankingRequest], seed: SeedLike = None
) -> list[RankingRequest]:
    """Pin each unseeded request to the seed child of its list position.

    In process, ``rank_many``/the serving tier derive a request's
    SeedSequence child from its *submission order* — but over a wire
    the arrival order is whatever the network makes it.  Pinning the
    children client-side (requests with an explicit ``seed`` keep it)
    moves the derivation to the stable client-side ordinal, so a served
    digest is byte-identical to ``rank_many(requests, seed=seed)``
    regardless of transport, concurrency, or arrival order.
    """
    children = spawn_seed_sequences(seed, len(requests))
    return [
        request if request.seed is not None else replace(request, seed=children[i])
        for i, request in enumerate(requests)
    ]


def synthetic_problems(
    n_problems: int,
    *,
    sizes: Sequence[int] = (24, 40),
    n_groups: int = 3,
    seed: SeedLike = 0,
) -> list[FairRankingProblem]:
    """``n_problems`` small weakly-heterogeneous instances: random scores,
    round-robin-ish random groups, proportional constraints."""
    rng = np.random.default_rng(seed)
    problems = []
    for p in range(n_problems):
        n_items = int(sizes[p % len(sizes)])
        scores = rng.uniform(0.0, 1.0, size=n_items)
        labels = rng.integers(0, n_groups, size=n_items)
        # Every group must be inhabited for proportional constraints.
        labels[:n_groups] = np.arange(n_groups)
        groups = GroupAssignment([f"g{g}" for g in labels])
        problems.append(FairRankingProblem.from_scores(scores, groups))
    return problems


def synthetic_requests(
    n_requests: int,
    *,
    sizes: Sequence[int] = (24, 40),
    n_groups: int = 3,
    seed: SeedLike = 0,
    algorithms: Sequence[tuple[str, dict]] = (
        ("mallows", {"theta": 0.7, "n_samples": 400}),
        ("dp", {}),
        ("ipf", {}),
        ("detconstsort", {}),
    ),
) -> list[RankingRequest]:
    """A reproducible mixed-kind stream of ``n_requests`` requests.

    Requests cycle through ``algorithms`` over a pool of
    ``ceil(n_requests / len(algorithms))`` synthetic problems, so both the
    algorithm mix and the problem-size mix vary along the stream — the
    shape admission pricing has to cope with.
    """
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    n_problems = -(-n_requests // len(algorithms))
    problems = synthetic_problems(
        n_problems, sizes=sizes, n_groups=n_groups, seed=seed
    )
    requests = []
    for i in range(n_requests):
        name, params = algorithms[i % len(algorithms)]
        problem = problems[(i // len(algorithms)) % len(problems)]
        requests.append(
            RankingRequest(
                name, problem, params=dict(params), request_id=f"{name}#{i}"
            )
        )
    return requests


@dataclass
class LoadReport:
    """Outcome of one :func:`run_load` swarm."""

    n_requests: int
    elapsed: float
    responses: list[RankingResponse] = field(default_factory=list)
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    errors: list[BaseException] = field(default_factory=list)

    @property
    def served(self) -> int:
        return len(self.responses)

    @property
    def throughput(self) -> float:
        """Served requests per wall second."""
        return self.served / self.elapsed if self.elapsed > 0.0 else 0.0

    def digest(self) -> str:
        """Order-independent digest of the served responses — comparable
        against a serial ``rank_many`` over the same request stream."""
        return responses_digest(self.responses)

    def latency_percentiles(self) -> dict[str, dict[str, float]]:
        """Per-algorithm client-side latency percentiles (seconds)."""
        samples: dict[str, list[float]] = {}
        for response in self.responses:
            samples.setdefault(response.algorithm, []).append(
                response.metadata.get("serve_latency", float("nan"))
            )
        return {
            name: percentile_summary(vals)
            for name, vals in sorted(samples.items())
            if not np.isnan(vals).any()
        }

    def summary(self) -> str:
        return (
            f"{self.served}/{self.n_requests} served in {self.elapsed:.3f}s "
            f"({self.throughput:.1f} req/s), {self.rejected} rejected, "
            f"{self.expired} expired, {self.failed} failed"
        )


async def run_load(
    server: RankingTransport,
    requests: Sequence[RankingRequest],
    *,
    arrival_rate: float | None = None,
    deadline: float | None = None,
    max_retries: int = 0,
    retry_backoff: float = 0.01,
) -> LoadReport:
    """Fire ``requests`` at ``server`` as one concurrent client swarm.

    ``server`` is any :class:`RankingTransport` — the in-process
    :class:`~repro.serve.server.AsyncRankingServer` or an
    :class:`~repro.net.client.AsyncHttpClient` pointed at a remote
    frontend.  ``arrival_rate`` (requests/second) paces submissions
    open-loop; ``None`` releases the whole swarm at once (closed-loop
    burst).  :class:`ServerOverloaded` rejections retry up to
    ``max_retries`` times with linear backoff, then count as rejected;
    deadline expiries and engine-side failures are counted, never
    raised — a load run reports, it does not crash.

    Served responses are re-indexed by their position in ``requests``
    (the client-side ordinal): in process that is the submission index
    already, and over the wire it replaces server-side submission
    indices that are meaningless to this client — so
    :meth:`LoadReport.digest` compares against the serial loop either
    way.
    """
    loop = asyncio.get_running_loop()
    report = LoadReport(n_requests=len(requests), elapsed=0.0)
    lock = asyncio.Lock()

    async def one_client(ordinal: int, request: RankingRequest, delay: float) -> None:
        if delay > 0.0:
            await asyncio.sleep(delay)
        attempt = 0
        while True:
            sent_at = loop.time()
            try:
                response = await server.submit(request, deadline=deadline)
            except ServerOverloaded:
                attempt += 1
                if attempt > max_retries:
                    async with lock:
                        report.rejected += 1
                    return
                await asyncio.sleep(retry_backoff * attempt)
                continue
            except DeadlineExceeded:
                async with lock:
                    report.expired += 1
                return
            except Exception as exc:
                async with lock:
                    report.failed += 1
                    report.errors.append(exc)
                return
            if response.index != ordinal:
                response = replace(response, index=ordinal)
            response.metadata["serve_latency"] = loop.time() - sent_at
            async with lock:
                report.responses.append(response)
            return

    started = loop.time()
    clients = [
        asyncio.ensure_future(
            one_client(
                i,
                request,
                0.0 if arrival_rate is None else i / arrival_rate,
            )
        )
        for i, request in enumerate(requests)
    ]
    await asyncio.gather(*clients)
    report.elapsed = loop.time() - started
    return report


__all__ = [
    "LoadReport",
    "RankingTransport",
    "pin_request_seeds",
    "run_load",
    "synthetic_problems",
    "synthetic_requests",
]
