"""Datasets: the German Credit replica and the paper's synthetic workloads."""

from repro.datasets.german_credit import (
    GERMAN_CREDIT_TABLE1,
    GermanCreditData,
    load_german_credit,
    synthesize_german_credit,
)
from repro.datasets.synthetic import (
    TwoGroupSample,
    engineered_ranking_with_ii,
    multi_group_scores,
    two_group_shifted_scores,
)
from repro.datasets.csv_loader import (
    RankingDataset,
    load_ranking_csv,
    save_ranking_csv,
)

__all__ = [
    "GERMAN_CREDIT_TABLE1",
    "GermanCreditData",
    "load_german_credit",
    "synthesize_german_credit",
    "TwoGroupSample",
    "two_group_shifted_scores",
    "multi_group_scores",
    "engineered_ranking_with_ii",
    "RankingDataset",
    "load_ranking_csv",
    "save_ranking_csv",
]
