"""Generic CSV ranking datasets.

Real deployments keep candidates in tabular files; this loader turns any
CSV with a numeric score column and one or more categorical attribute
columns into the library's native types, so the whole pipeline (weakly-fair
input construction, post-processing, evaluation) applies to user data with
one call.

Only the standard library ``csv`` module is used — no pandas dependency.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.groups.attributes import GroupAssignment, combine_attributes


@dataclass(frozen=True)
class RankingDataset:
    """A generic scored dataset with named protected attributes.

    Attributes
    ----------
    scores:
        Ranking score per row (higher is ranked earlier).
    attributes:
        Mapping from attribute name to its :class:`GroupAssignment`.
    """

    scores: np.ndarray
    attributes: dict[str, GroupAssignment]

    @property
    def n_items(self) -> int:
        """Number of rows."""
        return int(self.scores.size)

    def groups(self, *names: str) -> GroupAssignment:
        """The assignment of one attribute, or the cross of several
        (e.g. ``groups("sex", "age")`` for the paper's Sex−Age)."""
        if not names:
            raise DatasetError("need at least one attribute name")
        parts = []
        for name in names:
            if name not in self.attributes:
                known = ", ".join(sorted(self.attributes))
                raise DatasetError(
                    f"unknown attribute {name!r}; available: {known}"
                )
            parts.append(self.attributes[name])
        if len(parts) == 1:
            return parts[0]
        return combine_attributes(*parts)


def load_ranking_csv(
    path: str,
    score_column: str,
    attribute_columns: Sequence[str],
    delimiter: str = ",",
) -> RankingDataset:
    """Load a CSV into a :class:`RankingDataset`.

    Parameters
    ----------
    path:
        CSV file with a header row.
    score_column:
        Name of the numeric score column.
    attribute_columns:
        Names of the categorical protected-attribute columns.

    Raises
    ------
    DatasetError
        On a missing column, non-numeric score, or empty file.
    """
    if not attribute_columns:
        raise DatasetError("need at least one attribute column")
    scores: list[float] = []
    attr_values: dict[str, list[str]] = {name: [] for name in attribute_columns}
    with open(path, newline="") as f:
        reader = csv.DictReader(f, delimiter=delimiter)
        if reader.fieldnames is None:
            raise DatasetError(f"{path}: no header row")
        missing = [
            col
            for col in [score_column, *attribute_columns]
            if col not in reader.fieldnames
        ]
        if missing:
            raise DatasetError(
                f"{path}: missing columns {missing}; header has {reader.fieldnames}"
            )
        for line_no, row in enumerate(reader, start=2):
            raw = row[score_column]
            try:
                scores.append(float(raw))
            except (TypeError, ValueError):
                raise DatasetError(
                    f"{path}:{line_no}: score {raw!r} is not numeric"
                ) from None
            for name in attribute_columns:
                value = row[name]
                if value is None or value == "":
                    raise DatasetError(
                        f"{path}:{line_no}: empty value for attribute {name!r}"
                    )
                attr_values[name].append(value)
    if not scores:
        raise DatasetError(f"{path}: no data rows")
    return RankingDataset(
        scores=np.asarray(scores, dtype=np.float64),
        attributes={
            name: GroupAssignment(values) for name, values in attr_values.items()
        },
    )


def save_ranking_csv(
    path: str,
    dataset: RankingDataset,
    score_column: str = "score",
    delimiter: str = ",",
) -> None:
    """Write a :class:`RankingDataset` back to CSV (round-trips the loader)."""
    names = sorted(dataset.attributes)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow([score_column, *names])
        for i in range(dataset.n_items):
            row = [repr(float(dataset.scores[i]))]
            for name in names:
                row.append(str(dataset.attributes[name].group_of(i)))
            writer.writerow(row)
