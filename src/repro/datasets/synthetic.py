"""Synthetic workloads of Sections V-A and V-B.

* :func:`two_group_shifted_scores` — two equal groups of five candidates;
  group 1 scores ``U(0, 1)``, group 2 scores ``U(δ, 1+δ)``.  Sweeping the
  mean shift ``δ`` controls how segregated the score-sorted ranking is.
* :func:`engineered_ranking_with_ii` — rankings of ten candidates in two
  equal groups arranged to hit a target Infeasible Index (Section V-A's
  "diverse values of the Infeasible Index").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DatasetError
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.rankings.sorting import rank_by_score
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class TwoGroupSample:
    """One draw of the Section V-B workload.

    Attributes
    ----------
    scores:
        Per-item scores (group 0 first, then group 1).
    groups:
        The two-group assignment.
    ranking:
        The score-sorted (descending) central ranking.
    delta:
        The mean shift between the two score distributions.
    """

    scores: np.ndarray
    groups: GroupAssignment
    ranking: Ranking
    delta: float


def two_group_shifted_scores(
    delta: float,
    group_size: int = 5,
    seed: SeedLike = None,
) -> TwoGroupSample:
    """Draw the paper's two-group workload with mean shift ``delta``.

    Group 0 items get ``U(0, 1)`` scores and group 1 items ``U(δ, 1+δ)``;
    the returned ranking sorts all items by descending score.
    """
    if group_size < 1:
        raise DatasetError(f"group_size must be >= 1, got {group_size}")
    rng = as_generator(seed)
    s1 = rng.uniform(0.0, 1.0, size=group_size)
    s2 = rng.uniform(delta, 1.0 + delta, size=group_size)
    scores = np.concatenate([s1, s2])
    groups = GroupAssignment.from_indices(
        np.concatenate([np.zeros(group_size, dtype=np.int64), np.ones(group_size, dtype=np.int64)])
    )
    return TwoGroupSample(
        scores=scores,
        groups=groups,
        ranking=rank_by_score(scores),
        delta=float(delta),
    )


def multi_group_scores(
    group_sizes: list[int],
    shifts: list[float],
    seed: SeedLike = None,
) -> tuple[np.ndarray, GroupAssignment]:
    """Generalization to ``g`` groups: group ``i`` gets ``U(shiftᵢ, 1+shiftᵢ)``
    scores.  Returns ``(scores, groups)``."""
    if len(group_sizes) != len(shifts):
        raise DatasetError(
            f"{len(group_sizes)} group sizes but {len(shifts)} shifts"
        )
    if not group_sizes or min(group_sizes) < 1:
        raise DatasetError("every group must have at least one member")
    rng = as_generator(seed)
    parts = []
    indices = []
    for gi, (size, shift) in enumerate(zip(group_sizes, shifts)):
        parts.append(rng.uniform(shift, 1.0 + shift, size=size))
        indices.append(np.full(size, gi, dtype=np.int64))
    return np.concatenate(parts), GroupAssignment.from_indices(np.concatenate(indices))


def engineered_ranking_with_ii(
    target_ii: int,
    n: int = 10,
    constraints: FairnessConstraints | None = None,
) -> tuple[Ranking, GroupAssignment]:
    """A ranking of ``n`` items in two equal groups whose Two-Sided
    Infeasible Index (under proportional bounds) is as close as possible to
    ``target_ii``.

    The II of a two-group ranking depends only on its *group pattern* (which
    positions hold which group), so for the paper's scale (``n = 10``,
    ``C(10,5) = 252`` patterns) we search all patterns exhaustively and
    realize the one whose II is nearest the target (ties broken toward the
    lexicographically smallest pattern, making the output deterministic).

    Raises
    ------
    DatasetError
        If ``n`` is odd (the workload needs two equal groups) or too large
        for the exhaustive pattern search.
    """
    if n < 2 or n % 2 != 0:
        raise DatasetError(f"n must be even and >= 2, got {n}")
    if n > 16:
        raise DatasetError(
            f"pattern search is exponential; n={n} > 16 not supported"
        )
    if target_ii < 0:
        raise DatasetError(f"target_ii must be non-negative, got {target_ii}")
    import itertools

    half = n // 2
    groups = GroupAssignment.from_indices(
        np.array([i % 2 for i in range(n)], dtype=np.int64)
    )
    if constraints is None:
        constraints = FairnessConstraints.proportional(groups)

    evens = list(range(0, n, 2))  # group 0 members
    odds = list(range(1, n, 2))   # group 1 members

    best: tuple[int, Ranking] | None = None
    for zero_positions in itertools.combinations(range(n), half):
        order = np.empty(n, dtype=np.int64)
        zero_set = set(zero_positions)
        e = o = 0
        for pos in range(n):
            if pos in zero_set:
                order[pos] = evens[e]
                e += 1
            else:
                order[pos] = odds[o]
                o += 1
        ranking = Ranking(order)
        ii = infeasible_index(ranking, groups, constraints)
        if best is None or abs(ii - target_ii) < abs(best[0] - target_ii):
            best = (ii, ranking)
            if ii == target_ii:
                break
    assert best is not None
    return best[1], groups
