"""The German Credit dataset (UCI Statlog), as used in Section V-C.

The paper ranks the 1000 applicants by ``Credit Amount``, treats the
combined ``Sex−Age`` attribute (four values, age split at 35) as *known*,
and evaluates fairness against the three-valued ``Housing`` attribute
treated as *unknown*.  Table I of the paper gives the exact joint
distribution of (Age-Sex × Housing).

Offline substitution
--------------------
The UCI file cannot be downloaded in this environment, so
:func:`synthesize_german_credit` generates a replica whose joint
(Age-Sex × Housing) counts equal Table I *exactly* and whose credit amounts
follow a log-normal fitted to the real attribute's published summary
statistics (mean ≈ 3271 DM, median ≈ 2320 DM, heavy right tail).  Every
experiment consumes only ``(credit_amount, age_sex group, housing group)``,
and the group structure — the input that drives Figs. 5–7 — is identical to
the real data by construction.  :func:`load_german_credit` parses the real
``german.data`` file when one is available and is preferred automatically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import DatasetError
from repro.groups.attributes import GroupAssignment
from repro.utils.rng import SeedLike, as_generator

#: Table I of the paper: joint counts of (Age-Sex, Housing).
#: Keys: (age_sex label, housing label) -> count.
GERMAN_CREDIT_TABLE1: dict[tuple[str, str], int] = {
    ("<35-female", "free"): 2,
    ("<35-female", "own"): 131,
    ("<35-female", "rent"): 80,
    ("<35-male", "free"): 23,
    ("<35-male", "own"): 261,
    ("<35-male", "rent"): 51,
    (">=35-female", "free"): 17,
    (">=35-female", "own"): 65,
    (">=35-female", "rent"): 15,
    (">=35-male", "free"): 66,
    (">=35-male", "own"): 256,
    (">=35-male", "rent"): 33,
}

AGE_SEX_LABELS = ("<35-female", "<35-male", ">=35-female", ">=35-male")
HOUSING_LABELS = ("free", "own", "rent")

# Log-normal parameters fitted to the real Credit Amount attribute
# (mean ~3271, median ~2320): mu = ln(median), sigma from mean/median ratio.
_LOGNORMAL_MU = 7.749
_LOGNORMAL_SIGMA = 0.83


@dataclass(frozen=True)
class GermanCreditData:
    """The columns the experiments need.

    Attributes
    ----------
    credit_amount:
        Ranking score per applicant (higher = ranked earlier).
    age_sex:
        The known four-valued combined protected attribute.
    housing:
        The unknown three-valued protected attribute used for evaluation.
    source:
        ``"uci"`` when parsed from a real ``german.data`` file, else
        ``"synthetic"``.
    """

    credit_amount: np.ndarray
    age_sex: GroupAssignment
    housing: GroupAssignment
    source: str

    @property
    def n_items(self) -> int:
        """Number of applicants."""
        return int(self.credit_amount.size)

    def subsample(self, size: int, seed: SeedLike = None) -> "GermanCreditData":
        """A uniform random subsample of ``size`` applicants (the paper's
        rankings of size 10..100 are drawn this way)."""
        if not 1 <= size <= self.n_items:
            raise ValueError(f"size must be in [1, {self.n_items}], got {size}")
        rng = as_generator(seed)
        idx = rng.choice(self.n_items, size=size, replace=False)
        return GermanCreditData(
            credit_amount=self.credit_amount[idx],
            age_sex=self.age_sex.subset(idx),
            housing=self.housing.subset(idx),
            source=self.source,
        )

    def joint_counts(self) -> dict[tuple[str, str], int]:
        """Joint (Age-Sex, Housing) counts — regenerates Table I."""
        counts: dict[tuple[str, str], int] = {}
        for a in AGE_SEX_LABELS:
            for h in HOUSING_LABELS:
                members_a = set(self.age_sex.members(a).tolist())
                members_h = set(self.housing.members(h).tolist())
                counts[(a, h)] = len(members_a & members_h)
        return counts


def synthesize_german_credit(seed: SeedLike = 0) -> GermanCreditData:
    """Generate the synthetic replica with Table I's exact joint counts."""
    rng = as_generator(seed)
    age_sex_labels: list[str] = []
    housing_labels: list[str] = []
    for (a, h), count in GERMAN_CREDIT_TABLE1.items():
        age_sex_labels.extend([a] * count)
        housing_labels.extend([h] * count)
    n = len(age_sex_labels)
    if n != 1000:
        raise DatasetError(f"Table I counts sum to {n}, expected 1000")

    # Shuffle applicant identities so item index carries no group signal.
    perm = rng.permutation(n)
    age_sex_labels = [age_sex_labels[i] for i in perm]
    housing_labels = [housing_labels[i] for i in perm]

    amounts = rng.lognormal(_LOGNORMAL_MU, _LOGNORMAL_SIGMA, size=n)
    amounts = np.clip(np.round(amounts), 250, 20000)  # real attribute's range

    return GermanCreditData(
        credit_amount=amounts.astype(np.float64),
        age_sex=GroupAssignment(age_sex_labels),
        housing=GroupAssignment(housing_labels),
        source="synthetic",
    )


def load_german_credit(
    path: Optional[str] = None, seed: SeedLike = 0
) -> GermanCreditData:
    """Load German Credit: the real UCI file if available, else the replica.

    Parameters
    ----------
    path:
        Location of a UCI ``german.data`` file.  When ``None``, the paths
        ``$GERMAN_CREDIT_PATH`` and ``./german.data`` are probed; if no file
        exists the synthetic replica is returned.
    seed:
        Seed used only for the synthetic fallback.
    """
    candidates = []
    if path is not None:
        candidates.append(path)
    else:
        env = os.environ.get("GERMAN_CREDIT_PATH")
        if env:
            candidates.append(env)
        candidates.append("german.data")
    for candidate in candidates:
        if os.path.isfile(candidate):
            return _parse_uci_file(candidate)
    if path is not None:
        raise DatasetError(f"no german.data file at {path!r}")
    return synthesize_german_credit(seed=seed)


def _parse_uci_file(path: str) -> GermanCreditData:
    """Parse the whitespace-separated UCI ``german.data`` format.

    Relevant columns (0-based): 4 = credit amount, 8 = personal status/sex
    (A91–A95), 12 = age in years, 14 = housing (A151 rent, A152 own,
    A153 free).
    """
    female_codes = {"A92", "A95"}
    housing_map = {"A151": "rent", "A152": "own", "A153": "free"}
    amounts: list[float] = []
    age_sex: list[str] = []
    housing: list[str] = []
    with open(path) as f:
        for line_no, line in enumerate(f, start=1):
            fields = line.split()
            if not fields:
                continue
            if len(fields) < 21:
                raise DatasetError(
                    f"{path}:{line_no}: expected 21 fields, got {len(fields)}"
                )
            amounts.append(float(fields[4]))
            sex = "female" if fields[8] in female_codes else "male"
            age = "<35" if int(fields[12]) < 35 else ">=35"
            age_sex.append(f"{age}-{sex}")
            housing.append(housing_map.get(fields[14], "own"))
    if not amounts:
        raise DatasetError(f"{path}: no records parsed")
    return GermanCreditData(
        credit_amount=np.asarray(amounts, dtype=np.float64),
        age_sex=GroupAssignment(age_sex),
        housing=GroupAssignment(housing),
        source="uci",
    )
