"""The paper's contribution: fair ranking through Mallows noise (Algorithm 1).

Given a problem whose base ranking serves as the Mallows centre, draw ``m``
exact samples from ``M(centre, θ)`` and return the best one under a
selection criterion.  The method never reads the protected attribute — the
randomization is oblivious to groups, which is what yields robustness of
P-fairness against *unknown* attributes (Section V-C).
"""

from __future__ import annotations

from repro.algorithms.base import (
    warn_legacy_constructor,
    FairRankingAlgorithm,
    FairRankingProblem,
    FairRankingResult,
)
from repro.algorithms.criteria import MaxNdcgCriterion, SelectionCriterion
from repro.mallows.sampling import sample_mallows_batch
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator


class MallowsFairRanking(FairRankingAlgorithm):
    """Algorithm 1: randomized post-processing via Mallows noise.

    Parameters
    ----------
    theta:
        Dispersion of the Mallows distribution.  Small ``θ`` injects more
        noise (more fairness repair, lower efficiency); large ``θ`` stays
        close to the centre.  The paper evaluates ``θ ∈ {0.5, 1}``.
    n_samples:
        ``m``, the number of samples to draw; the paper uses 1 ("one-shot")
        and 15 ("best of 15").
    criterion:
        Ranks the samples; defaults to :class:`MaxNdcgCriterion` (the paper's
        NDCG-driven selection).  With ``n_samples = 1`` the criterion is
        irrelevant.

    Notes
    -----
    ``requires_protected_attribute`` is ``False``: the sampler only sees the
    base ranking, so the method applies unchanged when no group information
    exists.  (A criterion may itself consult groups — that is an explicit
    opt-in by the caller.)
    """

    requires_protected_attribute = False

    def __init__(
        self,
        theta: float,
        n_samples: int = 1,
        criterion: SelectionCriterion | None = None,
    ):
        warn_legacy_constructor("MallowsFairRanking", "mallows")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta}")
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        self.theta = float(theta)
        self.n_samples = int(n_samples)
        self.criterion = criterion if criterion is not None else MaxNdcgCriterion()
        self.name = f"mallows(theta={self.theta:g}, m={self.n_samples})"

    def rank(self, problem: FairRankingProblem, seed: SeedLike = None) -> FairRankingResult:
        """Draw ``n_samples`` Mallows samples around the base ranking and
        return the best under the criterion."""
        rng = as_generator(seed)
        orders = sample_mallows_batch(
            problem.base_ranking, self.theta, self.n_samples, seed=rng
        )
        if self.n_samples == 1:
            best_idx = 0
            criterion_name = "first-sample"
        else:
            best_idx = self.criterion.best_index(orders, problem)
            criterion_name = self.criterion.name
        return FairRankingResult(
            ranking=Ranking(orders[best_idx]),
            algorithm=self.name,
            metadata={
                "theta": self.theta,
                "n_samples": self.n_samples,
                "criterion": criterion_name,
                "selected_index": best_idx,
            },
        )
