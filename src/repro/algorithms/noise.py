"""Gaussian constraint-noise injection (Section V-C protocol).

The paper emulates imperfect knowledge of group membership by perturbing
each algorithm's fairness constraints.  For the ILP (and our DP cross-check)
the perturbation relaxes each prefix constraint by folded-normal slack:

``⌊β_p ℓ⌋ − X ≤ Σ ≤ ⌈α_p ℓ⌉ + Y``  with  ``X, Y ~ |N(0, σ)|``

(one-sided relaxation "to lessen the probability of making the problem
infeasible, while still retaining noise").
"""

from __future__ import annotations

import numpy as np

from repro.batch.cache import active_cache
from repro.fairness.constraints import FairnessConstraints
from repro.utils.rng import SeedLike, as_generator


def noisy_count_bounds(
    constraints: FairnessConstraints,
    max_length: int,
    sigma: float,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-prefix count bounds relaxed by folded-normal noise.

    Returns float matrices ``(lower, upper)`` of ``shape (max_length, g)``
    where ``lower[ℓ-1, p] = ⌊β_p ℓ⌋ − |N(0, σ)|`` and
    ``upper[ℓ-1, p] = ⌈α_p ℓ⌉ + |N(0, σ)|`` (independent draws per entry).
    With ``sigma = 0`` the exact integer bounds are returned as floats.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = as_generator(seed)
    lower_m, upper_m = active_cache().count_bounds(constraints, max_length)
    lower = lower_m.astype(np.float64)
    upper = upper_m.astype(np.float64)
    if sigma > 0:
        lower = lower - np.abs(rng.normal(0.0, sigma, size=lower.shape))
        upper = upper + np.abs(rng.normal(0.0, sigma, size=upper.shape))
    return lower, upper


def integer_bounds(
    lower: np.ndarray, upper: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Tightest integer count bands implied by float bounds.

    Counts are integers, so the effective band is
    ``[max(0, ⌈lower⌉), ⌊upper⌋]``.
    """
    lo = np.maximum(np.ceil(lower - 1e-9), 0).astype(np.int64)
    hi = np.floor(upper + 1e-9).astype(np.int64)
    return lo, hi
