"""Selection criteria for Algorithm 1's ``choose_ranking`` step.

Algorithm 1 draws ``m`` Mallows samples and keeps "the best according to a
specific metric".  A :class:`SelectionCriterion` scores a whole batch of
candidate orders at once (higher is better) so the post-processor can simply
take the argmax.  NDCG and KT-distance criteria are attribute-free; the
Infeasible-Index criterion needs a group assignment and is provided for the
regime where *some* attribute is known at selection time.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.algorithms.base import FairRankingProblem
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking
from repro.rankings.quality import idcg, position_discounts


class SelectionCriterion(abc.ABC):
    """Scores candidate sample orders; higher scores are preferred."""

    #: Name used in result metadata.
    name: str = "abstract"

    @abc.abstractmethod
    def score_batch(self, orders: np.ndarray, problem: FairRankingProblem) -> np.ndarray:
        """Score each row of ``orders`` (an ``(m, n)`` order-view array)."""

    def best_index(self, orders: np.ndarray, problem: FairRankingProblem) -> int:
        """Index of the best-scoring candidate (ties → first)."""
        scores = self.score_batch(orders, problem)
        return int(np.argmax(scores))


class MaxNdcgCriterion(SelectionCriterion):
    """Prefer the sample with the highest NDCG (requires item scores)."""

    name = "max-ndcg"

    def score_batch(self, orders: np.ndarray, problem: FairRankingProblem) -> np.ndarray:
        s = problem.require_scores()
        m, n = orders.shape
        disc = position_discounts(n)
        ideal = idcg(s, n)
        gains = s[orders] * disc[None, :]
        totals = gains.sum(axis=1)
        if ideal == 0.0:
            return np.ones(m, dtype=np.float64)
        return totals / ideal


class MinKendallTauCriterion(SelectionCriterion):
    """Prefer the sample closest (in KT distance) to the base ranking.

    Attribute-free: used when the quality scores behind the base ranking are
    unknown (the paper's efficiency objective in that regime).
    """

    name = "min-kendall-tau"

    def score_batch(self, orders: np.ndarray, problem: FairRankingProblem) -> np.ndarray:
        base = problem.base_ranking
        return -np.array(
            [kendall_tau_distance(Ranking(row), base) for row in orders],
            dtype=np.float64,
        )


class MinInfeasibleIndexCriterion(SelectionCriterion):
    """Prefer the sample with the lowest Two-Sided Infeasible Index with
    respect to a *selection* group assignment.

    By default the problem's known groups/constraints are used; an explicit
    assignment can be passed to select against a different attribute.
    """

    name = "min-infeasible-index"

    def __init__(
        self,
        groups: GroupAssignment | None = None,
        constraints: FairnessConstraints | None = None,
    ):
        self._groups = groups
        self._constraints = constraints

    def score_batch(self, orders: np.ndarray, problem: FairRankingProblem) -> np.ndarray:
        groups = self._groups if self._groups is not None else problem.require_groups()
        if self._constraints is not None:
            constraints = self._constraints
        elif problem.constraints is not None and self._groups is None:
            constraints = problem.constraints
        else:
            constraints = FairnessConstraints.proportional(groups)
        return -batch_infeasible_index(orders, groups, constraints).astype(np.float64)


class CompositeCriterion(SelectionCriterion):
    """Weighted sum of normalized sub-criterion scores.

    Each sub-criterion's batch scores are min-max normalized to ``[0, 1]``
    before weighting, so heterogeneous scales (NDCG vs negative II counts)
    combine meaningfully.
    """

    name = "composite"

    def __init__(self, parts: Sequence[tuple[SelectionCriterion, float]]):
        if not parts:
            raise ValueError("composite criterion needs at least one part")
        for _, weight in parts:
            if weight < 0:
                raise ValueError("criterion weights must be non-negative")
        self._parts = list(parts)
        self.name = "composite(" + "+".join(c.name for c, _ in self._parts) + ")"

    def score_batch(self, orders: np.ndarray, problem: FairRankingProblem) -> np.ndarray:
        m = orders.shape[0]
        total = np.zeros(m, dtype=np.float64)
        for criterion, weight in self._parts:
            raw = criterion.score_batch(orders, problem)
            span = raw.max() - raw.min()
            norm = (raw - raw.min()) / span if span > 0 else np.zeros(m)
            total += weight * norm
        return total


def batch_infeasible_index(
    orders: np.ndarray,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> np.ndarray:
    """Two-Sided Infeasible Index of every row of ``orders`` at once.

    Vectorized over the batch: builds the ``(m, n, g)`` prefix-count tensor
    and compares against the per-length bound matrices.
    """
    m, n = orders.shape
    g = groups.n_groups
    group_of_pos = groups.indices[orders]  # (m, n)
    one_hot = np.zeros((m, n, g), dtype=np.int64)
    rows = np.repeat(np.arange(m), n)
    cols = np.tile(np.arange(n), m)
    one_hot[rows, cols, group_of_pos.ravel()] = 1
    counts = one_hot.cumsum(axis=1)  # (m, n, g) prefix counts
    lower, upper = constraints.count_bounds_matrix(n)
    lower_viol = (counts < lower[None, :, :]).any(axis=2).sum(axis=1)
    upper_viol = (counts > upper[None, :, :]).any(axis=2).sum(axis=1)
    return (lower_viol + upper_viol).astype(np.int64)


def batch_percent_fair(
    orders: np.ndarray,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> np.ndarray:
    """Percentage of P-fair positions for every row of ``orders``."""
    m, n = orders.shape
    g = groups.n_groups
    group_of_pos = groups.indices[orders]
    one_hot = np.zeros((m, n, g), dtype=np.int64)
    rows = np.repeat(np.arange(m), n)
    cols = np.tile(np.arange(n), m)
    one_hot[rows, cols, group_of_pos.ravel()] = 1
    counts = one_hot.cumsum(axis=1)
    lower, upper = constraints.count_bounds_matrix(n)
    violated = ((counts < lower[None, :, :]) | (counts > upper[None, :, :])).any(axis=2)
    return 100.0 * (1.0 - violated.sum(axis=1) / n)
