"""Selection criteria for Algorithm 1's ``choose_ranking`` step.

Algorithm 1 draws ``m`` Mallows samples and keeps "the best according to a
specific metric".  A :class:`SelectionCriterion` scores a whole batch of
candidate orders at once (higher is better) so the post-processor can simply
take the argmax.  NDCG and KT-distance criteria are attribute-free; the
Infeasible-Index criterion needs a group assignment and is provided for the
regime where *some* attribute is known at selection time.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.algorithms.base import FairRankingProblem
from repro.batch.kernels import (
    batch_infeasible_index,
    batch_kendall_tau,
    batch_ndcg,
    batch_percent_fair,
)
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment

__all__ = [
    "SelectionCriterion",
    "MaxNdcgCriterion",
    "MinKendallTauCriterion",
    "MinInfeasibleIndexCriterion",
    "CompositeCriterion",
    # Batched fairness kernels live in repro.batch.kernels; re-exported here
    # because this module was their historical home.
    "batch_infeasible_index",
    "batch_percent_fair",
]


class SelectionCriterion(abc.ABC):
    """Scores candidate sample orders; higher scores are preferred."""

    #: Name used in result metadata.
    name: str = "abstract"

    @abc.abstractmethod
    def score_batch(self, orders: np.ndarray, problem: FairRankingProblem) -> np.ndarray:
        """Score each row of ``orders`` (an ``(m, n)`` order-view array)."""

    def best_index(self, orders: np.ndarray, problem: FairRankingProblem) -> int:
        """Index of the best-scoring candidate (ties → first)."""
        scores = self.score_batch(orders, problem)
        return int(np.argmax(scores))


class MaxNdcgCriterion(SelectionCriterion):
    """Prefer the sample with the highest NDCG (requires item scores)."""

    name = "max-ndcg"

    def score_batch(self, orders: np.ndarray, problem: FairRankingProblem) -> np.ndarray:
        return batch_ndcg(orders, problem.require_scores())


class MinKendallTauCriterion(SelectionCriterion):
    """Prefer the sample closest (in KT distance) to the base ranking.

    Attribute-free: used when the quality scores behind the base ranking are
    unknown (the paper's efficiency objective in that regime).
    """

    name = "min-kendall-tau"

    def score_batch(self, orders: np.ndarray, problem: FairRankingProblem) -> np.ndarray:
        return -batch_kendall_tau(orders, problem.base_ranking).astype(np.float64)


class MinInfeasibleIndexCriterion(SelectionCriterion):
    """Prefer the sample with the lowest Two-Sided Infeasible Index with
    respect to a *selection* group assignment.

    By default the problem's known groups/constraints are used; an explicit
    assignment can be passed to select against a different attribute.
    """

    name = "min-infeasible-index"

    def __init__(
        self,
        groups: GroupAssignment | None = None,
        constraints: FairnessConstraints | None = None,
    ):
        self._groups = groups
        self._constraints = constraints

    def score_batch(self, orders: np.ndarray, problem: FairRankingProblem) -> np.ndarray:
        groups = self._groups if self._groups is not None else problem.require_groups()
        if self._constraints is not None:
            constraints = self._constraints
        elif problem.constraints is not None and self._groups is None:
            constraints = problem.constraints
        else:
            constraints = FairnessConstraints.proportional(groups)
        return -batch_infeasible_index(orders, groups, constraints).astype(np.float64)


class CompositeCriterion(SelectionCriterion):
    """Weighted sum of normalized sub-criterion scores.

    Each sub-criterion's batch scores are min-max normalized to ``[0, 1]``
    before weighting, so heterogeneous scales (NDCG vs negative II counts)
    combine meaningfully.
    """

    name = "composite"

    def __init__(self, parts: Sequence[tuple[SelectionCriterion, float]]):
        if not parts:
            raise ValueError("composite criterion needs at least one part")
        for _, weight in parts:
            if weight < 0:
                raise ValueError("criterion weights must be non-negative")
        self._parts = list(parts)
        self.name = "composite(" + "+".join(c.name for c, _ in self._parts) + ")"

    def score_batch(self, orders: np.ndarray, problem: FairRankingProblem) -> np.ndarray:
        m = orders.shape[0]
        total = np.zeros(m, dtype=np.float64)
        for criterion, weight in self._parts:
            raw = criterion.score_batch(orders, problem)
            span = raw.max() - raw.min()
            norm = (raw - raw.min()) / span if span > 0 else np.zeros(m)
            total += weight * norm
        return total


