"""GrBinaryIPF (Wei et al., SIGMOD 2022, Algorithm 1).

Exact Kendall-tau-optimal P-fair re-ranking for *two* protected groups,
"inspired by mergesort": walk positions top-down, keeping each group's items
in base-ranking relative order, and at each position

* place a group that is about to violate its lower bound (it is *due*), else
* among groups not at their upper bound, place the item that comes first in
  the base ranking (the merge step — locally minimizing discordant pairs).

With two groups at most one group can be due at a time under consistent
bounds, and the greedy choice is optimal for the Kendall tau objective
because deferring the earlier-base item can only create additional
discordant pairs (the classical exchange argument of Wei et al.).
"""

from __future__ import annotations

import numpy as np

from repro.batch.cache import active_cache
from repro.algorithms.base import (
    warn_legacy_constructor,
    FairRankingAlgorithm,
    FairRankingProblem,
    FairRankingResult,
)
from repro.exceptions import InfeasibleProblemError
from repro.rankings.distances import kendall_tau_distance
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike


class GrBinaryIPF(FairRankingAlgorithm):
    """Exact KT-optimal fair re-ranking for binary protected attributes."""

    def __init__(self):
        warn_legacy_constructor("GrBinaryIPF", "binary-ipf")
        self.name = "gr-binary-ipf"

    def rank(self, problem: FairRankingProblem, seed: SeedLike = None) -> FairRankingResult:
        """Merge the two groups' base-order streams under prefix bounds."""
        groups = problem.require_groups()
        if groups.n_groups != 2:
            raise ValueError(
                f"GrBinaryIPF handles exactly 2 groups, got {groups.n_groups}"
            )
        constraints = problem.require_constraints()
        base = problem.base_ranking
        n = problem.n_items

        base_pos = base.positions
        queues = []
        for gi in range(2):
            members = np.flatnonzero(groups.indices == gi)
            members = members[np.argsort(base_pos[members], kind="stable")]
            queues.append(members.tolist())
        heads = [0, 0]
        counts = np.zeros(2, dtype=np.int64)
        lower_m, upper_m = active_cache().count_bounds(constraints, n)

        order = np.empty(n, dtype=np.int64)
        for pos in range(n):
            length = pos + 1
            lower = lower_m[length - 1]
            upper = upper_m[length - 1]
            available = [gi for gi in range(2) if heads[gi] < len(queues[gi])]
            if not available:
                raise InfeasibleProblemError("ran out of items mid-merge")
            due = [gi for gi in available if counts[gi] < lower[gi]]
            if len(due) > 1:
                raise InfeasibleProblemError(
                    f"both groups due at prefix {length}: bounds are infeasible"
                )
            if due:
                chosen = due[0]
            else:
                allowed = [gi for gi in available if counts[gi] < upper[gi]]
                if not allowed:
                    raise InfeasibleProblemError(
                        f"no group may occupy position {length}: bounds are infeasible"
                    )
                chosen = min(
                    allowed, key=lambda gi: base_pos[queues[gi][heads[gi]]]
                )
            order[pos] = queues[chosen][heads[chosen]]
            heads[chosen] += 1
            counts[chosen] += 1

        ranking = Ranking(order)
        return FairRankingResult(
            ranking=ranking,
            algorithm=self.name,
            metadata={
                "kendall_tau_to_base": kendall_tau_distance(ranking, base),
            },
        )
