"""Generalized-Mallows post-processing: Algorithm 1 with a dispersion
*profile* instead of a single θ.

The paper's future work proposes "tuning parameters within the noise
distribution".  This variant does exactly that: per-insertion dispersions
let the randomization concentrate where fairness repair is needed — e.g. a
near-zero head dispersion shuffles the centre's top items among themselves
(repairing prefix representation) while a large tail dispersion prevents
low-ranked items from leaping to the top (bounding the efficiency loss).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    warn_legacy_constructor,
    FairRankingAlgorithm,
    FairRankingProblem,
    FairRankingResult,
)
from repro.algorithms.criteria import MaxNdcgCriterion, SelectionCriterion
from repro.mallows.generalized import GeneralizedMallowsModel
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator


class GeneralizedMallowsFairRanking(FairRankingAlgorithm):
    """Algorithm 1 driven by a Generalized Mallows dispersion profile.

    Parameters
    ----------
    thetas:
        Per-insertion dispersions, ``shape (n-1,)`` for ``n``-item
        problems (see :func:`repro.mallows.generalized.dispersion_profile`
        for ready-made head/tail profiles).  A scalar is broadcast,
        reducing to the standard method.
    n_samples:
        ``m``, the sample budget.
    criterion:
        Sample-selection criterion (default: max NDCG).
    """

    requires_protected_attribute = False

    def __init__(
        self,
        thetas: np.ndarray | float,
        n_samples: int = 1,
        criterion: SelectionCriterion | None = None,
    ):
        warn_legacy_constructor("GeneralizedMallowsFairRanking", "gmm")
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        if np.isscalar(thetas):
            if thetas < 0:
                raise ValueError(f"theta must be non-negative, got {thetas}")
            self._thetas = float(thetas)
        else:
            arr = np.asarray(thetas, dtype=np.float64)
            if arr.ndim != 1 or np.any(arr < 0):
                raise ValueError("thetas must be a non-negative 1-D vector")
            self._thetas = arr
        self.n_samples = int(n_samples)
        self.criterion = criterion if criterion is not None else MaxNdcgCriterion()
        label = (
            f"{self._thetas:g}" if np.isscalar(self._thetas) else "profile"
        )
        self.name = f"gmm-mallows(theta={label}, m={self.n_samples})"

    def _model(self, center: Ranking) -> GeneralizedMallowsModel:
        n = len(center)
        if np.isscalar(self._thetas):
            return GeneralizedMallowsModel.standard(center, float(self._thetas))
        if self._thetas.shape != (n - 1,):
            raise ValueError(
                f"dispersion profile has {self._thetas.size} entries; "
                f"a ranking of {n} items needs {n - 1}"
            )
        return GeneralizedMallowsModel(center=center, thetas=self._thetas)

    def rank(self, problem: FairRankingProblem, seed: SeedLike = None) -> FairRankingResult:
        """Sample from the GMM around the base ranking; keep the best."""
        rng = as_generator(seed)
        model = self._model(problem.base_ranking)
        orders = model.sample_orders(self.n_samples, seed=rng)
        if self.n_samples == 1:
            best_idx = 0
            criterion_name = "first-sample"
        else:
            best_idx = self.criterion.best_index(orders, problem)
            criterion_name = self.criterion.name
        return FairRankingResult(
            ranking=Ranking(orders[best_idx]),
            algorithm=self.name,
            metadata={
                "n_samples": self.n_samples,
                "criterion": criterion_name,
                "selected_index": best_idx,
                "expected_kt": model.expected_distance(),
            },
        )
