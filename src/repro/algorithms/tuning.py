"""Dispersion tuning — the paper's future-work knob, implemented.

Two monotone relationships drive the method's fairness/efficiency trade-off:

* expected NDCG of a Mallows sample **increases** with ``θ`` (less noise);
* for an unfair centre, the expected Infeasible Index **increases** with
  ``θ`` (more noise repairs more).

Both tuners exploit the monotonicity with a sampled bisection: estimate the
expectation at the midpoint from ``m`` Monte-Carlo draws and move the
bracket.  Estimates are noisy, so the returned ``θ`` is approximate; the
``m`` parameter trades precision for speed.
"""

from __future__ import annotations

import numpy as np

from repro.batch import batch_infeasible_index
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.mallows.sampling import sample_mallows_batch
from repro.rankings.permutation import Ranking
from repro.rankings.quality import idcg, position_discounts
from repro.utils.rng import SeedLike, as_generator

_THETA_HI = 20.0


def _mean_ndcg(
    center: Ranking,
    scores: np.ndarray,
    theta: float,
    m: int,
    rng: np.random.Generator,
) -> float:
    orders = sample_mallows_batch(center, theta, m, seed=rng)
    n = len(center)
    disc = position_discounts(n)
    ideal = idcg(scores, n)
    if ideal == 0.0:
        return 1.0
    return float((scores[orders] * disc[None, :]).sum(axis=1).mean() / ideal)


def tune_theta_for_ndcg(
    center: Ranking,
    scores: np.ndarray,
    target_ndcg: float,
    m: int = 200,
    iterations: int = 20,
    seed: SeedLike = None,
) -> float:
    """Smallest ``θ`` whose expected sample NDCG reaches ``target_ndcg``.

    Smaller ``θ`` means more randomization (better fairness robustness), so
    the minimal ``θ`` meeting the efficiency target is the most-fair
    admissible dispersion.
    """
    if not 0.0 < target_ndcg <= 1.0:
        raise ValueError(f"target_ndcg must be in (0, 1], got {target_ndcg}")
    rng = as_generator(seed)
    scores = np.asarray(scores, dtype=np.float64)
    if _mean_ndcg(center, scores, 0.0, m, rng) >= target_ndcg:
        return 0.0
    lo, hi = 0.0, _THETA_HI
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if _mean_ndcg(center, scores, mid, m, rng) >= target_ndcg:
            hi = mid
        else:
            lo = mid
    return hi


def tune_theta_for_infeasible_index(
    center: Ranking,
    groups: GroupAssignment,
    target_ii: float,
    constraints: FairnessConstraints | None = None,
    m: int = 200,
    iterations: int = 20,
    seed: SeedLike = None,
) -> float:
    """Largest ``θ`` whose expected sample Infeasible Index stays at or below
    ``target_ii`` (w.r.t. the given groups).

    Larger ``θ`` means higher efficiency, so the maximal ``θ`` meeting the
    fairness target is the most-efficient admissible dispersion.  Useful when
    the centre is unfair and randomization is the repair mechanism.
    """
    if target_ii < 0:
        raise ValueError(f"target_ii must be non-negative, got {target_ii}")
    rng = as_generator(seed)
    if constraints is None:
        constraints = FairnessConstraints.proportional(groups)

    def mean_ii(theta: float) -> float:
        orders = sample_mallows_batch(center, theta, m, seed=rng)
        return float(batch_infeasible_index(orders, groups, constraints).mean())

    if mean_ii(_THETA_HI) <= target_ii:
        return _THETA_HI
    if mean_ii(0.0) > target_ii:
        # Even maximal noise cannot reach the target.
        return 0.0
    lo, hi = 0.0, _THETA_HI
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if mean_ii(mid) <= target_ii:
            lo = mid
        else:
            hi = mid
    return lo
