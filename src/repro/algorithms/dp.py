"""Exact DCG-optimal P-fair ranking by dynamic programming.

The ILP of Section IV-B has special structure: the position discounts
``c(j)`` are decreasing, so within each group the optimal solution places
members in descending score order (exchange argument — swapping two
same-group members to score order never decreases the objective).  The only
real decision is therefore the *group sequence*: which group supplies each
position.  A state is the vector of per-group counts after a prefix, and the
two-sided bounds confine each group's count at prefix ``ℓ`` to a narrow
band, so the state space stays small even for ``k = 100`` and noisy bounds.

This solver is exact and independently verifies the MILP backend
(:class:`~repro.algorithms.ilp.IlpFairRanking`); it is also much faster and
is the recommended engine for large sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    warn_legacy_constructor,
    FairRankingAlgorithm,
    FairRankingProblem,
    FairRankingResult,
)
from repro.algorithms.noise import integer_bounds, noisy_count_bounds
from repro.exceptions import InfeasibleProblemError
from repro.rankings.permutation import Ranking
from repro.rankings.quality import position_discounts
from repro.utils.rng import SeedLike, as_generator


class DpFairRanking(FairRankingAlgorithm):
    """DCG-maximizing fair ranking via group-count dynamic programming.

    Parameters
    ----------
    noise_sigma:
        Standard deviation of the folded-normal constraint relaxation
        (the paper's noisy-ILP protocol); ``0`` solves the exact problem.
    top_k:
        When set, only the top ``k`` positions are optimized (the paper's
        ILP selects ``k`` of ``d`` candidates via ``Σ_j x_ij ≤ 1``); the
        remaining items are appended below in descending score order.
        ``None`` (default) ranks everything.
    """

    def __init__(self, noise_sigma: float = 0.0, top_k: int | None = None):
        warn_legacy_constructor("DpFairRanking", "dp")
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        if top_k is not None and top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.noise_sigma = float(noise_sigma)
        self.top_k = top_k
        suffix = f", sigma={self.noise_sigma:g}" if self.noise_sigma else ""
        if top_k is not None:
            suffix += f", top_k={top_k}"
        self.name = f"dp-fair{suffix}"

    def rank(self, problem: FairRankingProblem, seed: SeedLike = None) -> FairRankingResult:
        """Solve for the exact optimum group sequence, then fill items."""
        rng = as_generator(seed)
        groups = problem.require_groups()
        scores = problem.require_scores()
        constraints = problem.require_constraints()
        n = problem.n_items
        k = n if self.top_k is None else min(self.top_k, n)

        lower_f, upper_f = noisy_count_bounds(
            constraints, k, self.noise_sigma, seed=rng
        )
        lower_m, upper_m = integer_bounds(lower_f, upper_f)
        prefix, value = solve_group_dp(scores, groups, lower_m, upper_m, k=k)

        order = _complete_order(prefix, scores, n)
        return FairRankingResult(
            ranking=Ranking(order),
            algorithm=self.name,
            metadata={"noise_sigma": self.noise_sigma, "dcg": value, "k": k},
        )


def _complete_order(prefix: np.ndarray, scores: np.ndarray, n: int) -> np.ndarray:
    """Append the unselected items below ``prefix`` in descending score."""
    if prefix.size == n:
        return prefix
    selected = np.zeros(n, dtype=bool)
    selected[prefix] = True
    rest = np.flatnonzero(~selected)
    rest = rest[np.argsort(-scores[rest], kind="stable")]
    return np.concatenate([prefix, rest])


def solve_group_dp(
    scores: np.ndarray,
    groups,
    lower_m: np.ndarray,
    upper_m: np.ndarray,
    k: int | None = None,
) -> tuple[np.ndarray, float]:
    """Core DP over group-count states.

    Parameters
    ----------
    scores:
        Per-item relevance.
    groups:
        :class:`GroupAssignment` of the items.
    lower_m, upper_m:
        Integer per-prefix count bounds, ``shape (k, g)`` — row ``ℓ-1``
        bounds the counts in the length-``ℓ`` prefix.
    k:
        Number of positions to fill (default: all items).

    Returns
    -------
    (order, dcg):
        The optimal length-``k`` order array and its DCG value.

    Raises
    ------
    InfeasibleProblemError
        If no count sequence satisfies the bounds.
    """
    s = np.asarray(scores, dtype=np.float64)
    n = k if k is not None else s.size
    g = groups.n_groups
    discounts = position_discounts(n)

    # Members of each group in descending score order: the t-th placement of
    # a group always takes its t-th best member.
    member_scores: list[np.ndarray] = []
    member_items: list[np.ndarray] = []
    for gi in range(g):
        members = np.flatnonzero(groups.indices == gi)
        members = members[np.argsort(-s[members], kind="stable")]
        member_items.append(members)
        member_scores.append(s[members])
    sizes = np.array([m.size for m in member_items])

    # DP over states: counts tuple -> (value, parent_state, last_group).
    current: dict[tuple[int, ...], float] = {tuple([0] * g): 0.0}
    parents: list[dict[tuple[int, ...], tuple[tuple[int, ...], int]]] = []

    for pos in range(n):
        length = pos + 1
        lower = lower_m[length - 1]
        upper = upper_m[length - 1]
        nxt: dict[tuple[int, ...], float] = {}
        nxt_parent: dict[tuple[int, ...], tuple[tuple[int, ...], int]] = {}
        disc = discounts[pos]
        for state, value in current.items():
            for gi in range(g):
                c = state[gi]
                if c >= sizes[gi] or c + 1 > upper[gi]:
                    continue
                new_state = state[:gi] + (c + 1,) + state[gi + 1 :]
                # Lower bounds must hold for the *new* prefix; check all
                # groups (cheap: g is small).
                ok = True
                for gj in range(g):
                    if new_state[gj] < lower[gj]:
                        ok = False
                        break
                if not ok:
                    continue
                gain = value + member_scores[gi][c] * disc
                if gain > nxt.get(new_state, -np.inf):
                    nxt[new_state] = gain
                    nxt_parent[new_state] = (state, gi)
        if not nxt:
            raise InfeasibleProblemError(
                f"no feasible group sequence at prefix {length}"
            )
        current = nxt
        parents.append(nxt_parent)

    final_state = max(current, key=lambda st: current[st])
    value = current[final_state]

    # Reconstruct the group sequence backwards, then fill items forwards.
    group_seq = np.empty(n, dtype=np.int64)
    state = final_state
    for pos in range(n - 1, -1, -1):
        prev_state, gi = parents[pos][state]
        group_seq[pos] = gi
        state = prev_state

    next_of = [0] * g
    order = np.empty(n, dtype=np.int64)
    for pos in range(n):
        gi = int(group_seq[pos])
        order[pos] = member_items[gi][next_of[gi]]
        next_of[gi] += 1
    return order, float(value)
