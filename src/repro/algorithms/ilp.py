"""The paper's ILP (Section IV-B) solved with ``scipy.optimize.milp`` (HiGHS).

maximize    Σ_i Σ_j s(i)·c(j)·x_ij
subject to  Σ_i x_ij = 1                     for every position j
            Σ_j x_ij ≤ 1                     for every item i
            ⌊β_p ℓ⌋ − X ≤ Σ_{i∈G_p} Σ_{j≤ℓ} x_ij ≤ ⌈α_p ℓ⌉ + Y
                                             for every prefix ℓ and group p
            x_ij ∈ {0, 1}

with ``c(j) = 1/log(1+j)`` and, in the noisy variant, independent
``X, Y ~ |N(0, σ)|`` per constraint (Section V-C).  The exact DP solver in
:mod:`repro.algorithms.dp` computes the same optimum and is used in tests to
validate this backend.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import LinearConstraint, milp

from repro.algorithms.base import (
    warn_legacy_constructor,
    FairRankingAlgorithm,
    FairRankingProblem,
    FairRankingResult,
)
from repro.algorithms.noise import noisy_count_bounds
from repro.exceptions import InfeasibleProblemError, SolverError
from repro.rankings.permutation import Ranking
from repro.rankings.quality import position_discounts
from repro.utils.rng import SeedLike, as_generator


class IlpFairRanking(FairRankingAlgorithm):
    """DCG-maximizing fair ranking via mixed-integer programming.

    Parameters
    ----------
    noise_sigma:
        Standard deviation of the folded-normal constraint relaxation;
        ``0`` (default) solves the exact ILP.
    time_limit:
        Optional solver wall-clock limit in seconds.
    top_k:
        When set, only ``k`` positions are filled (the paper's
        ``Σ_j x_ij ≤ 1`` item constraint becomes active); unselected items
        are appended below in descending score order.  ``None`` ranks all.
    """

    def __init__(
        self,
        noise_sigma: float = 0.0,
        time_limit: float | None = None,
        top_k: int | None = None,
    ):
        warn_legacy_constructor("IlpFairRanking", "ilp")
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        if top_k is not None and top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self.noise_sigma = float(noise_sigma)
        self.time_limit = time_limit
        self.top_k = top_k
        suffix = f", sigma={self.noise_sigma:g}" if self.noise_sigma else ""
        if top_k is not None:
            suffix += f", top_k={top_k}"
        self.name = f"ilp{suffix}"

    def rank(self, problem: FairRankingProblem, seed: SeedLike = None) -> FairRankingResult:
        """Build and solve the assignment MILP over ``n`` items and ``k``
        positions."""
        rng = as_generator(seed)
        groups = problem.require_groups()
        scores = problem.require_scores()
        constraints = problem.require_constraints()
        n = problem.n_items
        k = n if self.top_k is None else min(self.top_k, n)
        g = groups.n_groups
        n_vars = n * k  # x laid out row-major by item: x[i*k + j]

        c = position_discounts(k)
        # Objective: maximize sum s_i c_j x_ij  ->  minimize -(s ⊗ c).
        objective = -(scores[:, None] * c[None, :]).ravel()

        lin_constraints = []

        # Each position filled exactly once: A_pos x = 1.
        rows = np.tile(np.arange(k), n)            # position j of each (i, j)
        cols = np.arange(n_vars)
        a_pos = sparse.csr_matrix(
            (np.ones(n_vars), (rows, cols)), shape=(k, n_vars)
        )
        lin_constraints.append(LinearConstraint(a_pos, 1.0, 1.0))

        # Each item used at most once (exactly once in the square case).
        rows = np.repeat(np.arange(n), k)
        cols = np.arange(n_vars)
        a_item = sparse.csr_matrix(
            (np.ones(n_vars), (rows, cols)), shape=(n, n_vars)
        )
        item_lb = 1.0 if k == n else 0.0
        lin_constraints.append(LinearConstraint(a_item, item_lb, 1.0))

        # Prefix representation constraints for prefixes 1..k.
        lower_f, upper_f = noisy_count_bounds(
            constraints, k, self.noise_sigma, seed=rng
        )
        data, row_idx, col_idx = [], [], []
        lb = np.empty(k * g)
        ub = np.empty(k * g)
        constraint_row = 0
        item_group = groups.indices
        for ell in range(1, k + 1):
            for p in range(g):
                members = np.flatnonzero(item_group == p)
                for i in members:
                    for j in range(ell):
                        data.append(1.0)
                        row_idx.append(constraint_row)
                        col_idx.append(i * k + j)
                lb[constraint_row] = lower_f[ell - 1, p]
                ub[constraint_row] = upper_f[ell - 1, p]
                constraint_row += 1
        a_prefix = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(k * g, n_vars)
        )
        lin_constraints.append(LinearConstraint(a_prefix, lb, ub))

        options = {}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit
        result = milp(
            objective,
            constraints=lin_constraints,
            integrality=np.ones(n_vars),
            bounds=None,
            options=options,
        )
        if not result.success:
            if result.status == 2:  # infeasible
                raise InfeasibleProblemError(
                    f"ILP infeasible: {result.message}"
                )
            raise SolverError(f"MILP solver failed: {result.message}")

        x = np.asarray(result.x).reshape(n, k)
        prefix = np.argmax(x, axis=0).astype(np.int64)  # item per position
        order = _complete_order(prefix, scores, n)
        dcg_value = float(-(result.fun))
        return FairRankingResult(
            ranking=Ranking(order),
            algorithm=self.name,
            metadata={
                "noise_sigma": self.noise_sigma,
                "dcg": dcg_value,
                "solver_status": int(result.status),
                "k": k,
            },
        )


def _complete_order(prefix: np.ndarray, scores: np.ndarray, n: int) -> np.ndarray:
    """Append the unselected items below ``prefix`` in descending score."""
    if prefix.size == n:
        return prefix
    selected = np.zeros(n, dtype=bool)
    selected[prefix] = True
    rest = np.flatnonzero(~selected)
    rest = rest[np.argsort(-scores[rest], kind="stable")]
    return np.concatenate([prefix, rest])
