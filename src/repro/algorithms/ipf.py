"""ApproxMultiValuedIPF (Wei et al., SIGMOD 2022, Algorithm 2).

The algorithm computes, for the ``t``-th member of each group (in base-
ranking order), the interval of positions compatible with the two-sided
prefix bounds, then solves a minimum-weight bipartite matching between items
and positions with weight ``|base_position − position|`` (Spearman's
footrule), restricted to the feasible intervals.  The matching is optimal
for the footrule objective and feasible intervals encode the P-fairness
constraints exactly:

* the ``t``-th member may not appear before the earliest prefix whose upper
  bound admits ``t`` members, and
* must appear no later than the first prefix whose lower bound demands ``t``
  members.

The noisy variant adds an independent ``N(0, σ)`` draw to every matching
weight (Algorithm 2, line 2 of Wei et al.), per the paper's Section V-C.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.batch.cache import active_cache
from repro.algorithms.base import (
    warn_legacy_constructor,
    FairRankingAlgorithm,
    FairRankingProblem,
    FairRankingResult,
)
from repro.exceptions import InfeasibleProblemError
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator

#: Weight assigned to infeasible (item, position) pairs.  Large enough to
#: never be chosen when a feasible perfect matching exists (max total
#: footrule is < n² for n items).
_FORBIDDEN = 10**9


def feasible_position_intervals(
    groups: GroupAssignment,
    constraints: FairnessConstraints,
    base_ranking: Ranking,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-item feasible position intervals ``[earliest, latest]`` (0-based).

    For the ``t``-th member (1-based) of group ``gi`` in base-ranking order:

    * ``earliest`` = first 0-based position ``j`` with ``upper(j+1) >= t``;
    * ``latest``   = the position just before the first prefix length whose
      lower bound reaches ``t`` (it must already be placed by then).

    Returns two ``(n,)`` int arrays indexed by item.
    """
    n = groups.n_items
    lower_m, upper_m = active_cache().count_bounds(constraints, n)  # (n, g)
    # A floor demanding more members than a group contains can never be
    # met — the per-member intervals below would silently ignore it.
    sizes = groups.group_sizes
    if np.any(lower_m > sizes[None, :]):
        bad = np.argwhere(lower_m > sizes[None, :])[0]
        raise InfeasibleProblemError(
            f"prefix {int(bad[0]) + 1} demands {int(lower_m[bad[0], bad[1]])} "
            f"members of group {int(bad[1])}, which has only "
            f"{int(sizes[bad[1]])}"
        )
    earliest = np.empty(n, dtype=np.int64)
    latest = np.empty(n, dtype=np.int64)
    base_pos = base_ranking.positions
    for gi in range(groups.n_groups):
        members = np.flatnonzero(groups.indices == gi)
        members = members[np.argsort(base_pos[members], kind="stable")]
        uppers = upper_m[:, gi]   # upper count bound for prefix length ℓ=j+1
        lowers = lower_m[:, gi]
        for t_minus_1, item in enumerate(members):
            t = t_minus_1 + 1
            ok_early = np.flatnonzero(uppers >= t)
            if ok_early.size == 0:
                raise InfeasibleProblemError(
                    f"group {gi}: upper bounds never admit {t} members"
                )
            earliest[item] = ok_early[0]
            due = np.flatnonzero(lowers >= t)
            latest[item] = (due[0]) if due.size else (n - 1)
    return earliest, latest


class ApproxMultiValuedIPF(FairRankingAlgorithm):
    """Footrule-optimal P-fair re-ranking via min-weight bipartite matching.

    Parameters
    ----------
    noise_sigma:
        Standard deviation of the ``N(0, σ)`` noise added to every matching
        weight; ``0`` (default) is the vanilla algorithm.
    """

    def __init__(self, noise_sigma: float = 0.0):
        warn_legacy_constructor("ApproxMultiValuedIPF", "ipf")
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        self.noise_sigma = float(noise_sigma)
        suffix = f", sigma={self.noise_sigma:g}" if self.noise_sigma else ""
        self.name = f"approx-multi-valued-ipf{suffix}"

    def rank(self, problem: FairRankingProblem, seed: SeedLike = None) -> FairRankingResult:
        """Match items to positions minimizing (noisy) total displacement."""
        rng = as_generator(seed)
        groups = problem.require_groups()
        constraints = problem.require_constraints()
        base = problem.base_ranking
        n = problem.n_items

        earliest, latest = feasible_position_intervals(groups, constraints, base)

        positions = np.arange(n)
        weights = np.abs(
            base.positions[:, None].astype(np.float64) - positions[None, :]
        )
        if self.noise_sigma > 0:
            weights = weights + rng.normal(0.0, self.noise_sigma, size=weights.shape)
        infeasible = (positions[None, :] < earliest[:, None]) | (
            positions[None, :] > latest[:, None]
        )
        weights[infeasible] = _FORBIDDEN

        row_ind, col_ind = linear_sum_assignment(weights)
        if weights[row_ind, col_ind].max() >= _FORBIDDEN:
            raise InfeasibleProblemError(
                "no P-fair assignment exists for the given constraints"
            )

        order = np.empty(n, dtype=np.int64)
        order[col_ind] = row_ind

        # Within each group, restore base-ranking relative order across the
        # positions the group received: this never changes group prefix
        # counts (hence preserves fairness) and never increases footrule.
        order = _sort_within_groups(order, groups, base)

        total_footrule = int(
            np.abs(
                base.positions[order] - np.arange(n)
            ).sum()
        )
        return FairRankingResult(
            ranking=Ranking(order),
            algorithm=self.name,
            metadata={
                "noise_sigma": self.noise_sigma,
                "footrule_to_base": total_footrule,
            },
        )


def _sort_within_groups(
    order: np.ndarray, groups: GroupAssignment, base: Ranking
) -> np.ndarray:
    """Reassign each group's matched positions to its members in base order."""
    out = order.copy()
    base_pos = base.positions
    group_of_pos = groups.indices[order]
    for gi in range(groups.n_groups):
        slots = np.flatnonzero(group_of_pos == gi)
        items = order[slots]
        items = items[np.argsort(base_pos[items], kind="stable")]
        out[slots] = items
    return out
