"""Common problem/result types and the algorithm interface.

Every post-processing algorithm in this package consumes a
:class:`FairRankingProblem` — the base ranking to repair plus whatever side
information the method uses (scores, a known protected attribute,
constraints) — and produces a :class:`FairRankingResult`.  The uniform
interface is what lets the German Credit experiment sweep all five methods
through one loop.
"""

from __future__ import annotations

import abc
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

import numpy as np

from repro.exceptions import LengthMismatchError
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.rankings.sorting import rank_by_score
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class FairRankingProblem:
    """One fair-ranking instance.

    Attributes
    ----------
    base_ranking:
        The ranking to post-process (the paper's central / initial ranking,
        typically score-sorted or weakly-p-fair).
    scores:
        Relevance score per item, used by NDCG-driven methods; optional for
        purely distance-driven ones.
    groups:
        The *known* protected attribute.  ``None`` models the
        attribute-unavailable regime (only the Mallows method still works).
    constraints:
        Two-sided P-fairness bounds on ``groups``.
    """

    base_ranking: Ranking
    scores: Optional[np.ndarray] = None
    groups: Optional[GroupAssignment] = None
    constraints: Optional[FairnessConstraints] = None

    def __post_init__(self) -> None:
        n = len(self.base_ranking)
        if self.scores is not None:
            scores = np.asarray(self.scores, dtype=np.float64)
            if scores.size != n:
                raise LengthMismatchError(
                    f"{scores.size} scores for a ranking of {n} items"
                )
            object.__setattr__(self, "scores", scores)
        if self.groups is not None and self.groups.n_items != n:
            raise LengthMismatchError(
                f"group assignment covers {self.groups.n_items} items "
                f"for a ranking of {n}"
            )

    @property
    def n_items(self) -> int:
        """Number of items being ranked."""
        return len(self.base_ranking)

    @classmethod
    def from_scores(
        cls,
        scores: np.ndarray,
        groups: Optional[GroupAssignment] = None,
        constraints: Optional[FairnessConstraints] = None,
    ) -> "FairRankingProblem":
        """Convenience constructor: base ranking = score-sorted ranking."""
        scores = np.asarray(scores, dtype=np.float64)
        if groups is not None and constraints is None:
            constraints = FairnessConstraints.proportional(groups)
        return cls(
            base_ranking=rank_by_score(scores),
            scores=scores,
            groups=groups,
            constraints=constraints,
        )

    def require_scores(self) -> np.ndarray:
        """Scores, or raise if this problem has none."""
        if self.scores is None:
            raise ValueError("this algorithm requires item scores")
        return self.scores

    def require_groups(self) -> GroupAssignment:
        """Known groups, or raise if the attribute is unavailable."""
        if self.groups is None:
            raise ValueError(
                "this algorithm requires the protected attribute, which is "
                "unavailable in this problem"
            )
        return self.groups

    def require_constraints(self) -> FairnessConstraints:
        """Constraints, defaulting to proportional bounds on the groups."""
        if self.constraints is not None:
            return self.constraints
        return FairnessConstraints.proportional(self.require_groups())


@dataclass
class FairRankingResult:
    """Output of a fair-ranking algorithm.

    Attributes
    ----------
    ranking:
        The produced ranking.
    algorithm:
        Name of the producing algorithm.
    metadata:
        Algorithm-specific diagnostics (e.g. number of Mallows samples,
        selected-sample criterion value, solver status).
    """

    ranking: Ranking
    algorithm: str
    metadata: dict[str, Any] = field(default_factory=dict)


#: Depth of nested :func:`suppress_legacy_warnings` blocks (0 = armed).
#: The engine's algorithm registry is the sanctioned construction path; it
#: wraps its factory calls in the suppression context so only *direct*
#: legacy constructions warn.  Per-thread, so one engine session
#: constructing through the registry cannot swallow a concurrent thread's
#: legitimate direct-construction warning (engine sessions are documented
#: as one-per-thread; see :mod:`repro.batch.cache`).
_SUPPRESS_LEGACY = threading.local()


@contextmanager
def suppress_legacy_warnings() -> Iterator[None]:
    """Silence :func:`warn_legacy_constructor` for the duration of the block
    (re-entrant, thread-scoped).  Used by
    :func:`repro.engine.make_algorithm`, the registry path that replaces
    direct constructor calls."""
    _SUPPRESS_LEGACY.depth = getattr(_SUPPRESS_LEGACY, "depth", 0) + 1
    try:
        yield
    finally:
        _SUPPRESS_LEGACY.depth -= 1


def warn_legacy_constructor(cls_name: str, registry_name: str) -> None:
    """One-time :class:`DeprecationWarning` for a direct algorithm-class
    construction (the pre-engine API).

    Deduplicated per class through the resettable warn-once registry of
    :mod:`repro.batch.parallel` (so :func:`repro.batch.reset_warnings`
    re-arms it, and the shared pytest fixture isolates tests), and silenced
    entirely inside :func:`suppress_legacy_warnings` — the path the engine
    registry constructs through.  The legacy constructors keep working and
    produce byte-identical rankings; the warning only points at the
    serving-grade replacement.
    """
    if getattr(_SUPPRESS_LEGACY, "depth", 0):
        return
    from repro.batch.parallel import _warn_once

    _warn_once(
        f"legacy-constructor:{cls_name}",
        f"constructing {cls_name} directly is deprecated; build it through "
        f"the serving engine instead — e.g. "
        f'RankingEngine().algorithm("{registry_name}", ...) or '
        f'repro.engine.make_algorithm("{registry_name}", ...) — which adds '
        f"session-owned worker pools, kernel caches and streaming batch "
        f"ranking around the same implementation (rankings are "
        f"byte-identical).  This warning is shown once per "
        f"reset_warnings().",
        category=DeprecationWarning,
        stacklevel=4,
    )


class FairRankingAlgorithm(abc.ABC):
    """Interface implemented by all post-processing algorithms."""

    #: Human-readable algorithm name (used in experiment reports).
    name: str = "abstract"

    #: Whether the algorithm reads ``problem.groups`` — attribute-blind
    #: methods (Mallows) set this to ``False``.
    requires_protected_attribute: bool = True

    @abc.abstractmethod
    def rank(self, problem: FairRankingProblem, seed: SeedLike = None) -> FairRankingResult:
        """Post-process ``problem.base_ranking`` into a fair(er) ranking."""

    def __call__(self, problem: FairRankingProblem, seed: SeedLike = None) -> FairRankingResult:
        return self.rank(problem, seed=seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
