"""DetConstSort (Geyik et al., KDD 2019, Algorithm 3) and its noisy variant.

DetConstSort walks prefix lengths ``k = 1, 2, …``; whenever a group's
minimum-count requirement ``⌊p_g · k⌋`` increases, that group's next-best
candidate is appended, then bubbled up toward earlier positions as long as
its score beats its predecessor *and* the swap keeps every prefix's minimum
counts satisfied.  The result interleaves groups proportionally while
staying close to score order.

The noisy variant follows the paper's Section V-C protocol: an independent
``N(0, σ)`` draw is added to each ``tempMinCounts`` entry (Algorithm 3,
line 7 of Geyik et al.), modelling imperfect knowledge of group membership.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    warn_legacy_constructor,
    FairRankingAlgorithm,
    FairRankingProblem,
    FairRankingResult,
)
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator


class DetConstSort(FairRankingAlgorithm):
    """Deterministic constrained sort with optional Gaussian constraint noise.

    Parameters
    ----------
    noise_sigma:
        Standard deviation of the ``N(0, σ)`` noise added to each
        ``tempMinCounts`` entry; ``0`` (default) is the vanilla algorithm.
    target_proportions:
        Per-group target rates ``p_g``; defaults to the problem's group
        proportions (the paper's setting).
    """

    def __init__(self, noise_sigma: float = 0.0, target_proportions: np.ndarray | None = None):
        warn_legacy_constructor("DetConstSort", "detconstsort")
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {noise_sigma}")
        self.noise_sigma = float(noise_sigma)
        self.target_proportions = (
            None
            if target_proportions is None
            else np.asarray(target_proportions, dtype=np.float64)
        )
        suffix = f", sigma={self.noise_sigma:g}" if self.noise_sigma else ""
        self.name = f"detconstsort{suffix}"

    def rank(self, problem: FairRankingProblem, seed: SeedLike = None) -> FairRankingResult:
        """Run DetConstSort over all items of the problem."""
        rng = as_generator(seed)
        groups = problem.require_groups()
        scores = problem.require_scores()
        n = problem.n_items
        g = groups.n_groups

        if self.target_proportions is not None:
            props = self.target_proportions
            if props.size != g:
                raise ValueError(
                    f"{props.size} target proportions for {g} groups"
                )
        else:
            props = groups.proportions

        # Per-group candidate queues in descending score order; ties broken
        # by base-ranking position so the walk respects the input ranking.
        base_pos = problem.base_ranking.positions
        queues: list[list[int]] = []
        for gi in range(g):
            members = np.flatnonzero(groups.indices == gi)
            members = members[np.lexsort((base_pos[members], -scores[members]))]
            queues.append(members.tolist())
        heads = [0] * g

        ranked: list[int] = []            # items in current partial ranking
        ranked_group: list[int] = []      # group of each placed item
        min_counts = np.zeros(g, dtype=np.float64)
        counts = np.zeros(g, dtype=np.int64)

        k = 0
        while len(ranked) < n:
            k += 1
            temp_min = np.floor(props * k + 1e-9)
            if self.noise_sigma > 0:
                temp_min = temp_min + rng.normal(0.0, self.noise_sigma, size=g)
            changed = [
                gi
                for gi in range(g)
                if temp_min[gi] > min_counts[gi] and heads[gi] < len(queues[gi])
            ]
            if changed:
                # Insert the due groups' next candidates, best score first.
                changed.sort(key=lambda gi: -scores[queues[gi][heads[gi]]])
                for gi in changed:
                    item = queues[gi][heads[gi]]
                    heads[gi] += 1
                    ranked.append(item)
                    ranked_group.append(gi)
                    counts[gi] += 1
                    self._bubble_up(ranked, ranked_group, scores, props)
            min_counts = np.maximum(min_counts, temp_min)
            if k > 4 * n + 10:
                # Safety net: with noisy targets some group may never come
                # due; fill remaining positions by score.
                self._fill_remaining(ranked, ranked_group, queues, heads, scores)
                break

        # Exhausted prefix walk may still leave items (e.g. degenerate
        # proportions); append them in score order.
        if len(ranked) < n:
            self._fill_remaining(ranked, ranked_group, queues, heads, scores)

        return FairRankingResult(
            ranking=Ranking(np.array(ranked, dtype=np.int64)),
            algorithm=self.name,
            metadata={"noise_sigma": self.noise_sigma, "prefix_walk_length": k},
        )

    @staticmethod
    def _bubble_up(
        ranked: list[int],
        ranked_group: list[int],
        scores: np.ndarray,
        props: np.ndarray,
    ) -> None:
        """Swap the just-appended item toward the top while its score beats
        its predecessor and the displaced item's group keeps its minimum
        count at the vacated prefix."""
        pos = len(ranked) - 1
        # Prefix counts of each group up to any position are implicit in
        # ranked_group; maintain a running count for the prefix ending just
        # above `pos`.
        while pos > 0:
            above_item = ranked[pos - 1]
            if scores[ranked[pos]] <= scores[above_item]:
                break
            above_group = ranked_group[pos - 1]
            # After the swap, `above_item` sits at index pos, so the prefix
            # of length `pos` (indices 0..pos-1) loses one member of its
            # group.  The swap is legal iff that prefix still meets the
            # group's minimum count ⌊p_g · pos⌋.
            count_in_prefix = sum(
                1 for t in range(pos) if ranked_group[t] == above_group
            )
            required = int(np.floor(props[above_group] * pos + 1e-9))
            if count_in_prefix - 1 < required:
                break
            ranked[pos - 1], ranked[pos] = ranked[pos], ranked[pos - 1]
            ranked_group[pos - 1], ranked_group[pos] = (
                ranked_group[pos],
                ranked_group[pos - 1],
            )
            pos -= 1

    @staticmethod
    def _fill_remaining(
        ranked: list[int],
        ranked_group: list[int],
        queues: list[list[int]],
        heads: list[int],
        scores: np.ndarray,
    ) -> None:
        """Append all still-unplaced items in descending score order."""
        rest: list[int] = []
        for gi, queue in enumerate(queues):
            rest.extend(queue[heads[gi] :])
            heads[gi] = len(queue)
        rest.sort(key=lambda item: -scores[item])
        for item in rest:
            ranked.append(item)
            ranked_group.append(-1)
