"""Fair-ranking algorithms: the paper's Mallows post-processing (Algorithm 1)
and the three attribute-aware baselines it is evaluated against, plus their
noisy-constraint variants."""

from repro.algorithms.base import FairRankingAlgorithm, FairRankingProblem, FairRankingResult
from repro.algorithms.criteria import (
    CompositeCriterion,
    MaxNdcgCriterion,
    MinInfeasibleIndexCriterion,
    MinKendallTauCriterion,
    SelectionCriterion,
)
from repro.algorithms.mallows_postprocess import MallowsFairRanking
from repro.algorithms.gmm_postprocess import GeneralizedMallowsFairRanking
from repro.algorithms.detconstsort import DetConstSort
from repro.algorithms.ipf import ApproxMultiValuedIPF
from repro.algorithms.binary_ipf import GrBinaryIPF
from repro.algorithms.ilp import IlpFairRanking
from repro.algorithms.dp import DpFairRanking
from repro.algorithms.noise import noisy_count_bounds
from repro.algorithms.tuning import tune_theta_for_infeasible_index, tune_theta_for_ndcg

__all__ = [
    "FairRankingAlgorithm",
    "FairRankingProblem",
    "FairRankingResult",
    "SelectionCriterion",
    "MaxNdcgCriterion",
    "MinKendallTauCriterion",
    "MinInfeasibleIndexCriterion",
    "CompositeCriterion",
    "MallowsFairRanking",
    "GeneralizedMallowsFairRanking",
    "DetConstSort",
    "ApproxMultiValuedIPF",
    "GrBinaryIPF",
    "IlpFairRanking",
    "DpFairRanking",
    "noisy_count_bounds",
    "tune_theta_for_ndcg",
    "tune_theta_for_infeasible_index",
]
