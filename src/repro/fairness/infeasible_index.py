"""The Two-Sided Infeasible Index and Percentage of P-Fair Positions
(Definitions 3 and 4 of the paper).

``LowerViol`` counts prefixes where some group falls below its floor,
``UpperViol`` counts prefixes where some group exceeds its ceiling, and the
Two-Sided Infeasible Index is their sum.  ``PPfair`` converts the index into
the percentage of positions that satisfy P-fairness.

Note that a single prefix can contribute to *both* a lower and an upper
violation (when one group is under-represented another is necessarily
over-represented if the bounds are tight), so ``TwoSidedInfInd`` can exceed
the ranking length; ``percent_fair_positions`` instead counts prefixes with
*any* violation, keeping the percentage within ``[0, 100]``.

These scalar entry points are thin single-row wrappers over the batched
kernels in :mod:`repro.batch.kernels`; experiment loops that score many
rankings should call those kernels directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.kernels import batch_infeasible_breakdown, batch_violation_masks
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking


@dataclass(frozen=True)
class InfeasibleIndexBreakdown:
    """Violation counts for one ranking.

    Attributes
    ----------
    lower:
        Prefixes where some group has fewer than ``⌊β_i ℓ⌋`` members.
    upper:
        Prefixes where some group has more than ``⌈α_i ℓ⌉`` members.
    either:
        Prefixes violating at least one side (``<= lower + upper``).
    n_positions:
        Ranking length (number of prefixes considered).
    """

    lower: int
    upper: int
    either: int
    n_positions: int

    @property
    def two_sided(self) -> int:
        """The paper's ``TwoSidedInfInd = LowerViol + UpperViol``."""
        return self.lower + self.upper

    @property
    def percent_fair(self) -> float:
        """Percentage of positions with no violation of either side."""
        if self.n_positions == 0:
            return 100.0
        return 100.0 * (1.0 - self.either / self.n_positions)


def _violation_masks(
    ranking: Ranking,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean per-prefix masks ``(lower_violated, upper_violated)``."""
    lo, up = batch_violation_masks(ranking.order[None, :], groups, constraints)
    return lo[0], up[0]


def infeasible_index_breakdown(
    ranking: Ranking,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> InfeasibleIndexBreakdown:
    """Full violation breakdown for ``ranking`` — a single-row call into
    :func:`repro.batch.kernels.batch_infeasible_breakdown`."""
    b = batch_infeasible_breakdown(ranking.order[None, :], groups, constraints)
    return InfeasibleIndexBreakdown(
        lower=int(b.lower[0]),
        upper=int(b.upper[0]),
        either=int(b.either[0]),
        n_positions=b.n_positions,
    )


def lower_violations(
    ranking: Ranking, groups: GroupAssignment, constraints: FairnessConstraints
) -> int:
    """``LowerViol(π)``: prefixes where some group is under its floor."""
    lo, _ = _violation_masks(ranking, groups, constraints)
    return int(lo.sum())


def upper_violations(
    ranking: Ranking, groups: GroupAssignment, constraints: FairnessConstraints
) -> int:
    """``UpperViol(π)``: prefixes where some group is over its ceiling."""
    _, up = _violation_masks(ranking, groups, constraints)
    return int(up.sum())


def infeasible_index(
    ranking: Ranking, groups: GroupAssignment, constraints: FairnessConstraints
) -> int:
    """Two-Sided Infeasible Index ``= LowerViol + UpperViol`` (Definition 3)."""
    return infeasible_index_breakdown(ranking, groups, constraints).two_sided


def percent_fair_positions(
    ranking: Ranking, groups: GroupAssignment, constraints: FairnessConstraints
) -> float:
    """``PPfair``: percentage of positions whose prefix satisfies P-fairness
    on both sides (Definition 4)."""
    return infeasible_index_breakdown(ranking, groups, constraints).percent_fair
