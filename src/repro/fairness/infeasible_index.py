"""The Two-Sided Infeasible Index and Percentage of P-Fair Positions
(Definitions 3 and 4 of the paper).

``LowerViol`` counts prefixes where some group falls below its floor,
``UpperViol`` counts prefixes where some group exceeds its ceiling, and the
Two-Sided Infeasible Index is their sum.  ``PPfair`` converts the index into
the percentage of positions that satisfy P-fairness.

Note that a single prefix can contribute to *both* a lower and an upper
violation (when one group is under-represented another is necessarily
over-represented if the bounds are tight), so ``TwoSidedInfInd`` can exceed
the ranking length; ``percent_fair_positions`` instead counts prefixes with
*any* violation, keeping the percentage within ``[0, 100]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fairness.checks import prefix_group_counts
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking


@dataclass(frozen=True)
class InfeasibleIndexBreakdown:
    """Violation counts for one ranking.

    Attributes
    ----------
    lower:
        Prefixes where some group has fewer than ``⌊β_i ℓ⌋`` members.
    upper:
        Prefixes where some group has more than ``⌈α_i ℓ⌉`` members.
    either:
        Prefixes violating at least one side (``<= lower + upper``).
    n_positions:
        Ranking length (number of prefixes considered).
    """

    lower: int
    upper: int
    either: int
    n_positions: int

    @property
    def two_sided(self) -> int:
        """The paper's ``TwoSidedInfInd = LowerViol + UpperViol``."""
        return self.lower + self.upper

    @property
    def percent_fair(self) -> float:
        """Percentage of positions with no violation of either side."""
        if self.n_positions == 0:
            return 100.0
        return 100.0 * (1.0 - self.either / self.n_positions)


def _violation_masks(
    ranking: Ranking,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean per-prefix masks ``(lower_violated, upper_violated)``."""
    n = len(ranking)
    counts = prefix_group_counts(ranking, groups)
    lower, upper = constraints.count_bounds_matrix(n)
    lower_violated = (counts < lower).any(axis=1)
    upper_violated = (counts > upper).any(axis=1)
    return lower_violated, upper_violated


def infeasible_index_breakdown(
    ranking: Ranking,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> InfeasibleIndexBreakdown:
    """Full violation breakdown for ``ranking``."""
    lo, up = _violation_masks(ranking, groups, constraints)
    return InfeasibleIndexBreakdown(
        lower=int(lo.sum()),
        upper=int(up.sum()),
        either=int((lo | up).sum()),
        n_positions=len(ranking),
    )


def lower_violations(
    ranking: Ranking, groups: GroupAssignment, constraints: FairnessConstraints
) -> int:
    """``LowerViol(π)``: prefixes where some group is under its floor."""
    lo, _ = _violation_masks(ranking, groups, constraints)
    return int(lo.sum())


def upper_violations(
    ranking: Ranking, groups: GroupAssignment, constraints: FairnessConstraints
) -> int:
    """``UpperViol(π)``: prefixes where some group is over its ceiling."""
    _, up = _violation_masks(ranking, groups, constraints)
    return int(up.sum())


def infeasible_index(
    ranking: Ranking, groups: GroupAssignment, constraints: FairnessConstraints
) -> int:
    """Two-Sided Infeasible Index ``= LowerViol + UpperViol`` (Definition 3)."""
    return infeasible_index_breakdown(ranking, groups, constraints).two_sided


def percent_fair_positions(
    ranking: Ranking, groups: GroupAssignment, constraints: FairnessConstraints
) -> float:
    """``PPfair``: percentage of positions whose prefix satisfies P-fairness
    on both sides (Definition 4)."""
    return infeasible_index_breakdown(ranking, groups, constraints).percent_fair
