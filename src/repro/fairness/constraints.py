"""Two-sided proportionate-fairness constraints.

Convention
----------
The paper's prose (Definitions 1–2, after Chakraborty et al.) and its
formulas (the ILP of Section IV-B and the Infeasible Index of Definition 3)
swap the roles of ``α`` and ``β``.  We follow the *formulas*, which are the
operative definitions in the evaluation:

* ``beta``  — per-group **lower** representation rate: a prefix of length
  ``ℓ`` must contain at least ``⌊β_i · ℓ⌋`` members of group ``i``;
* ``alpha`` — per-group **upper** representation rate: at most
  ``⌈α_i · ℓ⌉`` members.

With ``alpha = beta =`` the population proportions, the band
``[⌊p_i ℓ⌋, ⌈p_i ℓ⌉]`` is proportional representation up to rounding, which
is the setting of all the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import InvalidConstraintError
from repro.groups.attributes import GroupAssignment
from repro.groups.proportions import proportional_bounds


@dataclass(frozen=True)
class FairnessConstraints:
    """Two-sided prefix representation constraints for ``g`` groups.

    Attributes
    ----------
    alpha:
        Upper representation rates, ``shape (g,)``, values in ``[0, 1]``.
    beta:
        Lower representation rates, ``shape (g,)``, values in ``[0, 1]``.
    k:
        Prefix threshold: *strong* fairness constrains every prefix of
        length ``>= k``; *weak* fairness constrains only the length-``k``
        prefix.
    """

    alpha: np.ndarray
    beta: np.ndarray
    k: int

    def __post_init__(self) -> None:
        alpha = np.asarray(self.alpha, dtype=np.float64)
        beta = np.asarray(self.beta, dtype=np.float64)
        object.__setattr__(self, "alpha", alpha)
        object.__setattr__(self, "beta", beta)
        if alpha.ndim != 1 or beta.ndim != 1:
            raise InvalidConstraintError("alpha and beta must be 1-D vectors")
        if alpha.size != beta.size:
            raise InvalidConstraintError(
                f"alpha has {alpha.size} groups but beta has {beta.size}"
            )
        if alpha.size == 0:
            raise InvalidConstraintError("need at least one group")
        if np.any(alpha < 0) or np.any(alpha > 1) or np.any(beta < 0) or np.any(beta > 1):
            raise InvalidConstraintError("alpha and beta rates must lie in [0, 1]")
        if np.any(beta > alpha):
            raise InvalidConstraintError(
                "each lower rate beta_i must not exceed the upper rate alpha_i"
            )
        if self.k < 1:
            raise InvalidConstraintError(f"k must be >= 1, got {self.k}")
        alpha.setflags(write=False)
        beta.setflags(write=False)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def proportional(cls, groups: GroupAssignment, k: int = 1) -> "FairnessConstraints":
        """Constraints with ``alpha = beta =`` the group proportions of
        ``groups`` (the paper's experimental setting)."""
        alpha, beta = proportional_bounds(groups)
        return cls(alpha=alpha, beta=beta, k=k)

    @classmethod
    def from_rates(
        cls,
        alpha: Sequence[float],
        beta: Sequence[float],
        k: int = 1,
    ) -> "FairnessConstraints":
        """Constraints from explicit rate vectors."""
        return cls(
            alpha=np.asarray(alpha, dtype=np.float64),
            beta=np.asarray(beta, dtype=np.float64),
            k=k,
        )

    # -- integer bounds ----------------------------------------------------------

    @property
    def n_groups(self) -> int:
        """Number of groups ``g``."""
        return int(self.alpha.size)

    def lower_counts(self, length: int) -> np.ndarray:
        """Minimum members of each group in a prefix of ``length``:
        ``⌊β_i · ℓ⌋``."""
        return np.floor(self.beta * length + 1e-9).astype(np.int64)

    def upper_counts(self, length: int) -> np.ndarray:
        """Maximum members of each group in a prefix of ``length``:
        ``⌈α_i · ℓ⌉``."""
        return np.ceil(self.alpha * length - 1e-9).astype(np.int64)

    def count_bounds_matrix(self, max_length: int) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper count matrices for all prefix lengths ``1..max_length``;
        each has ``shape (max_length, g)``, row ``ℓ-1`` for prefix length ``ℓ``."""
        lengths = np.arange(1, max_length + 1, dtype=np.float64)[:, None]
        lower = np.floor(self.beta[None, :] * lengths + 1e-9).astype(np.int64)
        upper = np.ceil(self.alpha[None, :] * lengths - 1e-9).astype(np.int64)
        return lower, upper

    def with_k(self, k: int) -> "FairnessConstraints":
        """Same rates with a different prefix threshold ``k``."""
        return FairnessConstraints(alpha=self.alpha.copy(), beta=self.beta.copy(), k=k)

    def __repr__(self) -> str:
        return (
            f"FairnessConstraints(alpha={np.round(self.alpha, 4).tolist()}, "
            f"beta={np.round(self.beta, 4).tolist()}, k={self.k})"
        )
