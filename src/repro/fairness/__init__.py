"""P-fairness layer: constraints, checks, Infeasible Index, construction."""

from repro.fairness.constraints import FairnessConstraints
from repro.fairness.checks import is_fair, is_weakly_fair, prefix_group_counts
from repro.fairness.infeasible_index import (
    InfeasibleIndexBreakdown,
    infeasible_index,
    infeasible_index_breakdown,
    lower_violations,
    percent_fair_positions,
    upper_violations,
)
from repro.fairness.construction import weakly_fair_ranking
from repro.fairness.exposure import (
    DisparateTreatmentResult,
    disparate_treatment,
    exposure_parity_gap,
    exposure_parity_ratio,
    group_exposures,
)

__all__ = [
    "DisparateTreatmentResult",
    "disparate_treatment",
    "exposure_parity_gap",
    "exposure_parity_ratio",
    "group_exposures",
    "FairnessConstraints",
    "is_fair",
    "is_weakly_fair",
    "prefix_group_counts",
    "InfeasibleIndexBreakdown",
    "infeasible_index",
    "infeasible_index_breakdown",
    "lower_violations",
    "upper_violations",
    "percent_fair_positions",
    "weakly_fair_ranking",
]
