"""Exposure-based group fairness metrics.

P-fairness counts heads; exposure-based fairness weighs *where* those heads
sit: an item at position ``j`` receives exposure ``1/log(1+j)`` (the DCG
discount), and a group's exposure is the average over its members.  Two
standard disparity notions are provided:

* **Demographic parity of exposure** — each group's mean exposure should be
  equal (exposure independent of group membership);
* **Disparate treatment** — each group's mean exposure should be
  proportional to its mean relevance (exposure earned by merit, equally
  exchanged across groups).

These complement the paper's Infeasible Index in the robustness evaluation:
a ranking can be P-fair by counts yet concentrate one group at the bottom
of every feasible band, which exposure disparity detects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.rankings.quality import exposure
from repro.utils.validation import check_same_length


def group_exposures(
    ranking: Ranking, groups: GroupAssignment, k: int | None = None
) -> np.ndarray:
    """Mean exposure of each group's members, ``shape (g,)``.

    Groups with no members get exposure 0 (they cannot be exposed at all).
    """
    check_same_length(ranking.order, groups.indices, "ranking and groups")
    item_exposure = exposure(ranking, k=k)
    g = groups.n_groups
    totals = np.zeros(g, dtype=np.float64)
    np.add.at(totals, groups.indices, item_exposure)
    sizes = groups.group_sizes
    out = np.zeros(g, dtype=np.float64)
    nonempty = sizes > 0
    out[nonempty] = totals[nonempty] / sizes[nonempty]
    return out


def exposure_parity_gap(
    ranking: Ranking, groups: GroupAssignment, k: int | None = None
) -> float:
    """Demographic-parity gap: ``max_g E_g − min_g E_g`` over the mean
    exposures of non-empty groups.  0 means perfectly equal exposure."""
    exposures = group_exposures(ranking, groups, k=k)
    nonempty = groups.group_sizes > 0
    values = exposures[nonempty]
    if values.size <= 1:
        return 0.0
    return float(values.max() - values.min())


def exposure_parity_ratio(
    ranking: Ranking, groups: GroupAssignment, k: int | None = None
) -> float:
    """Min/max ratio of mean group exposures in ``[0, 1]``; 1 is parity.

    Defined as 1.0 when fewer than two groups have members, and 0.0 when
    some non-empty group receives zero exposure while another does not.
    """
    exposures = group_exposures(ranking, groups, k=k)
    nonempty = groups.group_sizes > 0
    values = exposures[nonempty]
    if values.size <= 1:
        return 1.0
    top = float(values.max())
    if top == 0.0:
        return 1.0
    return float(values.min() / top)


@dataclass(frozen=True)
class DisparateTreatmentResult:
    """Exposure-to-relevance ratios per group and their disparity.

    Attributes
    ----------
    exposure_per_relevance:
        ``E_g / U_g`` per group (NaN for empty or zero-relevance groups).
    ratio:
        Min/max of the finite per-group ratios; 1 means exposure is
        exchanged at the same rate for every group.
    """

    exposure_per_relevance: np.ndarray
    ratio: float


def disparate_treatment(
    ranking: Ranking,
    groups: GroupAssignment,
    relevance: Sequence[float],
    k: int | None = None,
) -> DisparateTreatmentResult:
    """Disparate-treatment analysis: exposure proportional to relevance.

    Parameters
    ----------
    relevance:
        Non-negative per-item relevance (e.g. the ranking scores).
    """
    rel = np.asarray(relevance, dtype=np.float64)
    check_same_length(rel, groups.indices, "relevance and groups")
    if np.any(rel < 0):
        raise ValueError("relevance must be non-negative")
    exposures = group_exposures(ranking, groups, k=k)

    g = groups.n_groups
    mean_rel = np.zeros(g, dtype=np.float64)
    totals = np.zeros(g, dtype=np.float64)
    np.add.at(totals, groups.indices, rel)
    sizes = groups.group_sizes
    nonempty = sizes > 0
    mean_rel[nonempty] = totals[nonempty] / sizes[nonempty]

    ratios = np.full(g, np.nan)
    valid = nonempty & (mean_rel > 0)
    ratios[valid] = exposures[valid] / mean_rel[valid]

    finite = ratios[np.isfinite(ratios)]
    if finite.size <= 1 or finite.max() == 0.0:
        overall = 1.0
    else:
        overall = float(finite.min() / finite.max())
    return DisparateTreatmentResult(exposure_per_relevance=ratios, ratio=overall)


def expected_exposure_under_mallows(
    center: Ranking,
    theta: float,
    groups: GroupAssignment,
    m: int = 500,
    k: int | None = None,
    seed=None,
) -> np.ndarray:
    """Monte-Carlo mean group exposure under Mallows randomization.

    Quantifies how much exposure the noise redistributes between groups —
    the exposure-level counterpart of the paper's Infeasible Index plots.

    Raises
    ------
    ValueError
        If ``m < 1`` — an empty Monte-Carlo average is undefined (the old
        behaviour silently returned all-zero exposures).
    """
    from repro.batch.kernels import batch_group_exposures
    from repro.mallows.sampling import sample_mallows_batch

    if m < 1:
        raise ValueError(f"sample count m must be >= 1, got {m}")
    orders = sample_mallows_batch(center, theta, m, seed=seed)
    per_row = batch_group_exposures(orders, groups, k=k)
    return per_row.sum(axis=0) / m
