"""P-fairness predicates (Definitions 1 and 2 of the paper).

Both checks reduce to comparing prefix group-count matrices against the
integer bounds of a :class:`~repro.fairness.constraints.FairnessConstraints`,
so the shared :func:`prefix_group_counts` is the workhorse.
"""

from __future__ import annotations

import numpy as np

from repro.batch.cache import active_cache
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.utils.validation import check_same_length


def prefix_group_counts(ranking: Ranking, groups: GroupAssignment) -> np.ndarray:
    """Cumulative group counts per prefix.

    Returns ``counts`` of ``shape (n, g)`` where ``counts[ℓ-1, i]`` is the
    number of members of group ``i`` among the top ``ℓ`` positions.
    """
    check_same_length(ranking.order, groups.indices, "ranking and group assignment")
    n, g = len(ranking), groups.n_groups
    one_hot = np.zeros((n, g), dtype=np.int64)
    one_hot[np.arange(n), groups.indices[ranking.order]] = 1
    return one_hot.cumsum(axis=0)


def is_fair(
    ranking: Ranking,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> bool:
    """Strong (α, β)-k fairness: every prefix of length ``>= k`` keeps every
    group's count within ``[⌊β_i ℓ⌋, ⌈α_i ℓ⌉]`` (Definition 1)."""
    n = len(ranking)
    if constraints.k > n:
        return True
    counts = prefix_group_counts(ranking, groups)
    lower, upper = active_cache().count_bounds(constraints, n)
    rows = slice(constraints.k - 1, n)
    ok_lower = counts[rows] >= lower[rows]
    ok_upper = counts[rows] <= upper[rows]
    return bool(ok_lower.all() and ok_upper.all())


def is_weakly_fair(
    ranking: Ranking,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> bool:
    """Weak (α, β)-k fairness: only the length-``k`` prefix is constrained
    (Definition 2)."""
    n = len(ranking)
    if constraints.k > n:
        return True
    counts = prefix_group_counts(ranking, groups)[constraints.k - 1]
    lower = constraints.lower_counts(constraints.k)
    upper = constraints.upper_counts(constraints.k)
    return bool((counts >= lower).all() and (counts <= upper).all())
