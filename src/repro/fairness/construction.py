"""Greedy construction of (weakly) p-fair rankings.

The paper's German Credit experiment feeds every algorithm "a weakly-p-fair
ranking of candidates ordered by their descending score".
:func:`weakly_fair_ranking` builds such a ranking greedily: walk positions
top-down and place the highest-scored item whose group keeps the schedule
*feasible*.

Feasibility is more subtle than "no bound violated right now": two groups'
floors may rise at the same future prefix, so the greedy verifies a Hall-type
condition before each placement — for every future horizon ``h``,

* the total outstanding floor demand at ``h`` fits in the remaining slots,
  and
* the upper bounds at ``h`` leave enough *capacity* to fill all slots.

Within each group the ``t``-th placement's floor deadline and upper-bound
release are monotone in ``t``, so the per-horizon conditions are sufficient
(Hall's theorem for interval bipartite graphs) and the greedy never dead-ends
on a feasible instance.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.batch.cache import active_cache
from repro.exceptions import InfeasibleProblemError
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.utils.validation import check_same_length


def weakly_fair_ranking(
    scores: Sequence[float],
    groups: GroupAssignment,
    constraints: FairnessConstraints | None = None,
    strong: bool = True,
) -> Ranking:
    """Greedy score-descending ranking respecting prefix representation bounds.

    Parameters
    ----------
    scores:
        Relevance score per item; higher is better.
    groups:
        Protected-group assignment of the items.
    constraints:
        Two-sided bounds; defaults to proportional bounds from ``groups``.
    strong:
        When ``True`` (default) every prefix is kept within bounds
        (feasibility-checked, exact); when ``False`` the bounds are treated
        as soft — the greedy prefers feasible placements but falls back to
        the best-scored available item instead of raising.

    Raises
    ------
    InfeasibleProblemError
        In strong mode, if no ranking can satisfy every prefix bound.
    """
    s = np.asarray(scores, dtype=np.float64)
    check_same_length(s, groups.indices, "scores and group assignment")
    n = s.size
    g = groups.n_groups

    if constraints is None:
        constraints = FairnessConstraints.proportional(groups)

    # Per-group queues of items in descending score order.
    queues: list[np.ndarray] = []
    for gi in range(g):
        members = np.flatnonzero(groups.indices == gi)
        queues.append(members[np.argsort(-s[members], kind="stable")])
    heads = np.zeros(g, dtype=np.int64)
    sizes = np.array([q.size for q in queues], dtype=np.int64)

    lower_m, upper_m = active_cache().count_bounds(constraints, n)
    # Floors can never exceed what the groups can supply; demanding more
    # items than a group has is infeasible outright (strong mode).
    if strong and np.any(lower_m > sizes[None, :]):
        raise InfeasibleProblemError(
            "a prefix floor demands more items than its group contains"
        )

    counts = np.zeros(g, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    horizons = np.arange(1, n + 1, dtype=np.int64)

    for pos in range(n):
        length = pos + 1
        candidates = _feasible_groups(
            counts, heads, sizes, lower_m, upper_m, horizons, length, n
        )
        if not candidates:
            if strong:
                raise InfeasibleProblemError(
                    f"no feasible group for position {length}; "
                    "constraints are infeasible"
                )
            # Soft mode: any group under its upper bound, else any group.
            candidates = [
                gi
                for gi in range(g)
                if heads[gi] < sizes[gi]
                and counts[gi] + 1 <= upper_m[length - 1, gi]
            ]
            if not candidates:
                candidates = [gi for gi in range(g) if heads[gi] < sizes[gi]]
            if not candidates:
                raise InfeasibleProblemError("ran out of items")

        best_group = max(candidates, key=lambda gi: s[queues[gi][heads[gi]]])
        order[pos] = queues[best_group][heads[best_group]]
        heads[best_group] += 1
        counts[best_group] += 1

    return Ranking(order)


def _feasible_groups(
    counts: np.ndarray,
    heads: np.ndarray,
    sizes: np.ndarray,
    lower_m: np.ndarray,
    upper_m: np.ndarray,
    horizons: np.ndarray,
    length: int,
    n: int,
) -> list[int]:
    """Groups whose placement at prefix ``length`` keeps the schedule feasible.

    A group ``gi`` qualifies iff after incrementing its count:

    * the bounds at the current prefix hold, and
    * for every horizon ``h >= length``: outstanding floor demand
      ``Σ_g max(0, lower[h] − counts)`` fits in ``h − length`` slots, and the
      remaining capacity ``Σ_g min(remaining_g, upper[h] − counts)`` can fill
      them.
    """
    g = counts.size
    feasible: list[int] = []
    future = slice(length - 1, n)
    slots_after = horizons[future] - length  # 0 at the current prefix
    for gi in range(g):
        if heads[gi] >= sizes[gi]:
            continue
        trial = counts.copy()
        trial[gi] += 1
        if trial[gi] > upper_m[length - 1, gi]:
            continue
        if np.any(trial < lower_m[length - 1]):
            continue
        remaining = sizes - trial
        demand = np.maximum(lower_m[future] - trial[None, :], 0).sum(axis=1)
        if np.any(demand > slots_after):
            continue
        capacity = np.minimum(
            np.maximum(upper_m[future] - trial[None, :], 0),
            remaining[None, :],
        ).sum(axis=1)
        if np.any(capacity < slots_after):
            continue
        feasible.append(gi)
    return feasible
