"""Statistical fairness guarantees for Mallows randomization.

The paper argues qualitatively that Mallows noise yields approximate
P-fairness against any sufficiently large group.  This module makes the
claim quantitative and checkable:

* :func:`estimate_fairness_probability` — Monte-Carlo estimate (with a
  Clopper–Pearson-style exact CI via the Beta quantiles) of the probability
  that a Mallows sample meets a fairness predicate;
* :func:`infeasible_index_tail_bound` — a distribution-free Markov tail
  bound on the sample's Infeasible Index from its exact expectation
  (computable by Monte Carlo);
* :func:`sample_budget_for_confidence` — how many samples ``m`` Algorithm 1
  needs so that, with probability ``1 − δ``, at least one sample satisfies
  the predicate (the best-of-m amplification the paper exploits with
  ``m = 15``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats

from repro.batch import batch_infeasible_index
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.mallows.sampling import sample_mallows_batch
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator

Predicate = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ProbabilityEstimate:
    """Monte-Carlo probability with an exact binomial confidence interval.

    Attributes
    ----------
    estimate:
        Empirical success fraction.
    low, high:
        Clopper–Pearson interval endpoints at the given confidence.
    n_samples:
        Monte-Carlo sample count.
    confidence:
        Nominal two-sided coverage.
    """

    estimate: float
    low: float
    high: float
    n_samples: int
    confidence: float


def _clopper_pearson(successes: int, n: int, confidence: float) -> tuple[float, float]:
    """Exact binomial CI via Beta quantiles."""
    alpha = 1.0 - confidence
    low = 0.0 if successes == 0 else float(
        stats.beta.ppf(alpha / 2, successes, n - successes + 1)
    )
    high = 1.0 if successes == n else float(
        stats.beta.ppf(1 - alpha / 2, successes + 1, n - successes)
    )
    return low, high


def estimate_fairness_probability(
    center: Ranking,
    theta: float,
    groups: GroupAssignment,
    constraints: FairnessConstraints | None = None,
    max_infeasible_index: int = 0,
    m: int = 2000,
    confidence: float = 0.95,
    seed: SeedLike = None,
) -> ProbabilityEstimate:
    """P[ II(sample) <= max_infeasible_index ] under ``M(center, θ)``.

    ``max_infeasible_index = 0`` is the probability of exact two-sided
    P-fairness at every prefix.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = as_generator(seed)
    if constraints is None:
        constraints = FairnessConstraints.proportional(groups)
    orders = sample_mallows_batch(center, theta, m, seed=rng)
    iis = batch_infeasible_index(orders, groups, constraints)
    successes = int((iis <= max_infeasible_index).sum())
    low, high = _clopper_pearson(successes, m, confidence)
    return ProbabilityEstimate(
        estimate=successes / m,
        low=low,
        high=high,
        n_samples=m,
        confidence=confidence,
    )


def expected_infeasible_index(
    center: Ranking,
    theta: float,
    groups: GroupAssignment,
    constraints: FairnessConstraints | None = None,
    m: int = 2000,
    seed: SeedLike = None,
) -> float:
    """Monte-Carlo ``E[II(sample)]`` under ``M(center, θ)``."""
    rng = as_generator(seed)
    if constraints is None:
        constraints = FairnessConstraints.proportional(groups)
    orders = sample_mallows_batch(center, theta, m, seed=rng)
    return float(batch_infeasible_index(orders, groups, constraints).mean())


def infeasible_index_tail_bound(expected_ii: float, threshold: float) -> float:
    """Markov bound ``P[II >= threshold] <= E[II] / threshold``.

    Distribution-free: it holds for any randomization whose expected II is
    ``expected_ii``.  Clipped to 1.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if expected_ii < 0:
        raise ValueError(f"expected_ii must be non-negative, got {expected_ii}")
    return min(1.0, expected_ii / threshold)


def sample_budget_for_confidence(per_sample_probability: float, delta: float) -> int:
    """Smallest ``m`` with ``1 − (1 − p)^m >= 1 − δ``.

    The best-of-m amplification of Algorithm 1: if each Mallows sample
    satisfies the fairness predicate with probability ``p``, drawing
    ``m = ⌈ln δ / ln(1 − p)⌉`` samples guarantees one success with
    probability ``1 − δ``.
    """
    if not 0.0 < per_sample_probability <= 1.0:
        raise ValueError(
            f"per-sample probability must be in (0, 1], got {per_sample_probability}"
        )
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if per_sample_probability == 1.0:
        return 1
    return max(1, math.ceil(math.log(delta) / math.log(1.0 - per_sample_probability)))
