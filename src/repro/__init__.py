"""repro — reproduction of "Fairness in Ranking: Robustness through
Randomization without the Protected Attribute" (Kliachkin, Psaroudaki,
Mareček, Fotakis; ICDE 2024).

Quickstart
----------
Serving goes through a :class:`~repro.engine.RankingEngine` session: it
owns the worker pool, the kernel caches and the decode configuration for
its lifetime, and names every algorithm in the zoo by a registry key
(``"mallows"``, ``"gmm"``, ``"detconstsort"``, ``"ipf"``, ``"binary-ipf"``,
``"ilp"``, ``"dp"``):

>>> import numpy as np
>>> from repro import FairRankingProblem, GroupAssignment, RankingEngine
>>> scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
>>> groups = GroupAssignment(["a", "a", "a", "b", "b", "b"])
>>> problem = FairRankingProblem.from_scores(scores, groups)
>>> engine = RankingEngine(n_jobs=1)
>>> response = engine.rank("mallows", problem, seed=0, theta=1.0, n_samples=15)
>>> len(response.ranking)
6

Batches stream: :meth:`~repro.engine.RankingEngine.rank_many` flattens
heterogeneous requests onto the shared scheduler and yields responses
**as-completed**, byte-identical to the serial loop for every ``n_jobs``:

>>> from repro import RankingRequest
>>> requests = [
...     RankingRequest("mallows", problem, params={"theta": 1.0}),
...     ("dp", problem),
... ]
>>> responses = sorted(engine.rank_many(requests, seed=7), key=lambda r: r.index)
>>> [r.algorithm for r in responses]
['mallows', 'dp']

(The one-algorithm class constructors — ``MallowsFairRanking(...)`` and
friends — still work but are deprecated in favour of the engine registry;
they produce byte-identical rankings.)

Concurrent clients go through the async tier in :mod:`repro.serve`:
``AsyncRankingServer`` fronts one engine session, coalesces single
``rank`` awaits landing inside a micro-batching window into one
``rank_many`` dispatch, and prices admission with the session's learned
per-kind cost model (queueing and then shedding load with a structured
``ServerOverloaded`` once the in-flight budget is spent).  Responses stay
byte-identical to the serial loop over the same submissions — see
``examples/serving_async.py`` and the ``repro serve`` / ``repro
bench-client`` CLI commands.

Remote clients reach the same tier over plain HTTP/1.1 + JSON through
:mod:`repro.net` — a stdlib-only wire frontend (``HttpRankingServer`` /
``AsyncHttpClient``) whose request schemas carry pinned seeds so served
digests stay byte-identical across the network too.  See
``examples/serving_http.py`` and ``repro serve --http HOST:PORT`` /
``repro bench-client --http URL``.

Pooled scheduling is fault tolerant (:mod:`repro.faults`): a worker
death mid-run is recovered by rebuilding the pool and resubmitting the
unserved units with their *original* seeds under a bounded
``RetryPolicy`` — recovery never changes a digest, only wall-time.
When the budget is exhausted a batch run degrades to inline execution,
while the serving tier raises ``PoolRecoveryExhausted`` and trips a
circuit breaker (shed with Retry-After, probe, re-admit).  The
deterministic chaos harness drives it all in tests and CI::

    from repro.faults import inject_faults, parse_fault_specs
    with inject_faults(parse_fault_specs("*:0:exit")):
        reports = run_all(fast=True, n_jobs=2)  # byte-equal to serial

These contracts are machine-checked: ``repro lint src/``
(:mod:`repro.analysis`, a stdlib-``ast`` linter) statically enforces the
determinism, sans-IO, and cache-discipline invariants — seeded RNG entry
points, clock-free serving core, registry-only construction,
order-stable digest inputs — and CI fails on any unsuppressed finding
(see the README's "Invariants & lint rules").

The package layers:

* :mod:`repro.rankings` — permutations, rank distances, NDCG;
* :mod:`repro.engine` — the serving facade: the algorithm registry,
  session-owned pools/caches, streaming batch ranking, measured-cost
  scheduling;
* :mod:`repro.serve` — the async serving tier over one engine session:
  coalescing micro-batches, cost-priced admission control, per-request
  deadlines/cancellation, the health circuit breaker, and the synthetic
  load generator;
* :mod:`repro.net` — the stdlib HTTP/JSON wire frontend over the
  serving tier: sans-IO HTTP/1.1 protocol core, versioned wire schemas,
  the asyncio listener shell, and the keep-alive client;
* :mod:`repro.faults` — fault-tolerant scheduling: supervised pool
  recovery under bounded retries, fault/rebuild telemetry, and the
  deterministic fault-injection harness;
* :mod:`repro.batch` — the batched evaluation engine: ``(m, n)`` ranking
  batches, vectorized distance/fairness kernels, the process-pool fan-out
  and the work-unit scheduler underneath the serving facade;
* :mod:`repro.groups` / :mod:`repro.fairness` — protected attributes,
  two-sided P-fairness, the Infeasible Index;
* :mod:`repro.mallows` — the Mallows model, exact sampling, learning;
* :mod:`repro.algorithms` — the paper's Mallows post-processor and the
  DetConstSort / ApproxMultiValuedIPF / ILP baselines (+ noisy variants);
* :mod:`repro.aggregation` — fair rank-aggregation pipeline;
* :mod:`repro.datasets` — German Credit and the synthetic workloads;
* :mod:`repro.experiments` — the harness regenerating every figure/table.
"""

from repro.rankings import (
    Ranking,
    identity,
    random_ranking,
    kendall_tau_distance,
    kendall_tau_coefficient,
    spearman_distance,
    footrule_distance,
    ulam_distance,
    dcg,
    idcg,
    ndcg,
    rank_by_score,
)
from repro.batch import (
    BatchRankings,
    batch_infeasible_index,
    batch_kendall_tau,
    batch_ndcg,
    batch_percent_fair,
    mallows_sample_and_score,
)
from repro.groups import GroupAssignment, combine_attributes
from repro.fairness import (
    FairnessConstraints,
    infeasible_index,
    infeasible_index_breakdown,
    is_fair,
    is_weakly_fair,
    percent_fair_positions,
    weakly_fair_ranking,
)
from repro.mallows import (
    MallowsModel,
    sample_mallows,
    sample_mallows_batch,
    expected_kendall_tau,
    fit_mallows,
)
from repro.algorithms import (
    FairRankingAlgorithm,
    FairRankingProblem,
    FairRankingResult,
    MallowsFairRanking,
    GeneralizedMallowsFairRanking,
    DetConstSort,
    ApproxMultiValuedIPF,
    GrBinaryIPF,
    IlpFairRanking,
    DpFairRanking,
    MaxNdcgCriterion,
    MinKendallTauCriterion,
    MinInfeasibleIndexCriterion,
    CompositeCriterion,
)
from repro.aggregation import FairAggregationPipeline
from repro.datasets import (
    load_german_credit,
    synthesize_german_credit,
    two_group_shifted_scores,
)
from repro.engine import (
    EngineConfig,
    RankingEngine,
    RankingRequest,
    RankingResponse,
    algorithm_names,
    make_algorithm,
    register_algorithm,
)

__version__ = "1.0.0"

__all__ = [
    "Ranking",
    "identity",
    "random_ranking",
    "kendall_tau_distance",
    "kendall_tau_coefficient",
    "spearman_distance",
    "footrule_distance",
    "ulam_distance",
    "dcg",
    "idcg",
    "ndcg",
    "rank_by_score",
    "BatchRankings",
    "batch_infeasible_index",
    "batch_kendall_tau",
    "batch_ndcg",
    "batch_percent_fair",
    "mallows_sample_and_score",
    "GroupAssignment",
    "combine_attributes",
    "FairnessConstraints",
    "infeasible_index",
    "infeasible_index_breakdown",
    "is_fair",
    "is_weakly_fair",
    "percent_fair_positions",
    "weakly_fair_ranking",
    "MallowsModel",
    "sample_mallows",
    "sample_mallows_batch",
    "expected_kendall_tau",
    "fit_mallows",
    "FairRankingAlgorithm",
    "FairRankingProblem",
    "FairRankingResult",
    "MallowsFairRanking",
    "GeneralizedMallowsFairRanking",
    "DetConstSort",
    "ApproxMultiValuedIPF",
    "GrBinaryIPF",
    "IlpFairRanking",
    "DpFairRanking",
    "MaxNdcgCriterion",
    "MinKendallTauCriterion",
    "MinInfeasibleIndexCriterion",
    "CompositeCriterion",
    "FairAggregationPipeline",
    "EngineConfig",
    "RankingEngine",
    "RankingRequest",
    "RankingResponse",
    "algorithm_names",
    "make_algorithm",
    "register_algorithm",
    "load_german_credit",
    "synthesize_german_credit",
    "two_group_shifted_scores",
    "__version__",
]
