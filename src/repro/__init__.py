"""repro — reproduction of "Fairness in Ranking: Robustness through
Randomization without the Protected Attribute" (Kliachkin, Psaroudaki,
Mareček, Fotakis; ICDE 2024).

Quickstart
----------
>>> import numpy as np
>>> from repro import (FairRankingProblem, MallowsFairRanking,
...                    GroupAssignment, FairnessConstraints)
>>> scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
>>> groups = GroupAssignment(["a", "a", "a", "b", "b", "b"])
>>> problem = FairRankingProblem.from_scores(scores, groups)
>>> result = MallowsFairRanking(theta=1.0, n_samples=15).rank(problem, seed=0)
>>> len(result.ranking)
6

The package layers:

* :mod:`repro.rankings` — permutations, rank distances, NDCG;
* :mod:`repro.batch` — the batched evaluation engine: ``(m, n)`` ranking
  batches and vectorized distance/fairness kernels behind the experiments;
* :mod:`repro.groups` / :mod:`repro.fairness` — protected attributes,
  two-sided P-fairness, the Infeasible Index;
* :mod:`repro.mallows` — the Mallows model, exact sampling, learning;
* :mod:`repro.algorithms` — the paper's Mallows post-processor and the
  DetConstSort / ApproxMultiValuedIPF / ILP baselines (+ noisy variants);
* :mod:`repro.aggregation` — fair rank-aggregation pipeline;
* :mod:`repro.datasets` — German Credit and the synthetic workloads;
* :mod:`repro.experiments` — the harness regenerating every figure/table.
"""

from repro.rankings import (
    Ranking,
    identity,
    random_ranking,
    kendall_tau_distance,
    kendall_tau_coefficient,
    spearman_distance,
    footrule_distance,
    ulam_distance,
    dcg,
    idcg,
    ndcg,
    rank_by_score,
)
from repro.batch import (
    BatchRankings,
    batch_infeasible_index,
    batch_kendall_tau,
    batch_ndcg,
    batch_percent_fair,
    mallows_sample_and_score,
)
from repro.groups import GroupAssignment, combine_attributes
from repro.fairness import (
    FairnessConstraints,
    infeasible_index,
    infeasible_index_breakdown,
    is_fair,
    is_weakly_fair,
    percent_fair_positions,
    weakly_fair_ranking,
)
from repro.mallows import (
    MallowsModel,
    sample_mallows,
    sample_mallows_batch,
    expected_kendall_tau,
    fit_mallows,
)
from repro.algorithms import (
    FairRankingAlgorithm,
    FairRankingProblem,
    FairRankingResult,
    MallowsFairRanking,
    GeneralizedMallowsFairRanking,
    DetConstSort,
    ApproxMultiValuedIPF,
    GrBinaryIPF,
    IlpFairRanking,
    DpFairRanking,
    MaxNdcgCriterion,
    MinKendallTauCriterion,
    MinInfeasibleIndexCriterion,
    CompositeCriterion,
)
from repro.aggregation import FairAggregationPipeline
from repro.datasets import (
    load_german_credit,
    synthesize_german_credit,
    two_group_shifted_scores,
)

__version__ = "1.0.0"

__all__ = [
    "Ranking",
    "identity",
    "random_ranking",
    "kendall_tau_distance",
    "kendall_tau_coefficient",
    "spearman_distance",
    "footrule_distance",
    "ulam_distance",
    "dcg",
    "idcg",
    "ndcg",
    "rank_by_score",
    "BatchRankings",
    "batch_infeasible_index",
    "batch_kendall_tau",
    "batch_ndcg",
    "batch_percent_fair",
    "mallows_sample_and_score",
    "GroupAssignment",
    "combine_attributes",
    "FairnessConstraints",
    "infeasible_index",
    "infeasible_index_breakdown",
    "is_fair",
    "is_weakly_fair",
    "percent_fair_positions",
    "weakly_fair_ranking",
    "MallowsModel",
    "sample_mallows",
    "sample_mallows_batch",
    "expected_kendall_tau",
    "fit_mallows",
    "FairRankingAlgorithm",
    "FairRankingProblem",
    "FairRankingResult",
    "MallowsFairRanking",
    "GeneralizedMallowsFairRanking",
    "DetConstSort",
    "ApproxMultiValuedIPF",
    "GrBinaryIPF",
    "IlpFairRanking",
    "DpFairRanking",
    "MaxNdcgCriterion",
    "MinKendallTauCriterion",
    "MinInfeasibleIndexCriterion",
    "CompositeCriterion",
    "FairAggregationPipeline",
    "load_german_credit",
    "synthesize_german_credit",
    "two_group_shifted_scores",
    "__version__",
]
