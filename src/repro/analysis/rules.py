"""The repository's REP rules — its invariants, executable.

Each rule enforces one contract the earlier layers rely on but could not,
until now, *check*:

* **REP001** — byte-identical results for every ``n_jobs`` require that
  randomness flows through the per-unit ``SeedSequence`` tree; a global
  RNG construction mid-computation forks an unaccounted stream.
* **REP002** — the sans-IO serving core and the digest-feeding compute
  modules must be pure functions of their inputs; a wall-clock read is
  either a bug or a timing-only measurement that must justify itself.
* **REP003** — ``async def`` bodies in the serving tier must never block
  the event loop: no sleeps, no sync IO, no inline engine compute (that
  is what the executor hop is for).
* **REP004** — kernel call sites reach memoization through
  ``active_cache()`` so engine sessions can scope it; constructing
  ``KernelCache`` (or mutating ``DEFAULT_CACHE``) elsewhere silently
  splits the cache a session thinks it owns.
* **REP005** — algorithms are constructed through the registry
  (``make_algorithm``); direct legacy-constructor calls bypass the
  deprecation shims and the engine's session accounting.
* **REP006** — anything that feeds ``reports_digest``/``responses_digest``
  must iterate deterministically; sets (and, as a discipline, dict views)
  iterate in hash/insertion order the reader cannot verify locally —
  wrap them in ``sorted(...)``.
* **REP007** — exceptions in worker-executed code must surface: a bare
  ``except:`` (or a swallowed handler) turns a poisoned work unit into a
  silent wrong answer or a hung waiter.
* **REP008** — retries in worker-dispatch and serving code must be
  bounded: a ``while True`` whose exception handler unconditionally
  ``continue``\\ s spins forever against a persistent fault; every retry
  loop needs a max-attempts escape (the :class:`repro.faults.RetryPolicy`
  pattern).

The interprocedural rules consume the propagated facts of
:mod:`repro.analysis.effects` instead of matching syntax, so they see
through ``helper()`` indirection:

* **REP009** — the purity contracts hold for the *whole call tree*: a
  function in a clock-free module must not reach ``time.time`` through
  any chain of calls, and a function outside the seeded entry points
  must not reach a global-RNG construction.  Findings carry the witness
  chain (``a → b → time.time``).
* **REP010** — ``async def`` bodies in the serving tier must not call
  (without awaiting) anything that *transitively* blocks — the
  cross-function form of REP003.
* **REP011** — everything handed to the process pool (``executor.submit``
  arguments, ``WorkUnit`` payloads) must survive pickling: no lambdas,
  nested functions, generator expressions, locks, or open files.

Every rule is suppressible per line with ``# repro: noqa[REPnnn]`` plus a
justification — see :mod:`repro.analysis.suppressions`.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis import effects
from repro.analysis.config import module_matches
from repro.analysis.effects import (
    BLOCKING,
    BLOCKING_CALLS,
    CLOCK_CALLS,
    GLOBAL_RNG,
    NP_RANDOM_OK,
    WALL_CLOCK,
)
from repro.analysis.engine import (
    Finding,
    LintContext,
    ProjectContext,
    Rule,
    dotted_name,
    register_rule,
)

_FindingTriples = Iterable[tuple[int, int, str]]


def _at(node: ast.AST, message: str) -> tuple[int, int, str]:
    return (node.lineno, node.col_offset, message)


def _call_dotted(node: ast.Call, ctx: LintContext) -> str | None:
    """The resolved dotted name of a call's target, or ``None``."""
    name = dotted_name(node.func)
    return None if name is None else ctx.resolve(name)


# ---------------------------------------------------------------------------
# REP001 — seeded-RNG discipline
# ---------------------------------------------------------------------------

@register_rule
class GlobalRngRule(Rule):
    id = "REP001"
    summary = "global RNG construction/use outside seeded entry points"
    rationale = (
        "Byte-identical output for every n_jobs placement requires all "
        "randomness to derive from per-unit SeedSequence children; a "
        "np.random.default_rng(...) (or stdlib random.*) call inside "
        "compute code forks a stream the seed tree does not account for."
    )

    def applies(self, ctx: LintContext) -> bool:
        return not module_matches(ctx.module, ctx.config.rng_entry_points)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, ast.Call):
            return
        name = _call_dotted(node, ctx)
        if name is None:
            return
        if name == "numpy.random.default_rng":
            yield _at(
                node,
                "np.random.default_rng(...) outside a seeded entry point — "
                "take a Generator parameter spawned from the caller's "
                "SeedSequence children instead (repro.utils.rng)",
            )
        elif name.startswith("numpy.random."):
            attr = name.rsplit(".", 1)[1]
            if attr not in NP_RANDOM_OK:
                yield _at(
                    node,
                    f"legacy global-state RNG call np.random.{attr}(...) — "
                    "it mutates the process-wide MT19937 stream; use the "
                    "Generator passed in by the seed tree",
                )
        elif name.startswith("random.") or name == "random":
            yield _at(
                node,
                f"stdlib {name}(...) draws from the process-wide RNG — "
                "use the numpy Generator passed in by the seed tree",
            )


# ---------------------------------------------------------------------------
# REP002 — clock-free modules
# ---------------------------------------------------------------------------

@register_rule
class WallClockRule(Rule):
    id = "REP002"
    summary = "wall-clock read inside a clock-free module"
    rationale = (
        "The sans-IO serving core takes every timestamp as an explicit "
        "`now` argument (that is what makes the fake-clock harness "
        "possible), and the digest-feeding compute modules must be pure "
        "functions of their inputs; a clock read in either is hidden "
        "state."
    )

    def applies(self, ctx: LintContext) -> bool:
        return module_matches(ctx.module, ctx.config.clock_free_modules)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, ast.Call):
            return
        name = _call_dotted(node, ctx)
        if name in CLOCK_CALLS:
            yield _at(
                node,
                f"{name}() read inside a clock-free module — transitions "
                "take an explicit `now`; measurements belong to the "
                "scheduler/shell layers (or carry a justified noqa)",
            )


# ---------------------------------------------------------------------------
# REP003 — non-blocking async bodies
# ---------------------------------------------------------------------------

_ENGINE_DISPATCH_ATTRS = frozenset(
    {"rank", "rank_many", "rank_many_submit"}
)


@register_rule
class BlockingAsyncRule(Rule):
    id = "REP003"
    summary = "blocking call inside an `async def` body in the serving tier"
    rationale = (
        "One blocked event loop stalls every coalescing window, deadline "
        "timer, and waiter at once; sleeps use asyncio.sleep, file IO "
        "happens off-loop, and engine compute crosses the executor hop."
    )

    def applies(self, ctx: LintContext) -> bool:
        return module_matches(ctx.module, ctx.config.async_modules)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, ast.Call) or not ctx.in_async_function():
            return
        name = _call_dotted(node, ctx)
        if name is not None:
            if name in BLOCKING_CALLS:
                fix = (
                    "await asyncio.sleep(...)"
                    if name == "time.sleep"
                    else "run it off-loop (executor)"
                )
                yield _at(
                    node,
                    f"blocking {name}(...) inside `async def` — {fix}",
                )
                return
            if name == "open" or name.endswith(".open"):
                yield _at(
                    node,
                    "synchronous file IO inside `async def` — open files "
                    "before entering the loop, or hop through the executor",
                )
                return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _ENGINE_DISPATCH_ATTRS
            and not isinstance(ctx.parent(), ast.Await)
        ):
            yield _at(
                node,
                f"direct engine .{node.func.attr}(...) inside `async def` "
                "— engine compute is synchronous and must cross the "
                "executor hop (loop.run_in_executor), not run on the loop",
            )


# ---------------------------------------------------------------------------
# REP004 — cache discipline
# ---------------------------------------------------------------------------

#: ``DEFAULT_CACHE`` methods that mutate it (``stats()`` is a read).
_CACHE_MUTATORS = frozenset(
    {"clear", "invalidate_constraints", "invalidate_marginals"}
)


@register_rule
class CacheDisciplineRule(Rule):
    id = "REP004"
    summary = "KernelCache construction / DEFAULT_CACHE mutation outside owners"
    rationale = (
        "Engine sessions own private KernelCaches installed via "
        "use_cache(); kernels reach memoization through active_cache(). "
        "Constructing KernelCache (or mutating DEFAULT_CACHE) elsewhere "
        "splits the cache a session thinks it owns and corrupts its "
        "hit/miss accounting."
    )

    def applies(self, ctx: LintContext) -> bool:
        return not module_matches(ctx.module, ctx.config.cache_owners)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == "KernelCache":
                yield _at(
                    node,
                    "direct KernelCache(...) construction — go through "
                    "active_cache() (session caches install themselves via "
                    "use_cache); only repro.batch.cache and the engine may "
                    "construct caches",
                )
                return
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _CACHE_MUTATORS
            ):
                owner = dotted_name(node.func.value)
                if owner is not None and owner.split(".")[-1] == "DEFAULT_CACHE":
                    yield _at(
                        node,
                        f"DEFAULT_CACHE.{node.func.attr}(...) outside the "
                        "cache owners — mutating the process-wide cache "
                        "from library code invalidates other sessions' "
                        "entries behind their backs",
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                name = dotted_name(target)
                if name is not None and name.split(".")[-1] == "DEFAULT_CACHE":
                    yield _at(
                        target,
                        "rebinding DEFAULT_CACHE — the process-wide cache "
                        "is installed once by repro.batch.cache; sessions "
                        "scope their own via use_cache()",
                    )


# ---------------------------------------------------------------------------
# REP005 — registry-only algorithm construction
# ---------------------------------------------------------------------------

#: The legacy constructor classes shimmed by the PR-5 registry.
_LEGACY_CONSTRUCTORS = frozenset(
    {
        "MallowsFairRanking",
        "GeneralizedMallowsFairRanking",
        "DetConstSort",
        "ApproxMultiValuedIPF",
        "GrBinaryIPF",
        "IlpFairRanking",
        "DpFairRanking",
    }
)


@register_rule
class LegacyConstructorRule(Rule):
    id = "REP005"
    summary = "legacy algorithm constructor call bypassing make_algorithm"
    rationale = (
        "The registry (repro.engine.registry.make_algorithm) is the one "
        "construction path: it keeps serving surfaces name-driven, "
        "silences the deprecation shims exactly once, and lets engine "
        "sessions account per-algorithm cost. A direct constructor call "
        "in library code re-opens the legacy path the shims deprecate."
    )

    def applies(self, ctx: LintContext) -> bool:
        return not module_matches(ctx.module, ctx.config.registry_factories)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, ast.Call):
            return
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _LEGACY_CONSTRUCTORS:
            leaf = name.split(".")[-1]
            yield _at(
                node,
                f"direct {leaf}(...) construction — use "
                f"make_algorithm(name, ...) so the registry stays the "
                "single construction path",
            )


# ---------------------------------------------------------------------------
# REP006 — ordered-iteration discipline in digest-feeding modules
# ---------------------------------------------------------------------------

# The structural detectors (order-free consumption, unordered reasons)
# live in repro.analysis.effects so the transitive pass infers its
# UNORDERED_ITER sources from the exact same predicates.


@register_rule
class UnorderedIterationRule(Rule):
    id = "REP006"
    summary = "unordered-container iteration in a digest-feeding module"
    rationale = (
        "reports_digest/responses_digest are byte-equality contracts: "
        "set iteration order varies across processes (hash "
        "randomization), and dict views are only as deterministic as "
        "every insertion path feeding them — which the reader cannot "
        "check locally. sorted(...) makes the order part of the code."
    )

    def applies(self, ctx: LintContext) -> bool:
        return module_matches(ctx.module, ctx.config.digest_modules)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        iterables: list[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            if not effects.consumed_order_free(ctx.parent()):
                iterables.extend(gen.iter for gen in node.generators)
        for expr in iterables:
            reason = effects.unordered_reason(expr)
            if reason is not None:
                yield _at(
                    expr,
                    f"iteration over {reason} in a digest-feeding module — "
                    "wrap it in sorted(...) so the order is locally "
                    "provable, or justify with a noqa why order cannot "
                    "reach an artefact",
                )


# ---------------------------------------------------------------------------
# REP007 — worker-visible error discipline
# ---------------------------------------------------------------------------


def _swallows(handler: ast.ExceptHandler) -> bool:
    """A handler that cannot surface anything: every statement is ``pass``
    (or a bare ``...``)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ) and stmt.value.value is Ellipsis:
            continue
        return False
    return True


@register_rule
class SwallowedExceptionRule(Rule):
    id = "REP007"
    summary = "bare/swallowed except in worker-executed code"
    rationale = (
        "Work units and the serving dispatcher run where nobody is "
        "watching stderr: a bare `except:` also catches "
        "KeyboardInterrupt/pool teardown, and a handler that only "
        "passes converts a poisoned unit into a silent wrong answer or "
        "a waiter that never completes. Catch precisely, and route the "
        "error somewhere (re-raise, record, or respond)."
    )

    def applies(self, ctx: LintContext) -> bool:
        return module_matches(ctx.module, ctx.config.worker_modules)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, ast.ExceptHandler):
            return
        if node.type is None:
            yield _at(
                node,
                "bare `except:` in worker-executed code — it also catches "
                "KeyboardInterrupt and executor teardown; name the "
                "exception types",
            )
        elif _swallows(node):
            yield _at(
                node,
                "swallowed exception in worker-executed code (handler "
                "body only passes) — route the failure somewhere: "
                "re-raise, record it, or answer the waiter with it",
            )


# ---------------------------------------------------------------------------
# REP008 — bounded-retry discipline
# ---------------------------------------------------------------------------


@register_rule
class UnboundedRetryRule(Rule):
    id = "REP008"
    summary = "unbounded retry loop in worker-dispatch/serving code"
    rationale = (
        "A `while True` that catches a failure and `continue`s with no "
        "max-attempts escape turns a persistent fault (a dead pool, a "
        "server that always sheds) into a spin: infinite resubmission "
        "with no backoff and no way out. Bound the retry — count "
        "attempts against a budget and raise/break/return when it is "
        "spent (RetryPolicy is the house pattern)."
    )

    def applies(self, ctx: LintContext) -> bool:
        return module_matches(ctx.module, ctx.config.retry_modules)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, (ast.While, ast.For)):
            return
        if not effects.is_unbounded_loop(node, ctx.resolve):
            return
        for stmt in effects.loop_level_statements(node):
            if not isinstance(stmt, ast.Try):
                continue
            for handler in stmt.handlers:
                if effects.retries_unconditionally(handler):
                    yield _at(
                        node,
                        "unbounded retry: this loop never terminates and "
                        "its exception handler re-enters it "
                        "unconditionally — bound the attempts (raise/"
                        "break/return once a budget is spent, cf. "
                        "repro.faults.RetryPolicy) or add an escape",
                    )
                    return


# ---------------------------------------------------------------------------
# REP009 — transitive purity (wall-clock / global RNG through call chains)
# ---------------------------------------------------------------------------


def _function_module(project: ProjectContext, qname: str) -> str | None:
    info = project.effects.graph.symbols.get(qname)
    return None if info is None else info.module


@register_rule
class TransitivePurityRule(Rule):
    id = "REP009"
    summary = "indirect wall-clock/RNG reach into a purity-contracted module"
    rationale = (
        "REP001/REP002 match the primitive where it is written, so "
        "`helper()` -> `time.time()` sails through the per-module pass. "
        "This rule consumes the propagated effect facts: a function in a "
        "clock-free module whose call tree reaches a clock read, or a "
        "function outside the seeded entry points whose call tree "
        "constructs a global RNG, is flagged at the call edge the effect "
        "arrives through, with the full witness chain in the message."
    )
    project = True

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        contracts = (
            (WALL_CLOCK, "clock-free", "a wall-clock read"),
            (GLOBAL_RNG, "seeded-discipline", "a global-RNG construction"),
        )
        for qname in sorted(project.effects.graph.symbols):
            module = _function_module(project, qname)
            if module is None or not project.in_target(module):
                continue
            info = project.effects.graph.symbols[qname]
            for effect, contract, what in contracts:
                if effect == WALL_CLOCK and not module_matches(
                    module, project.config.clock_free_modules
                ):
                    continue
                if effect == GLOBAL_RNG and module_matches(
                    module, project.config.rng_entry_points
                ):
                    continue
                witness = project.effects.witness(qname, effect)
                if witness is None or witness.kind != "call":
                    continue  # direct primitives are REP001/REP002's job
                chain = project.effects.render_chain(qname, effect)
                hops = project.effects.chain(qname, effect)
                yield Finding(
                    rule=self.id,
                    path=info.path,
                    line=witness.line,
                    col=witness.col,
                    message=(
                        f"this call transitively reaches {what} from a "
                        f"{contract} module: {chain} — thread the value "
                        "in as a parameter, or justify the whole chain "
                        "with a noqa at the primitive"
                    ),
                    witness=(qname,) + tuple(w.detail for w in hops),
                )


# ---------------------------------------------------------------------------
# REP010 — transitive blocking reachable from `async def`
# ---------------------------------------------------------------------------


@register_rule
class TransitiveBlockingRule(Rule):
    id = "REP010"
    summary = "sync call from `async def` into a transitively blocking callee"
    rationale = (
        "REP003 flags `time.sleep` written inside an `async def`; it "
        "cannot see `async def h(): helper()` where `helper` sleeps two "
        "calls down. Any non-awaited call edge from an async body in the "
        "serving tier into a callee carrying the blocking effect stalls "
        "the event loop just the same — hop it through the executor, or "
        "await an async counterpart."
    )
    project = True

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        graph = project.effects.graph
        for caller in sorted(graph.edges):
            info = graph.symbols.get(caller)
            if info is None:
                continue
            if not project.in_target(info.module):
                continue
            if not module_matches(
                info.module, project.config.async_modules
            ):
                continue
            for edge in graph.callees(caller):
                if not edge.in_async or edge.awaited:
                    continue
                if not project.effects.has(edge.callee, BLOCKING):
                    continue
                chain = project.effects.render_chain(edge.callee, BLOCKING)
                hops = project.effects.chain(edge.callee, BLOCKING)
                yield Finding(
                    rule=self.id,
                    path=info.path,
                    line=edge.line,
                    col=edge.col,
                    message=(
                        f"sync call from `async def` into a transitively "
                        f"blocking callee: {caller} → {chain} — cross the "
                        "executor hop (loop.run_in_executor) or await an "
                        "async counterpart"
                    ),
                    witness=(caller, edge.callee)
                    + tuple(w.detail for w in hops),
                )


# ---------------------------------------------------------------------------
# REP011 — picklable pool payloads
# ---------------------------------------------------------------------------

_REASON_FIXES = {
    "lambda": "hoist it to a module-level function",
    "genexp": "materialize it to a list before submitting",
    "nested-function": "hoist it to module level (workers re-import it "
    "by qualified name)",
    "lock": "keep synchronization in the parent; workers get data, "
    "not locks",
    "open-file": "pass the path and open inside the worker",
}


@register_rule
class UnpicklableSubmissionRule(Rule):
    id = "REP011"
    summary = "unpicklable object handed to the process pool"
    rationale = (
        "Everything submitted to the pool (`executor.submit` arguments, "
        "`WorkUnit` fields) crosses a pickle boundary. Lambdas, nested "
        "functions, generators, locks, and open files fail that "
        "round-trip — under the spawn start method only, so the code "
        "works on the author's fork-based Linux box and dispatch-crashes "
        "on macOS/Windows CI."
    )
    project = True

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        for summary in project.summaries:
            if not project.in_target(summary.module):
                continue
            if not module_matches(
                summary.module, project.config.pool_submit_modules
            ):
                continue
            for sub in summary.index.submissions:
                fix = _REASON_FIXES.get(sub.reason, "make it picklable")
                where = (
                    "an executor submission"
                    if sub.site == "submit"
                    else f"a {sub.site}(...) payload"
                )
                yield Finding(
                    rule=self.id,
                    path=summary.path,
                    line=sub.line,
                    col=sub.col,
                    message=(
                        f"{sub.detail} in {where} cannot cross the "
                        f"pickle boundary to a pool worker — {fix}"
                    ),
                )
