"""The repository's REP rules — its invariants, executable.

Each rule enforces one contract the earlier layers rely on but could not,
until now, *check*:

* **REP001** — byte-identical results for every ``n_jobs`` require that
  randomness flows through the per-unit ``SeedSequence`` tree; a global
  RNG construction mid-computation forks an unaccounted stream.
* **REP002** — the sans-IO serving core and the digest-feeding compute
  modules must be pure functions of their inputs; a wall-clock read is
  either a bug or a timing-only measurement that must justify itself.
* **REP003** — ``async def`` bodies in the serving tier must never block
  the event loop: no sleeps, no sync IO, no inline engine compute (that
  is what the executor hop is for).
* **REP004** — kernel call sites reach memoization through
  ``active_cache()`` so engine sessions can scope it; constructing
  ``KernelCache`` (or mutating ``DEFAULT_CACHE``) elsewhere silently
  splits the cache a session thinks it owns.
* **REP005** — algorithms are constructed through the registry
  (``make_algorithm``); direct legacy-constructor calls bypass the
  deprecation shims and the engine's session accounting.
* **REP006** — anything that feeds ``reports_digest``/``responses_digest``
  must iterate deterministically; sets (and, as a discipline, dict views)
  iterate in hash/insertion order the reader cannot verify locally —
  wrap them in ``sorted(...)``.
* **REP007** — exceptions in worker-executed code must surface: a bare
  ``except:`` (or a swallowed handler) turns a poisoned work unit into a
  silent wrong answer or a hung waiter.
* **REP008** — retries in worker-dispatch and serving code must be
  bounded: a ``while True`` whose exception handler unconditionally
  ``continue``\\ s spins forever against a persistent fault; every retry
  loop needs a max-attempts escape (the :class:`repro.faults.RetryPolicy`
  pattern).

Every rule is suppressible per line with ``# repro: noqa[REPnnn]`` plus a
justification — see :mod:`repro.analysis.suppressions`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.config import module_matches
from repro.analysis.engine import (
    LintContext,
    Rule,
    dotted_name,
    register_rule,
)

_FindingTriples = Iterable[tuple[int, int, str]]


def _at(node: ast.AST, message: str) -> tuple[int, int, str]:
    return (node.lineno, node.col_offset, message)


def _call_dotted(node: ast.Call, ctx: LintContext) -> str | None:
    """The resolved dotted name of a call's target, or ``None``."""
    name = dotted_name(node.func)
    return None if name is None else ctx.resolve(name)


# ---------------------------------------------------------------------------
# REP001 — seeded-RNG discipline
# ---------------------------------------------------------------------------

#: ``numpy.random`` attributes that are *fine* to touch anywhere: the
#: explicit-seeding types the determinism contract is built from.
_NP_RANDOM_OK = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


@register_rule
class GlobalRngRule(Rule):
    id = "REP001"
    summary = "global RNG construction/use outside seeded entry points"
    rationale = (
        "Byte-identical output for every n_jobs placement requires all "
        "randomness to derive from per-unit SeedSequence children; a "
        "np.random.default_rng(...) (or stdlib random.*) call inside "
        "compute code forks a stream the seed tree does not account for."
    )

    def applies(self, ctx: LintContext) -> bool:
        return not module_matches(ctx.module, ctx.config.rng_entry_points)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, ast.Call):
            return
        name = _call_dotted(node, ctx)
        if name is None:
            return
        if name == "numpy.random.default_rng":
            yield _at(
                node,
                "np.random.default_rng(...) outside a seeded entry point — "
                "take a Generator parameter spawned from the caller's "
                "SeedSequence children instead (repro.utils.rng)",
            )
        elif name.startswith("numpy.random."):
            attr = name.rsplit(".", 1)[1]
            if attr not in _NP_RANDOM_OK:
                yield _at(
                    node,
                    f"legacy global-state RNG call np.random.{attr}(...) — "
                    "it mutates the process-wide MT19937 stream; use the "
                    "Generator passed in by the seed tree",
                )
        elif name.startswith("random.") or name == "random":
            yield _at(
                node,
                f"stdlib {name}(...) draws from the process-wide RNG — "
                "use the numpy Generator passed in by the seed tree",
            )


# ---------------------------------------------------------------------------
# REP002 — clock-free modules
# ---------------------------------------------------------------------------

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


@register_rule
class WallClockRule(Rule):
    id = "REP002"
    summary = "wall-clock read inside a clock-free module"
    rationale = (
        "The sans-IO serving core takes every timestamp as an explicit "
        "`now` argument (that is what makes the fake-clock harness "
        "possible), and the digest-feeding compute modules must be pure "
        "functions of their inputs; a clock read in either is hidden "
        "state."
    )

    def applies(self, ctx: LintContext) -> bool:
        return module_matches(ctx.module, ctx.config.clock_free_modules)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, ast.Call):
            return
        name = _call_dotted(node, ctx)
        if name in _CLOCK_CALLS:
            yield _at(
                node,
                f"{name}() read inside a clock-free module — transitions "
                "take an explicit `now`; measurements belong to the "
                "scheduler/shell layers (or carry a justified noqa)",
            )


# ---------------------------------------------------------------------------
# REP003 — non-blocking async bodies
# ---------------------------------------------------------------------------

_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
    }
)

_ENGINE_DISPATCH_ATTRS = frozenset(
    {"rank", "rank_many", "rank_many_submit"}
)


@register_rule
class BlockingAsyncRule(Rule):
    id = "REP003"
    summary = "blocking call inside an `async def` body in the serving tier"
    rationale = (
        "One blocked event loop stalls every coalescing window, deadline "
        "timer, and waiter at once; sleeps use asyncio.sleep, file IO "
        "happens off-loop, and engine compute crosses the executor hop."
    )

    def applies(self, ctx: LintContext) -> bool:
        return module_matches(ctx.module, ctx.config.async_modules)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, ast.Call) or not ctx.in_async_function():
            return
        name = _call_dotted(node, ctx)
        if name is not None:
            if name in _BLOCKING_CALLS:
                fix = (
                    "await asyncio.sleep(...)"
                    if name == "time.sleep"
                    else "run it off-loop (executor)"
                )
                yield _at(
                    node,
                    f"blocking {name}(...) inside `async def` — {fix}",
                )
                return
            if name == "open" or name.endswith(".open"):
                yield _at(
                    node,
                    "synchronous file IO inside `async def` — open files "
                    "before entering the loop, or hop through the executor",
                )
                return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _ENGINE_DISPATCH_ATTRS
            and not isinstance(ctx.parent(), ast.Await)
        ):
            yield _at(
                node,
                f"direct engine .{node.func.attr}(...) inside `async def` "
                "— engine compute is synchronous and must cross the "
                "executor hop (loop.run_in_executor), not run on the loop",
            )


# ---------------------------------------------------------------------------
# REP004 — cache discipline
# ---------------------------------------------------------------------------

#: ``DEFAULT_CACHE`` methods that mutate it (``stats()`` is a read).
_CACHE_MUTATORS = frozenset(
    {"clear", "invalidate_constraints", "invalidate_marginals"}
)


@register_rule
class CacheDisciplineRule(Rule):
    id = "REP004"
    summary = "KernelCache construction / DEFAULT_CACHE mutation outside owners"
    rationale = (
        "Engine sessions own private KernelCaches installed via "
        "use_cache(); kernels reach memoization through active_cache(). "
        "Constructing KernelCache (or mutating DEFAULT_CACHE) elsewhere "
        "splits the cache a session thinks it owns and corrupts its "
        "hit/miss accounting."
    )

    def applies(self, ctx: LintContext) -> bool:
        return not module_matches(ctx.module, ctx.config.cache_owners)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == "KernelCache":
                yield _at(
                    node,
                    "direct KernelCache(...) construction — go through "
                    "active_cache() (session caches install themselves via "
                    "use_cache); only repro.batch.cache and the engine may "
                    "construct caches",
                )
                return
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _CACHE_MUTATORS
            ):
                owner = dotted_name(node.func.value)
                if owner is not None and owner.split(".")[-1] == "DEFAULT_CACHE":
                    yield _at(
                        node,
                        f"DEFAULT_CACHE.{node.func.attr}(...) outside the "
                        "cache owners — mutating the process-wide cache "
                        "from library code invalidates other sessions' "
                        "entries behind their backs",
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                name = dotted_name(target)
                if name is not None and name.split(".")[-1] == "DEFAULT_CACHE":
                    yield _at(
                        target,
                        "rebinding DEFAULT_CACHE — the process-wide cache "
                        "is installed once by repro.batch.cache; sessions "
                        "scope their own via use_cache()",
                    )


# ---------------------------------------------------------------------------
# REP005 — registry-only algorithm construction
# ---------------------------------------------------------------------------

#: The legacy constructor classes shimmed by the PR-5 registry.
_LEGACY_CONSTRUCTORS = frozenset(
    {
        "MallowsFairRanking",
        "GeneralizedMallowsFairRanking",
        "DetConstSort",
        "ApproxMultiValuedIPF",
        "GrBinaryIPF",
        "IlpFairRanking",
        "DpFairRanking",
    }
)


@register_rule
class LegacyConstructorRule(Rule):
    id = "REP005"
    summary = "legacy algorithm constructor call bypassing make_algorithm"
    rationale = (
        "The registry (repro.engine.registry.make_algorithm) is the one "
        "construction path: it keeps serving surfaces name-driven, "
        "silences the deprecation shims exactly once, and lets engine "
        "sessions account per-algorithm cost. A direct constructor call "
        "in library code re-opens the legacy path the shims deprecate."
    )

    def applies(self, ctx: LintContext) -> bool:
        return not module_matches(ctx.module, ctx.config.registry_factories)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, ast.Call):
            return
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _LEGACY_CONSTRUCTORS:
            leaf = name.split(".")[-1]
            yield _at(
                node,
                f"direct {leaf}(...) construction — use "
                f"make_algorithm(name, ...) so the registry stays the "
                "single construction path",
            )


# ---------------------------------------------------------------------------
# REP006 — ordered-iteration discipline in digest-feeding modules
# ---------------------------------------------------------------------------

_DICT_VIEWS = frozenset({"keys", "values", "items"})

#: Builtins whose result does not depend on their argument's iteration
#: order — a generator over ``.items()`` fed straight into one of these is
#: order-free by construction.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all"}
)


def _consumed_order_free(ctx: LintContext) -> bool:
    """Whether the comprehension being visited is the direct argument of an
    order-insensitive builtin (``sorted(x for x in d.items())``)."""
    parent = ctx.parent()
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in _ORDER_INSENSITIVE_CONSUMERS
    )


def _unordered_reason(expr: ast.AST) -> str | None:
    """Why ``expr`` iterates in an unverifiable order, or ``None``."""
    if isinstance(expr, ast.Set):
        return "a set literal"
    if isinstance(expr, ast.SetComp):
        return "a set comprehension"
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DICT_VIEWS
            and not expr.args
            and not expr.keywords
        ):
            return f".{func.attr}()"
    return None


@register_rule
class UnorderedIterationRule(Rule):
    id = "REP006"
    summary = "unordered-container iteration in a digest-feeding module"
    rationale = (
        "reports_digest/responses_digest are byte-equality contracts: "
        "set iteration order varies across processes (hash "
        "randomization), and dict views are only as deterministic as "
        "every insertion path feeding them — which the reader cannot "
        "check locally. sorted(...) makes the order part of the code."
    )

    def applies(self, ctx: LintContext) -> bool:
        return module_matches(ctx.module, ctx.config.digest_modules)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        iterables: list[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            if not _consumed_order_free(ctx):
                iterables.extend(gen.iter for gen in node.generators)
        for expr in iterables:
            reason = _unordered_reason(expr)
            if reason is not None:
                yield _at(
                    expr,
                    f"iteration over {reason} in a digest-feeding module — "
                    "wrap it in sorted(...) so the order is locally "
                    "provable, or justify with a noqa why order cannot "
                    "reach an artefact",
                )


# ---------------------------------------------------------------------------
# REP007 — worker-visible error discipline
# ---------------------------------------------------------------------------


def _swallows(handler: ast.ExceptHandler) -> bool:
    """A handler that cannot surface anything: every statement is ``pass``
    (or a bare ``...``)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ) and stmt.value.value is Ellipsis:
            continue
        return False
    return True


@register_rule
class SwallowedExceptionRule(Rule):
    id = "REP007"
    summary = "bare/swallowed except in worker-executed code"
    rationale = (
        "Work units and the serving dispatcher run where nobody is "
        "watching stderr: a bare `except:` also catches "
        "KeyboardInterrupt/pool teardown, and a handler that only "
        "passes converts a poisoned unit into a silent wrong answer or "
        "a waiter that never completes. Catch precisely, and route the "
        "error somewhere (re-raise, record, or respond)."
    )

    def applies(self, ctx: LintContext) -> bool:
        return module_matches(ctx.module, ctx.config.worker_modules)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, ast.ExceptHandler):
            return
        if node.type is None:
            yield _at(
                node,
                "bare `except:` in worker-executed code — it also catches "
                "KeyboardInterrupt and executor teardown; name the "
                "exception types",
            )
        elif _swallows(node):
            yield _at(
                node,
                "swallowed exception in worker-executed code (handler "
                "body only passes) — route the failure somewhere: "
                "re-raise, record it, or answer the waiter with it",
            )


# ---------------------------------------------------------------------------
# REP008 — bounded-retry discipline
# ---------------------------------------------------------------------------


def _is_unbounded_loop(node: ast.AST, ctx: LintContext) -> bool:
    """``while True`` (or ``while 1``), or ``for … in itertools.count()``."""
    if isinstance(node, ast.While):
        test = node.test
        return isinstance(test, ast.Constant) and bool(test.value)
    if isinstance(node, ast.For) and isinstance(node.iter, ast.Call):
        return _call_dotted(node.iter, ctx) == "itertools.count"
    return False


def _loop_level_statements(loop: ast.While | ast.For) -> Iterator[ast.stmt]:
    """Statements at this loop's own level: descend through ifs/withs/tries,
    but never into nested loops or function/class definitions (their
    `continue`/`break` bind elsewhere)."""
    stack: list[ast.stmt] = list(loop.body)
    while stack:
        stmt = stack.pop()
        if isinstance(
            stmt,
            (
                ast.While,
                ast.For,
                ast.AsyncFor,
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
            ),
        ):
            continue
        yield stmt
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            for child in getattr(stmt, field_name, ()) or ():
                if isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)
                elif isinstance(child, ast.stmt):
                    stack.append(child)


def _retries_unconditionally(handler: ast.ExceptHandler) -> bool:
    """A handler that loops again on failure with no escape: it contains a
    ``continue`` and no ``raise``/``break``/``return`` at the handler's own
    level (an escape statement is what bounds the retry)."""
    retries = False
    stack: list[ast.stmt] = list(handler.body)
    while stack:
        stmt = stack.pop()
        if isinstance(
            stmt,
            (
                ast.While,
                ast.For,
                ast.AsyncFor,
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
            ),
        ):
            continue
        if isinstance(stmt, (ast.Raise, ast.Break, ast.Return)):
            return False
        if isinstance(stmt, ast.Continue):
            retries = True
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            for child in getattr(stmt, field_name, ()) or ():
                if isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)
                elif isinstance(child, ast.stmt):
                    stack.append(child)
    return retries


@register_rule
class UnboundedRetryRule(Rule):
    id = "REP008"
    summary = "unbounded retry loop in worker-dispatch/serving code"
    rationale = (
        "A `while True` that catches a failure and `continue`s with no "
        "max-attempts escape turns a persistent fault (a dead pool, a "
        "server that always sheds) into a spin: infinite resubmission "
        "with no backoff and no way out. Bound the retry — count "
        "attempts against a budget and raise/break/return when it is "
        "spent (RetryPolicy is the house pattern)."
    )

    def applies(self, ctx: LintContext) -> bool:
        return module_matches(ctx.module, ctx.config.retry_modules)

    def visit(self, node: ast.AST, ctx: LintContext) -> _FindingTriples:
        if not isinstance(node, (ast.While, ast.For)):
            return
        if not _is_unbounded_loop(node, ctx):
            return
        for stmt in _loop_level_statements(node):
            if not isinstance(stmt, ast.Try):
                continue
            for handler in stmt.handlers:
                if _retries_unconditionally(handler):
                    yield _at(
                        node,
                        "unbounded retry: this loop never terminates and "
                        "its exception handler re-enters it "
                        "unconditionally — bound the attempts (raise/"
                        "break/return once a budget is spent, cf. "
                        "repro.faults.RetryPolicy) or add an escape",
                    )
                    return
