"""Pass 1 of the project analyzer: symbols, imports, and the call graph.

The per-module rules in :mod:`repro.analysis.rules` see one file at a
time, so ``helper()`` → ``time.time()`` is invisible to them.  This
module builds what the transitive rules (REP009–REP011) need instead:

* a **module index** (:class:`ModuleIndex`) — every function/method
  definition with its nesting, every call site with its resolved dotted
  target, the import-alias map, and the pool-submission sites REP011
  inspects;
* a **project symbol table** mapping qualified names
  (``repro.serve.core.ServerCore.submit``) to definitions, following
  package re-exports (``from repro.batch.parallel import run_trials``
  makes ``repro.batch.run_trials`` an alias);
* the **call graph** (:class:`CallGraph`) over those symbols, with a
  ``dynamic`` edge target for anything the resolver cannot pin down
  (subscripts, calls on values of unknown type) — dynamic dispatch is
  handled *conservatively for the analysis* (no effects flow through an
  edge nobody can name) but the edge is kept so ``--explain`` can show
  where precision was lost;
* Tarjan strongly-connected components, so the effect fixpoint in
  :mod:`repro.analysis.effects` terminates on recursion and mutual
  recursion.

Name resolution reuses the same alias discipline as the per-module
engine (:func:`collect_import_aliases` is the machinery the engine's
``LintContext.imports`` is built from): local scopes first (module and
enclosing *function* scopes — class bodies are skipped, as in Python's
own lookup rules), then the import map, then pass-through for stdlib
dotted names (``time.time`` stays ``time.time``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

#: Call-site target recorded when resolution fails (a subscript in the
#: chain, a call on an arbitrary value, ...).
DYNAMIC = "<dynamic>"


def dotted_name(node: ast.AST) -> str | None:
    """The source-level dotted name of a ``Name``/``Attribute`` chain
    (``None`` for anything dynamic, e.g. a subscript in the chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def collect_import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, from every ``import`` in the file
    (any depth — local imports are the repo's idiom for optional heavy
    deps).

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter`` ->
    ``{"perf_counter": "time.perf_counter"}``.
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                origin = alias.name if alias.asname else local
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


@dataclass(frozen=True)
class FunctionInfo:
    """One function/method definition in the project.

    ``qname`` is module-qualified (``repro.x.Class.meth``,
    ``repro.x.outer.inner``); ``nested_in`` names the enclosing
    *function* for closures (``None`` for module-level functions and
    methods) — the fact REP011's picklability check runs on.
    """

    qname: str
    module: str
    path: str
    line: int
    col: int
    is_async: bool = False
    nested_in: str | None = None

    @property
    def name(self) -> str:
        """The unqualified (trailing) name."""
        return self.qname.rpartition(".")[2]


@dataclass(frozen=True)
class CallSite:
    """One call expression, attributed to its innermost enclosing
    function (``caller`` is ``None`` for module-level code)."""

    caller: str | None
    target: str
    line: int
    col: int
    awaited: bool = False
    in_async: bool = False


@dataclass(frozen=True)
class PoolSubmission:
    """One argument handed to the pool (``executor.submit(...)`` or a
    ``WorkUnit(...)`` constructor) that the picklability heuristics
    could classify.  ``reason`` is a stable tag REP011 turns into a
    message (``lambda``, ``genexp``, ``nested-function``, ``lock``,
    ``open-file``)."""

    caller: str | None
    site: str
    reason: str
    detail: str
    line: int
    col: int


@dataclass(frozen=True)
class ModuleIndex:
    """Everything pass 1 extracted from one module."""

    module: str
    path: str
    imports: tuple[tuple[str, str], ...]
    functions: tuple[FunctionInfo, ...]
    calls: tuple[CallSite, ...]
    submissions: tuple[PoolSubmission, ...]

    def import_map(self) -> dict[str, str]:
        return dict(self.imports)

    def function_map(self) -> dict[str, FunctionInfo]:
        return {f.qname: f for f in self.functions}


#: Receivers whose ``.submit(...)`` is a process-pool dispatch, by the
#: final identifier of the receiver chain (``executor.submit``,
#: ``self._pool.submit``).  ``ServerCore.submit`` and the async client
#: ``server.submit`` are admission calls, not pool dispatches.
_POOL_RECEIVER_MARKERS = ("executor", "pool")

#: Constructors whose positional/keyword args are pickled to workers.
_UNIT_CONSTRUCTORS = frozenset({"WorkUnit"})

#: Call leaves that produce an unpicklable value when passed to the pool.
_UNPICKLABLE_FACTORIES: dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "lock",
    "threading.Event": "lock",
    "threading.Semaphore": "lock",
    "multiprocessing.Lock": "lock",
    "open": "open-file",
    "io.open": "open-file",
}


def _is_pool_submit(node: ast.Call) -> bool:
    """``<receiver>.submit(...)`` where the receiver's last identifier
    marks it as an executor/pool."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
        return False
    receiver = dotted_name(func.value)
    if receiver is None:
        return False
    leaf = receiver.rpartition(".")[2].lower()
    return any(marker in leaf for marker in _POOL_RECEIVER_MARKERS)


class _Scope:
    """One lexical scope during indexing.

    ``transparent`` scopes participate in bare-name lookup (module and
    function scopes); class scopes do not — a method is reachable from a
    sibling method only through ``self``, exactly as in Python.
    """

    def __init__(self, qname: str, transparent: bool):
        self.qname = qname
        self.transparent = transparent
        #: Local name -> qname, for functions/classes defined here.
        self.names: dict[str, str] = {}
        #: Local name -> unpicklable-reason, for single-assignment locals
        #: bound to lambdas/genexps/locks/files (REP011 fuel).
        self.tainted: dict[str, tuple[str, str]] = {}


class _ModuleIndexer:
    """Two sub-passes over one module tree.

    Sub-pass A registers definitions (so calls textually before a def
    still resolve); sub-pass B records call sites, resolving targets
    through local scopes, ``self``, and the import map.
    """

    def __init__(self, tree: ast.Module, module: str, path: str):
        self.tree = tree
        self.module = module
        self.path = path
        self.imports = collect_import_aliases(tree)
        self.functions: list[FunctionInfo] = []
        self.calls: list[CallSite] = []
        self.submissions: list[PoolSubmission] = []
        #: Class qname (module-qualified) -> its method names.
        self.class_methods: dict[str, set[str]] = {}
        #: qname -> FunctionInfo for defs in this module.
        self._defs: dict[str, FunctionInfo] = {}

    def run(self) -> ModuleIndex:
        module_scope = _Scope(self.module, transparent=True)
        self._collect_defs(self.tree, [module_scope], enclosing_fn=None)
        self._collect_calls(
            self.tree,
            [module_scope],
            caller=None,
            in_async=False,
            current_class=None,
        )
        return ModuleIndex(
            module=self.module,
            path=self.path,
            imports=tuple(sorted(self.imports.items())),
            functions=tuple(self.functions),
            calls=tuple(self.calls),
            submissions=tuple(self.submissions),
        )

    # -- sub-pass A: definitions ------------------------------------------

    def _collect_defs(
        self,
        node: ast.AST,
        scopes: list[_Scope],
        enclosing_fn: str | None,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{scopes[-1].qname}.{child.name}"
                info = FunctionInfo(
                    qname=qname,
                    module=self.module,
                    path=self.path,
                    line=child.lineno,
                    col=child.col_offset,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                    nested_in=enclosing_fn,
                )
                self.functions.append(info)
                self._defs[qname] = info
                scopes[-1].names[child.name] = qname
                if not scopes[-1].transparent:
                    # A method: register on the owning class for `self.m()`.
                    self.class_methods.setdefault(scopes[-1].qname, set()).add(
                        child.name
                    )
                inner = _Scope(qname, transparent=True)
                self._collect_defs(child, scopes + [inner], enclosing_fn=qname)
            elif isinstance(child, ast.ClassDef):
                qname = f"{scopes[-1].qname}.{child.name}"
                scopes[-1].names[child.name] = qname
                self.class_methods.setdefault(qname, set())
                inner = _Scope(qname, transparent=False)
                self._collect_defs(
                    child, scopes + [inner], enclosing_fn=enclosing_fn
                )
            else:
                self._collect_defs(child, scopes, enclosing_fn=enclosing_fn)

    # -- sub-pass B: call sites -------------------------------------------

    def _register_local_names(self, node: ast.AST, scope: _Scope) -> None:
        """Names of every def/class belonging to ``scope`` (descending
        through ifs/trys but not into nested scopes) — mirrors what
        sub-pass A recorded, so forward references resolve here too."""
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                scope.names[child.name] = f"{scope.qname}.{child.name}"
            else:
                self._register_local_names(child, scope)

    def _lookup(self, scopes: Sequence[_Scope], name: str) -> str | None:
        """Bare-name lookup through transparent scopes, innermost first."""
        for scope in reversed(scopes):
            if not scope.transparent:
                continue
            if name in scope.names:
                return scope.names[name]
        return None

    def _lookup_taint(
        self, scopes: Sequence[_Scope], name: str
    ) -> tuple[str, str] | None:
        for scope in reversed(scopes):
            if not scope.transparent:
                continue
            if name in scope.tainted:
                return scope.tainted[name]
        return None

    def _resolve_call_target(
        self,
        node: ast.Call,
        scopes: Sequence[_Scope],
        current_class: str | None,
    ) -> str:
        dotted = dotted_name(node.func)
        if dotted is None:
            return DYNAMIC
        head, sep, rest = dotted.partition(".")
        if head == "self" and current_class is not None and rest:
            method, _, trailing = rest.partition(".")
            if trailing:
                return DYNAMIC  # self.attr.method(): receiver type unknown
            if method in self.class_methods.get(current_class, ()):
                return f"{current_class}.{method}"
            return DYNAMIC
        local = self._lookup(scopes, head)
        if local is not None:
            return local + sep + rest if rest else local
        origin = self.imports.get(head)
        if origin is not None:
            return origin + sep + rest if rest else origin
        return dotted

    def _classify_unpicklable(
        self, arg: ast.expr, scopes: Sequence[_Scope]
    ) -> tuple[str, str] | None:
        """``(reason, detail)`` when ``arg`` cannot round-trip through
        pickle, else ``None``.  Conservative: only shapes that are
        unpicklable *by construction* are flagged."""
        if isinstance(arg, ast.Lambda):
            return ("lambda", "a lambda expression")
        if isinstance(arg, ast.GeneratorExp):
            return ("genexp", "a generator expression")
        if isinstance(arg, ast.Call):
            target = self._resolve_call_target(arg, scopes, None)
            reason = _UNPICKLABLE_FACTORIES.get(target)
            if reason is not None:
                return (reason, f"{target}(...)")
        if isinstance(arg, ast.Name):
            taint = self._lookup_taint(scopes, arg.id)
            if taint is not None:
                return taint
            qname = self._lookup(scopes, arg.id)
            if qname is not None:
                info = self._defs.get(qname)
                if info is not None and info.nested_in is not None:
                    return (
                        "nested-function",
                        f"nested function {info.name!r} (a closure)",
                    )
        return None

    def _record_submission_args(
        self,
        node: ast.Call,
        site: str,
        args: Sequence[ast.expr],
        caller: str | None,
        scopes: Sequence[_Scope],
    ) -> None:
        for arg in args:
            exprs: tuple[ast.expr, ...]
            if isinstance(arg, (ast.Tuple, ast.List)):
                exprs = tuple(arg.elts)
            else:
                exprs = (arg,)
            for expr in exprs:
                verdict = self._classify_unpicklable(expr, scopes)
                if verdict is not None:
                    reason, detail = verdict
                    self.submissions.append(
                        PoolSubmission(
                            caller=caller,
                            site=site,
                            reason=reason,
                            detail=detail,
                            line=expr.lineno,
                            col=expr.col_offset,
                        )
                    )

    def _maybe_record_submission(
        self, node: ast.Call, caller: str | None, scopes: Sequence[_Scope]
    ) -> None:
        if _is_pool_submit(node):
            args = list(node.args) + [kw.value for kw in node.keywords]
            self._record_submission_args(
                node, "submit", args, caller, scopes
            )
            return
        name = dotted_name(node.func)
        if name is not None and name.rpartition(".")[2] in _UNIT_CONSTRUCTORS:
            args = list(node.args) + [kw.value for kw in node.keywords]
            self._record_submission_args(
                node, "WorkUnit", args, caller, scopes
            )

    def _record_taint(self, stmt: ast.Assign, scopes: list[_Scope]) -> None:
        """Track ``x = lambda ...`` / ``x = threading.Lock()`` style
        single-name assignments so a later ``submit(x)`` is caught."""
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        name = stmt.targets[0].id
        verdict: tuple[str, str] | None = None
        value = stmt.value
        if isinstance(value, ast.Lambda):
            verdict = ("lambda", f"{name!r}, bound to a lambda expression")
        elif isinstance(value, ast.GeneratorExp):
            verdict = ("genexp", f"{name!r}, bound to a generator expression")
        elif isinstance(value, ast.Call):
            target = self._resolve_call_target(value, scopes, None)
            reason = _UNPICKLABLE_FACTORIES.get(target)
            if reason is not None:
                verdict = (reason, f"{name!r}, bound to {target}(...)")
        if verdict is not None:
            scopes[-1].tainted[name] = verdict
        elif name in scopes[-1].tainted:
            del scopes[-1].tainted[name]  # rebound to something clean

    def _collect_calls(
        self,
        node: ast.AST,
        scopes: list[_Scope],
        caller: str | None,
        in_async: bool,
        current_class: str | None,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{scopes[-1].qname}.{child.name}"
                inner = _Scope(qname, transparent=True)
                self._register_local_names(child, inner)
                self._collect_calls(
                    child,
                    scopes + [inner],
                    caller=qname,
                    in_async=isinstance(child, ast.AsyncFunctionDef),
                    current_class=current_class,
                )
            elif isinstance(child, ast.ClassDef):
                qname = f"{scopes[-1].qname}.{child.name}"
                inner = _Scope(qname, transparent=False)
                self._register_local_names(child, inner)
                self._collect_calls(
                    child,
                    scopes + [inner],
                    caller=caller,
                    in_async=False,
                    current_class=qname,
                )
            else:
                if isinstance(child, ast.Assign):
                    self._record_taint(child, scopes)
                if isinstance(child, ast.Call):
                    target = self._resolve_call_target(
                        child, scopes, current_class
                    )
                    self.calls.append(
                        CallSite(
                            caller=caller,
                            target=target,
                            line=child.lineno,
                            col=child.col_offset,
                            awaited=isinstance(node, ast.Await),
                            in_async=in_async,
                        )
                    )
                    self._maybe_record_submission(child, caller, scopes)
                self._collect_calls(
                    child,
                    scopes,
                    caller=caller,
                    in_async=in_async,
                    current_class=current_class,
                )


def index_module(tree: ast.Module, module: str, path: str) -> ModuleIndex:
    """Run pass 1 over one parsed module."""
    return _ModuleIndexer(tree, module, path).run()


# ---------------------------------------------------------------------------
# The project graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallEdge:
    """A resolved call-graph edge (``callee`` is a project qname)."""

    caller: str
    callee: str
    line: int
    col: int
    awaited: bool = False
    in_async: bool = False


@dataclass
class CallGraph:
    """The project call graph: symbols, resolved edges, dynamic counts.

    ``edges`` maps each caller qname to its outgoing resolved edges (in
    source order); ``dynamic_calls`` counts the call sites per caller
    that resolution had to give up on — the conservative escape hatch.
    ``module_deps`` is the module-level dependency graph the incremental
    cache invalidates through.
    """

    symbols: dict[str, FunctionInfo] = field(default_factory=dict)
    edges: dict[str, list[CallEdge]] = field(default_factory=dict)
    dynamic_calls: dict[str, int] = field(default_factory=dict)
    #: Unresolved non-dynamic targets per caller (stdlib/external dotted
    #: names) — the raw material base-effect extraction matches on.
    external_calls: dict[str, list[CallSite]] = field(default_factory=dict)
    module_deps: dict[str, set[str]] = field(default_factory=dict)
    modules: dict[str, ModuleIndex] = field(default_factory=dict)

    def callees(self, qname: str) -> list[CallEdge]:
        return self.edges.get(qname, [])


def _longest_module_prefix(
    dotted: str, modules: set[str]
) -> tuple[str, str] | None:
    """Split ``dotted`` as ``(module, rest)`` on the longest known module
    prefix, or ``None``."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        prefix = ".".join(parts[:cut])
        if prefix in modules:
            return prefix, ".".join(parts[cut:])
    return None


def build_call_graph(indexes: Sequence[ModuleIndex]) -> CallGraph:
    """Assemble the project graph from per-module indexes.

    Resolution follows package re-exports: a target
    ``repro.batch.run_trials`` not in the symbol table is re-routed
    through ``repro.batch``'s import map (bounded, so import cycles
    cannot loop the resolver).
    """
    graph = CallGraph()
    module_names = {index.module for index in indexes}
    import_maps: dict[str, dict[str, str]] = {}
    for index in indexes:
        graph.modules[index.module] = index
        import_maps[index.module] = index.import_map()
        for info in index.functions:
            graph.symbols[info.qname] = info

    def resolve(target: str) -> str | None:
        seen: set[str] = set()
        for _ in range(16):
            if target in graph.symbols:
                return target
            if f"{target}.__init__" in graph.symbols:
                return f"{target}.__init__"
            if target in seen:
                return None
            seen.add(target)
            split = _longest_module_prefix(target, module_names)
            if split is None:
                return None
            module, rest = split
            if not rest:
                return None
            head, sep, trailing = rest.partition(".")
            origin = import_maps[module].get(head)
            if origin is None:
                return None
            target = origin + sep + trailing if trailing else origin
        return None

    for index in indexes:
        deps = graph.module_deps.setdefault(index.module, set())
        for _, origin in index.imports:
            split = _longest_module_prefix(origin, module_names)
            if split is not None and split[0] != index.module:
                deps.add(split[0])
        for call in index.calls:
            caller = call.caller if call.caller is not None else index.module
            if call.target == DYNAMIC:
                graph.dynamic_calls[caller] = (
                    graph.dynamic_calls.get(caller, 0) + 1
                )
                continue
            callee = resolve(call.target)
            if callee is None:
                graph.external_calls.setdefault(caller, []).append(call)
                continue
            graph.edges.setdefault(caller, []).append(
                CallEdge(
                    caller=caller,
                    callee=callee,
                    line=call.line,
                    col=call.col,
                    awaited=call.awaited,
                    in_async=call.in_async,
                )
            )
            callee_module = graph.symbols[callee].module
            if callee_module != index.module:
                deps.add(callee_module)
    return graph


def strongly_connected_components(
    graph: CallGraph,
) -> list[tuple[str, ...]]:
    """Tarjan's SCCs over the resolved edges, iteratively (no recursion
    limit), in reverse topological order — callees' components come
    before their callers', which is exactly the order the effect
    fixpoint wants to process them in."""
    index_counter = 0
    indices: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[tuple[str, ...]] = []
    nodes = sorted(graph.symbols)

    for root in nodes:
        if root in indices:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_i = work[-1]
            if edge_i == 0:
                indices[node] = lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            callees = graph.callees(node)
            for next_i in range(edge_i, len(callees)):
                callee = callees[next_i].callee
                if callee not in indices:
                    work[-1] = (node, next_i + 1)
                    work.append((callee, 0))
                    advanced = True
                    break
                if callee in on_stack:
                    lowlink[node] = min(lowlink[node], indices[callee])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(tuple(sorted(component)))
    return components


def dependency_closure(
    module: str, deps: dict[str, set[str]]
) -> tuple[str, ...]:
    """``module`` plus every module transitively reachable through
    ``deps`` — the invalidation frontier of the incremental cache."""
    seen: set[str] = set()
    frontier = [module]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        frontier.extend(deps.get(current, ()))
    return tuple(sorted(seen))


def iter_qnames(graph: CallGraph) -> Iterator[str]:
    """Every known function qname, sorted (deterministic iteration)."""
    for qname in sorted(graph.symbols):
        yield qname
