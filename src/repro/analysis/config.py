"""Lint configuration: rule selection and the repo's contract scopes.

The REP rules are *repo-specific*: each one enforces an invariant that a
particular set of modules has signed up for (the sans-IO serving core must
never read a clock, the digest-feeding modules must never iterate an
unordered container, …).  Those scopes are data, not code — they live here
as module-prefix tables on :class:`LintConfig`, so tests can lint a fixture
*as if* it were ``repro.serve.core``, and future modules opt into a
contract by being added to one tuple.

Scope matching is by dotted module-name prefix with an implied boundary:
``"repro.serve"`` covers ``repro.serve`` and ``repro.serve.core`` but not
``repro.served``.  See :func:`module_matches`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable


def module_matches(module: str, prefixes: Iterable[str]) -> bool:
    """Whether dotted ``module`` falls under any of ``prefixes``.

    A prefix matches itself and its submodules only::

        >>> module_matches("repro.serve.core", ("repro.serve",))
        True
        >>> module_matches("repro.served", ("repro.serve",))
        False
    """
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


@dataclass(frozen=True)
class LintConfig:
    """Immutable lint run configuration (rule selection + contract scopes).

    ``select``/``ignore`` hold rule ids (``select=None`` means every
    registered rule).  The remaining fields are the contract scopes each
    rule reads; they default to the repository's real module sets.
    """

    #: Rule ids to run (``None`` = all registered rules).
    select: tuple[str, ...] | None = None
    #: Rule ids to skip (applied after ``select``).
    ignore: tuple[str, ...] = ()

    # -- REP001: seeded-RNG discipline ------------------------------------
    #: Modules allowed to *construct* generators: the seeding utilities
    #: themselves, the worker fan-out that rebuilds generators from
    #: ``SeedSequence`` children, and the seeded entry points (experiment
    #: drivers, dataset generators, the load generator).  Everywhere else
    #: an RNG must arrive as a parameter.
    rng_entry_points: tuple[str, ...] = (
        "repro.utils.rng",
        "repro.batch.parallel",
        "repro.serve.loadgen",
        "repro.experiments",
        "repro.datasets",
    )

    # -- REP002: clock-free modules ---------------------------------------
    #: Modules whose results must be a pure function of their inputs — the
    #: sans-IO serving semantics (transitions take an explicit ``now``) and
    #: the digest-feeding compute layers.  Wall-clock reads here are either
    #: bugs or timing-only measurements that must be suppressed with a
    #: justification.  Deliberately absent: ``repro.batch.schedule`` and
    #: ``repro.engine.core`` (unit cost clocks), ``repro.serve.server`` and
    #: ``repro.serve.loadgen`` (the asyncio/IO shells), and likewise
    #: ``repro.net.server``/``repro.net.client`` (the socket shells) —
    #: but the sans-IO wire layers (``repro.net.protocol``,
    #: ``repro.net.schemas``) are pure bytes/JSON transforms and are held
    #: to the same bar as ``repro.serve.core``.
    clock_free_modules: tuple[str, ...] = (
        "repro.serve.core",
        "repro.serve.batching",
        "repro.serve.admission",
        "repro.serve.protocol",
        "repro.net.protocol",
        "repro.net.schemas",
        "repro.algorithms",
        "repro.aggregation",
        "repro.fairness",
        "repro.groups",
        "repro.mallows",
        "repro.rankings",
        "repro.datasets",
        "repro.batch.cache",
        "repro.batch.container",
        "repro.batch.kernels",
        "repro.batch.parallel",
        "repro.utils",
    )

    # -- REP003: non-blocking async bodies --------------------------------
    #: Modules whose ``async def`` bodies must never block the event loop:
    #: the serving tier and the HTTP frontend over it (whose connection
    #: handlers and client exchanges run on the same loop as dispatch).
    async_modules: tuple[str, ...] = ("repro.serve", "repro.net")

    # -- REP004: cache discipline -----------------------------------------
    #: Modules allowed to construct :class:`~repro.batch.cache.KernelCache`
    #: or mutate ``DEFAULT_CACHE`` — the cache module itself and the engine
    #: sessions that own private caches.
    cache_owners: tuple[str, ...] = (
        "repro.batch.cache",
        "repro.engine",
    )

    # -- REP005: registry-only construction -------------------------------
    #: Modules allowed to call the legacy algorithm constructors directly:
    #: the defining package (implementations call siblings and their own
    #: bases) and the registry whose factories wrap them.
    registry_factories: tuple[str, ...] = (
        "repro.algorithms",
        "repro.engine.registry",
    )

    # -- REP006: ordered-iteration discipline -----------------------------
    #: The digest-feeding modules: anything iterated here can shape a
    #: report, a response stream, or a dispatch-order-observable artefact,
    #: so unordered-container iteration must be ``sorted(…)`` (or carry a
    #: justified suppression).
    digest_modules: tuple[str, ...] = (
        "repro.batch.schedule",
        "repro.engine",
        "repro.experiments.reporting",
    )

    # -- REP007: worker-visible error discipline --------------------------
    #: Code executed inside pool workers or the serving dispatcher, where a
    #: swallowed exception turns into a silent wrong answer or a hung
    #: waiter instead of a visible failure.
    worker_modules: tuple[str, ...] = (
        "repro.batch.parallel",
        "repro.batch.schedule",
        "repro.engine.core",
        "repro.faults",
        "repro.serve.server",
    )

    # -- REP008: bounded-retry discipline ----------------------------------
    #: Code that dispatches work or serves requests, where an unbounded
    #: retry loop turns a persistent fault into a spin.  The supervised
    #: recovery layer itself is in scope — its budgets are the point.
    retry_modules: tuple[str, ...] = (
        "repro.batch.parallel",
        "repro.batch.schedule",
        "repro.engine.core",
        "repro.faults",
        "repro.serve",
        "repro.net",
    )

    # -- REP011: picklable pool payloads ------------------------------------
    #: Modules that hand work to process pools (``executor.submit`` /
    #: ``WorkUnit``): everything they submit crosses a pickle boundary,
    #: so closures, locks, and open files in the payload fail at dispatch
    #: time — on some platforms only, which is the worst kind of failure.
    pool_submit_modules: tuple[str, ...] = (
        "repro.batch.schedule",
        "repro.batch.parallel",
        "repro.engine",
        "repro.faults",
        "repro.serve",
        "repro.experiments",
    )

    def enabled(self, rule_id: str) -> bool:
        """Whether ``rule_id`` survives ``select``/``ignore``."""
        if self.select is not None and rule_id not in self.select:
            return False
        return rule_id not in self.ignore

    def with_rules(
        self,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] = (),
    ) -> "LintConfig":
        """A copy with a different rule selection (scopes unchanged)."""
        return replace(
            self,
            select=None if select is None else tuple(select),
            ignore=tuple(ignore),
        )


#: The repository's default configuration.
DEFAULT_CONFIG = LintConfig()
