"""The ``# repro: noqa[...]`` suppression comment parser.

A finding is silenced by a marker comment **on its own line**::

    start = time.perf_counter()  # repro: noqa[REP002] timing-only: ...

Grammar:

* ``# repro: noqa`` — suppress every rule on the line (blanket form;
  prefer the bracketed form, which survives rule additions);
* ``# repro: noqa[REP001]`` — suppress one rule;
* ``# repro: noqa[REP001,REP006]`` — suppress several (comma-separated,
  spaces allowed).

Anything after the closing bracket is the justification — the linter does
not parse it, but reviewers should expect one (a bare suppression says
"trust me"; a justified one says why the invariant genuinely does not
apply).  A suppression that matches no finding is *stale* and reported
under the reserved id ``REP000`` by the engine, so dead markers cannot
accumulate and quietly swallow the next real violation.

Parsing is token-based (:mod:`tokenize`), so the marker text inside a
string literal is inert — only real comments suppress.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Iterator

#: The marker grammar; ``rules`` is the optional bracketed id list.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?",
)

#: Shape of one rule id inside the brackets.
_RULE_ID_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa`` marker.

    ``rules`` is ``None`` for the blanket form, else the tuple of rule ids
    (normalized to upper case, source order preserved).
    """

    line: int
    col: int
    rules: tuple[str, ...] | None = None

    def covers(self, rule_id: str) -> bool:
        """Whether this marker silences ``rule_id``."""
        return self.rules is None or rule_id in self.rules

    def render_rules(self) -> str:
        """The bracketed id list as written (empty for the blanket form)."""
        if self.rules is None:
            return ""
        return "[" + ",".join(self.rules) + "]"


class SuppressionSyntaxError(ValueError):
    """A marker comment that does not parse (e.g. an empty rule list)."""

    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        self.line = line


def parse_comment(comment: str, line: int, col: int) -> Suppression | None:
    """Parse one comment token's text; ``None`` when it is not a marker.

    >>> parse_comment("# repro: noqa[REP001, rep006] why", 3, 10)
    Suppression(line=3, col=10, rules=('REP001', 'REP006'))
    >>> parse_comment("# an ordinary comment", 1, 0) is None
    True
    """
    match = _NOQA_RE.search(comment)
    if match is None:
        return None
    spec = match.group("rules")
    if spec is None:
        if comment[match.end() : match.end() + 1] == "[":
            # `noqa[...]` whose bracket list did not parse: refuse rather
            # than silently downgrade a typo'd list to a blanket marker.
            raise SuppressionSyntaxError(
                line, "malformed rule id list after `# repro: noqa` "
                "(expected noqa[REPnnn,REPnnn,...])"
            )
        return Suppression(line=line, col=col)
    names = [name.strip() for name in spec.split(",")]
    names = [name for name in names if name]
    if not names:
        raise SuppressionSyntaxError(
            line, "empty rule list in `# repro: noqa[]` (drop the brackets "
            "to suppress every rule, or name the rules)"
        )
    for name in names:
        if not _RULE_ID_RE.match(name):
            raise SuppressionSyntaxError(
                line, f"malformed rule id {name!r} in noqa list"
            )
    return Suppression(
        line=line, col=col, rules=tuple(name.upper() for name in names)
    )


def iter_suppressions(source: str) -> Iterator[Suppression]:
    """Every marker in ``source``, in line order.

    Raises :class:`SuppressionSyntaxError` for malformed markers; plain
    tokenization failures end the scan silently (the engine reports the
    syntax error through ``ast.parse`` instead, with a better message).
    """
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            suppression = parse_comment(
                token.string, token.start[0], token.start[1]
            )
            if suppression is not None:
                yield suppression
    except (tokenize.TokenError, IndentationError):
        return


def find_suppressions(source: str) -> tuple[Suppression, ...]:
    """All markers in ``source`` (one per line — a line's first wins)."""
    by_line: dict[int, Suppression] = {}
    for suppression in iter_suppressions(source):
        by_line.setdefault(suppression.line, suppression)
    return tuple(by_line[line] for line in sorted(by_line))
