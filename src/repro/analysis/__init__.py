"""repro.analysis — the repository's self-hosted static-analysis engine.

The layers beneath this one run on contracts: the ``n_jobs`` byte-equality
guarantee assumes all randomness flows through ``SeedSequence`` children
(never a global RNG), the sans-IO ``ServerCore`` assumes no code path
reads a real clock, the engine's session caches assume kernels reach
memoization through ``active_cache()``.  Until this package, those
contracts were enforced by convention and caught — if at all — by a flaky
digest mismatch hours later.  ``repro.analysis`` turns each one into an
AST lint rule (stdlib :mod:`ast`, no dependencies) that fails at review
time instead.

Quick use (the CLI form is ``repro-fair-ranking lint src/``)::

    >>> from repro.analysis import lint_source
    >>> result = lint_source(
    ...     "import time\\ndef tick():\\n    return time.monotonic()\\n",
    ...     path="snippet.py", module="repro.serve.core",
    ... )
    >>> [(f.rule, f.line) for f in result.active]
    [('REP002', 3)]
    >>> lint_source("x = 1\\n", path="ok.py", module="repro.serve.core").clean
    True

The rule set (details and rationale: ``README.md`` → *Invariants & lint
rules*, and each rule's ``rationale`` attribute):

========  ==============================================================
REP001    global-RNG construction/use outside seeded entry points
REP002    wall-clock reads inside clock-free (sans-IO / digest) modules
REP003    blocking calls inside ``async def`` bodies in ``repro.serve``
REP004    ``KernelCache()`` / ``DEFAULT_CACHE`` use outside cache owners
REP005    legacy algorithm constructors bypassing ``make_algorithm``
REP006    unordered-container iteration in digest-feeding modules
REP007    bare/swallowed ``except`` in worker-executed code
REP000    (reserved) a ``# repro: noqa`` that suppresses nothing — stale
========  ==============================================================

Findings are suppressible per line with ``# repro: noqa[REP002]`` plus a
justification; stale suppressions are themselves findings, so the
suppression inventory can only shrink.
"""

from repro.analysis.config import DEFAULT_CONFIG, LintConfig, module_matches
from repro.analysis.engine import (
    STALE_RULE_ID,
    Finding,
    LintEngine,
    LintError,
    LintResult,
    Rule,
    get_rule,
    iter_rules,
    lint_paths,
    lint_source,
    register_rule,
    rule_ids,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.suppressions import (
    Suppression,
    SuppressionSyntaxError,
    find_suppressions,
)

# Importing the rules module registers the REP rule set.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintEngine",
    "LintError",
    "LintResult",
    "Rule",
    "STALE_RULE_ID",
    "Suppression",
    "SuppressionSyntaxError",
    "find_suppressions",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "module_matches",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
]
