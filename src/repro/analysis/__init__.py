"""repro.analysis — the repository's self-hosted static-analysis engine.

The layers beneath this one run on contracts: the ``n_jobs`` byte-equality
guarantee assumes all randomness flows through ``SeedSequence`` children
(never a global RNG), the sans-IO ``ServerCore`` assumes no code path
reads a real clock, the engine's session caches assume kernels reach
memoization through ``active_cache()``.  Until this package, those
contracts were enforced by convention and caught — if at all — by a flaky
digest mismatch hours later.  ``repro.analysis`` turns each one into an
AST lint rule (stdlib :mod:`ast`, no dependencies) that fails at review
time instead.

Quick use (the CLI form is ``repro-fair-ranking lint src/``)::

    >>> from repro.analysis import lint_source
    >>> result = lint_source(
    ...     "import time\\ndef tick():\\n    return time.monotonic()\\n",
    ...     path="snippet.py", module="repro.serve.core",
    ... )
    >>> [(f.rule, f.line) for f in result.active]
    [('REP002', 3)]
    >>> lint_source("x = 1\\n", path="ok.py", module="repro.serve.core").clean
    True

The rule set (details and rationale: ``README.md`` → *Invariants & lint
rules*, and each rule's ``rationale`` attribute):

========  ==============================================================
REP001    global-RNG construction/use outside seeded entry points
REP002    wall-clock reads inside clock-free (sans-IO / digest) modules
REP003    blocking calls inside ``async def`` bodies in ``repro.serve``
REP004    ``KernelCache()`` / ``DEFAULT_CACHE`` use outside cache owners
REP005    legacy algorithm constructors bypassing ``make_algorithm``
REP006    unordered-container iteration in digest-feeding modules
REP007    bare/swallowed ``except`` in worker-executed code
REP008    unbounded retry loops in worker-dispatch/serving code
REP009    indirect wall-clock/RNG reach (transitive, witness-carrying)
REP010    sync call from ``async def`` into a transitively blocking callee
REP011    unpicklable objects handed to the process pool
REP000    (reserved) a ``# repro: noqa`` that suppresses nothing — stale
          or naming a rule id that does not exist
========  ==============================================================

REP009–REP011 are *interprocedural*: pass 1
(:mod:`repro.analysis.callgraph`) builds a project symbol table and call
graph, pass 2 (:mod:`repro.analysis.effects`) propagates per-function
effect sets over it to an SCC-aware fixpoint, and the rules consume the
propagated facts — so ``helper()`` → ``time.time()`` is caught with a
witness chain.  Whole-project runs are made cheap by the incremental
cache (:mod:`repro.analysis.cache`).

Findings are suppressible per line with ``# repro: noqa[REP002]`` plus a
justification; stale suppressions are themselves findings, so the
suppression inventory can only shrink.
"""

from repro.analysis.cache import DEFAULT_CACHE_PATH, LintCache
from repro.analysis.callgraph import (
    CallGraph,
    ModuleIndex,
    build_call_graph,
    index_module,
    strongly_connected_components,
)
from repro.analysis.config import DEFAULT_CONFIG, LintConfig, module_matches
from repro.analysis.effects import (
    ModuleSummary,
    ProjectEffects,
    analyze_project,
    propagate_effects,
    summarize_module,
    summarize_source,
)
from repro.analysis.engine import (
    STALE_RULE_ID,
    Finding,
    LintEngine,
    LintError,
    LintResult,
    ProjectContext,
    Rule,
    get_rule,
    iter_rules,
    lint_paths,
    lint_source,
    register_rule,
    rule_ids,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.suppressions import (
    Suppression,
    SuppressionSyntaxError,
    find_suppressions,
)

# Importing the rules module registers the REP rule set.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "CallGraph",
    "DEFAULT_CACHE_PATH",
    "DEFAULT_CONFIG",
    "Finding",
    "LintCache",
    "LintConfig",
    "LintEngine",
    "LintError",
    "LintResult",
    "ModuleIndex",
    "ModuleSummary",
    "ProjectContext",
    "ProjectEffects",
    "Rule",
    "STALE_RULE_ID",
    "Suppression",
    "SuppressionSyntaxError",
    "analyze_project",
    "build_call_graph",
    "find_suppressions",
    "get_rule",
    "index_module",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "module_matches",
    "propagate_effects",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
    "strongly_connected_components",
    "summarize_module",
    "summarize_source",
]
