"""The lint engine: one AST walk, a string-keyed rule registry, findings.

Mirror of the serving side's :mod:`repro.engine.registry`: rules register
under stable string ids (``"REP001"``), surfaces iterate the registry as
data (:func:`rule_ids`, :func:`iter_rules`), and a run is an engine call —
:func:`lint_source` for one buffer, :func:`lint_paths` for a tree.

Since the interprocedural pass landed, a run is **two-pass**:

1. *summarize* — every file gets one AST walk offering each node to the
   per-module rules (REP001–REP008), plus the pass-1 index and base
   effect sets of :mod:`repro.analysis.callgraph` /
   :mod:`repro.analysis.effects`.  Summaries are pure functions of the
   source text, which is what the incremental cache
   (:mod:`repro.analysis.cache`) stores;
2. *project* — the call graph is assembled over every summary, effects
   are propagated to a fixpoint, and the transitive rules
   (REP009–REP011) turn the propagated facts into findings carrying a
   witness chain.

Only then are ``# repro: noqa[...]`` suppressions applied — so a noqa
can silence a transitive finding, and stale/unknown-id suppressions are
judged against the *complete* finding set — and stale suppressions are
reported under the reserved id :data:`STALE_RULE_ID`.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.analysis.callgraph import collect_import_aliases, dotted_name
from repro.analysis.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.suppressions import (
    Suppression,
    SuppressionSyntaxError,
    find_suppressions,
)

if TYPE_CHECKING:  # runtime imports are lazy (see _project_pass)
    from repro.analysis.cache import LintCache
    from repro.analysis.effects import ModuleSummary, ProjectEffects

__all__ = [
    "Finding",
    "LintContext",
    "LintEngine",
    "LintError",
    "LintResult",
    "ProjectContext",
    "Rule",
    "STALE_RULE_ID",
    "dotted_name",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register_rule",
    "rule_ids",
]

#: Reserved id under which stale ``noqa`` comments are reported (a
#: suppression that matches no finding is itself a finding), as are
#: ``noqa`` markers naming rule ids that do not exist (typos suppress
#: nothing and must not linger looking load-bearing).
STALE_RULE_ID = "REP000"


@dataclass(frozen=True)
class Finding:
    """One lint finding, pinned to a source location.

    ``suppressed`` findings matched a ``# repro: noqa[...]`` comment on
    their line; they are kept (reporters can show them) but never fail a
    run.  ``witness`` is the transitive call chain for interprocedural
    findings (REP009/REP010): outermost caller first, primitive last.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    witness: tuple[str, ...] = ()

    def location(self) -> str:
        """``path:line:col`` with a 1-based column — the clickable
        prefix reporters print (editors and CI log linkifiers count
        columns from 1; the AST counts from 0)."""
        return f"{self.path}:{self.line}:{self.col + 1}"


@dataclass(frozen=True)
class LintError:
    """A file the engine could not lint (unreadable or unparsable)."""

    path: str
    message: str
    line: int = 0
    col: int = 0


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``summary``/``rationale`` and implement
    :meth:`visit` (per-node, one file at a time) or — for the
    interprocedural rules — :meth:`check_project`, which sees the whole
    project's propagated facts at once.  :meth:`applies` gates per-file
    rules per module (contract scoping).  Rules are stateless — one
    instance serves every file.
    """

    id: str = ""
    summary: str = ""
    #: Why the invariant exists — rendered in ``--explain`` style docs.
    rationale: str = ""
    #: Whether findings come from :meth:`check_project` (pass 2) instead
    #: of the per-node :meth:`visit` walk.
    project: bool = False

    def applies(self, ctx: "LintContext") -> bool:
        """Whether this rule is in scope for ``ctx``'s module."""
        return True

    def visit(
        self, node: ast.AST, ctx: "LintContext"
    ) -> Iterable[tuple[int, int, str]]:
        """Findings for ``node`` as ``(line, col, message)`` triples."""
        return ()

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterable[Finding]:
        """Findings over the whole project (interprocedural rules)."""
        return ()


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a :class:`Rule` subclass to the registry.

    Ids are unique; re-registering an id replaces the entry (mirrors
    ``repro.engine.registry`` semantics so tests can shadow a rule).
    """
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    _RULES[rule.id] = rule
    return cls


def get_rule(rule_id: str) -> Rule:
    """The registered rule for ``rule_id``."""
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(rule_ids())
        raise KeyError(f"unknown rule {rule_id!r}; registered rules: {known}")


def rule_ids() -> tuple[str, ...]:
    """Every registered rule id, sorted."""
    return tuple(sorted(_RULES))


def iter_rules() -> Iterator[Rule]:
    """Every registered rule, in id order."""
    for rule_id in rule_ids():
        yield _RULES[rule_id]


class LintContext:
    """Per-file state the engine exposes to rules during the walk."""

    def __init__(self, path: str, module: str, config: LintConfig):
        self.path = path
        self.module = module
        self.config = config
        #: Ancestors of the node currently offered to rules (outermost
        #: first; the node itself is *not* on the stack).
        self.stack: list[ast.AST] = []
        #: Local name -> dotted origin, from top-level imports
        #: (``import numpy as np`` -> ``{"np": "numpy"}``,
        #: ``from time import perf_counter`` ->
        #: ``{"perf_counter": "time.perf_counter"}``).
        self.imports: dict[str, str] = {}

    # -- structural queries used by the rules ------------------------------

    def parent(self) -> ast.AST | None:
        """The immediate parent of the current node (``None`` at module
        level)."""
        return self.stack[-1] if self.stack else None

    def enclosing_function(
        self,
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost function whose *body* contains the current node."""
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def in_async_function(self) -> bool:
        """Whether the nearest enclosing function is ``async def``."""
        return isinstance(self.enclosing_function(), ast.AsyncFunctionDef)

    def resolve(self, dotted: str) -> str:
        """Rewrite ``dotted``'s head through the import map.

        ``np.random.default_rng`` becomes ``numpy.random.default_rng``
        under ``import numpy as np``; an unmapped head passes through.
        """
        head, sep, rest = dotted.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return dotted
        return origin + sep + rest if rest else origin


@dataclass(frozen=True)
class ProjectContext:
    """What pass 2 hands to the interprocedural rules: every module's
    summary, the propagated effect facts, and the run configuration.

    ``target_modules`` restricts finding generation (``None`` = every
    module) — the incremental cache uses it to recompute only the
    modules whose dependency closure changed.
    """

    summaries: tuple["ModuleSummary", ...]
    effects: "ProjectEffects"
    config: LintConfig
    target_modules: frozenset[str] | None = None

    def in_target(self, module: str) -> bool:
        return self.target_modules is None or module in self.target_modules


def module_name_for(path: str) -> str:
    """Dotted module name of ``path``, walking up through packages.

    ``src/repro/serve/core.py`` -> ``repro.serve.core``; a file outside any
    package (no ``__init__.py`` chain) is just its stem, which keeps
    fixture files scope-neutral unless a test overrides the module.
    """
    directory, filename = os.path.split(os.path.abspath(path))
    stem = os.path.splitext(filename)[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
    return ".".join(reversed(parts)) or stem


@dataclass(frozen=True)
class LintResult:
    """Everything one lint run produced.

    ``findings`` holds every finding (suppressed ones flagged, stale
    suppressions included under :data:`STALE_RULE_ID`), sorted by location.
    """

    findings: tuple[Finding, ...] = ()
    errors: tuple[LintError, ...] = ()
    files: int = 0

    @property
    def active(self) -> tuple[Finding, ...]:
        """The findings that fail a run (unsuppressed)."""
        return tuple(f for f in self.findings if not f.suppressed)

    @property
    def suppressed(self) -> tuple[Finding, ...]:
        """The findings silenced by ``# repro: noqa[...]`` comments."""
        return tuple(f for f in self.findings if f.suppressed)

    @property
    def clean(self) -> bool:
        """Whether the run is gate-passing: no active findings, no errors."""
        return not self.active and not self.errors

    def merged(self, other: "LintResult") -> "LintResult":
        """This result plus ``other`` (multi-file aggregation)."""
        return LintResult(
            findings=self.findings + other.findings,
            errors=self.errors + other.errors,
            files=self.files + other.files,
        )


@dataclass
class _FileRecord:
    """One file's pass-1 output, before suppressions are applied."""

    path: str
    module: str
    summary: "ModuleSummary | None" = None
    errors: tuple[LintError, ...] = ()
    source_hash: str = ""
    cache_hit: bool = False


def source_digest(source: str) -> str:
    """The content hash the incremental cache keys summaries by."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class LintEngine:
    """A configured lint session: walks trees, applies rules, suppresses.

    >>> from repro.analysis import LintEngine
    >>> engine = LintEngine()
    >>> result = engine.lint_source(
    ...     "import numpy as np\\nrng = np.random.default_rng(0)\\n",
    ...     path="snippet.py", module="repro.rankings.snippet",
    ... )
    >>> [(f.rule, f.line) for f in result.active]
    [('REP001', 2)]

    The transitive rules see through calls — the helper here is what
    hides the clock read from the per-module REP002:

    >>> result = engine.lint_source(
    ...     "import time\\n"
    ...     "def helper():\\n"
    ...     "    return time.monotonic()  # repro: noqa[REP002] fixture\\n"
    ...     "def tick():\\n"
    ...     "    return helper()\\n",
    ...     path="core.py", module="repro.serve.core",
    ... )
    >>> result.clean  # the noqa declares the clock read harmless
    True
    """

    def __init__(self, config: LintConfig | None = None):
        self.config = config if config is not None else DEFAULT_CONFIG
        # Every registered rule runs at summarize time (summaries are
        # cached across runs with different --select/--ignore); the
        # selection is applied when findings are finalized.
        self.rules: tuple[Rule, ...] = tuple(iter_rules())

    # -- entry points -------------------------------------------------------

    def lint_source(
        self, source: str, path: str, module: str | None = None
    ) -> LintResult:
        """Lint one source buffer (``module`` overrides scope resolution —
        how fixture tests lint a snippet *as* ``repro.serve.core``).

        Both passes run: the buffer is its own one-module project, so
        intra-module transitive violations (``f -> helper -> time.time``)
        are found even through this single-file entry point.
        """
        record = self._summarize(source, path, module)
        by_path = self._project_pass([record], cache=None)
        return self._finalize(record, by_path.get(record.path, ()))

    def lint_file(self, path: str, module: str | None = None) -> LintResult:
        """Lint one file from disk."""
        record = self._record_for_file(path, module, cache=None)
        by_path = self._project_pass([record], cache=None)
        return self._finalize(record, by_path.get(record.path, ()))

    def lint_paths(
        self,
        paths: Iterable[str],
        cache: "LintCache | None" = None,
    ) -> LintResult:
        """Lint files and directory trees (``*.py``, sorted walk order).

        With ``cache``, unchanged files reuse their stored summaries
        (skipping parse + walk) and modules whose whole dependency
        closure is unchanged reuse their stored transitive findings; the
        caller persists the cache afterwards (``cache.save()``).
        """
        records: list[_FileRecord] = []
        for path in paths:
            for file_path in _python_files(path):
                records.append(
                    self._record_for_file(file_path, None, cache=cache)
                )
        by_path = self._project_pass(records, cache=cache)
        result = LintResult()
        for record in records:
            result = result.merged(
                self._finalize(record, by_path.get(record.path, ()))
            )
        return result

    # -- pass 1: per-file summaries -----------------------------------------

    def _record_for_file(
        self,
        path: str,
        module: str | None,
        cache: "LintCache | None",
    ) -> _FileRecord:
        resolved_module = module if module is not None else module_name_for(path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, ValueError) as exc:
            # ValueError covers UnicodeDecodeError: a file that is not
            # UTF-8 text is unreadable *as Python*, not a crash.
            return _FileRecord(
                path=path,
                module=resolved_module,
                errors=(LintError(path=path, message=str(exc)),),
            )
        digest = source_digest(source)
        if cache is not None:
            summary = cache.load_summary(path, digest)
            if summary is not None:
                return _FileRecord(
                    path=path,
                    module=summary.module,
                    summary=summary,
                    source_hash=digest,
                    cache_hit=True,
                )
        record = self._summarize(source, path, module)
        record.source_hash = digest
        if cache is not None and record.summary is not None:
            cache.store_summary(path, digest, record.summary)
        return record

    def _summarize(
        self, source: str, path: str, module: str | None
    ) -> _FileRecord:
        from repro.analysis.effects import summarize_module

        if module is None:
            module = module_name_for(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return _FileRecord(
                path=path,
                module=module,
                errors=(
                    LintError(
                        path=path,
                        message=f"syntax error: {exc.msg}",
                        line=exc.lineno or 0,
                    ),
                ),
                source_hash=source_digest(source),
            )
        ctx = LintContext(path=path, module=module, config=self.config)
        ctx.imports = collect_import_aliases(tree)
        in_scope = [
            rule
            for rule in self.rules
            if not rule.project and rule.applies(ctx)
        ]
        raw: list[Finding] = []

        def descend(node: ast.AST) -> None:
            for rule in in_scope:
                for line, col, message in rule.visit(node, ctx):
                    raw.append(
                        Finding(
                            rule=rule.id,
                            path=path,
                            line=line,
                            col=col,
                            message=message,
                        )
                    )
            ctx.stack.append(node)
            for child in ast.iter_child_nodes(node):
                descend(child)
            ctx.stack.pop()

        descend(tree)
        errors: tuple[LintError, ...] = ()
        try:
            suppressions: Sequence[Suppression] = find_suppressions(source)
        except SuppressionSyntaxError as exc:
            suppressions = ()
            errors = (LintError(path=path, message=str(exc), line=exc.line),)
        summary = summarize_module(
            tree,
            module,
            path,
            local_findings=raw,
            suppressions=suppressions,
        )
        return _FileRecord(
            path=path,
            module=module,
            summary=summary,
            errors=errors,
            source_hash=source_digest(source),
        )

    # -- pass 2: the project-wide rules -------------------------------------

    def _project_rules(self) -> list[Rule]:
        return [
            rule
            for rule in self.rules
            if rule.project and self.config.enabled(rule.id)
        ]

    def _project_pass(
        self,
        records: Sequence[_FileRecord],
        cache: "LintCache | None",
    ) -> dict[str, tuple[Finding, ...]]:
        """Run the interprocedural rules, returning findings per path."""
        project_rules = self._project_rules()
        summaries = [r.summary for r in records if r.summary is not None]
        if not project_rules or not summaries:
            return {}
        from repro.analysis.callgraph import (
            build_call_graph,
            dependency_closure,
        )
        from repro.analysis.effects import propagate_effects

        hashes = {
            r.summary.module: r.source_hash
            for r in records
            if r.summary is not None
        }
        reused: dict[str, tuple[Finding, ...]] = {}
        targets: set[str] | None = None
        closure_digests: dict[str, str] = {}
        graph = None
        if cache is not None:
            graph = build_call_graph([s.index for s in summaries])
            targets = set()
            for summary in summaries:
                closure = dependency_closure(
                    summary.module, graph.module_deps
                )
                digest = hashlib.sha256(
                    "\n".join(
                        f"{mod}:{hashes.get(mod, '?')}" for mod in closure
                    ).encode("utf-8")
                ).hexdigest()
                closure_digests[summary.module] = digest
                cached = cache.load_project_findings(summary.module, digest)
                if cached is not None:
                    reused[summary.module] = cached
                else:
                    targets.add(summary.module)
            if not targets:
                # Whole-project warm hit: skip propagation entirely.
                cache.note_project(reused=len(reused), recomputed=0)
                return self._group_by_path(reused)

        effects = propagate_effects(summaries, self.config, graph=graph)
        context = ProjectContext(
            summaries=tuple(summaries),
            effects=effects,
            config=self.config,
            target_modules=(
                frozenset(targets) if targets is not None else None
            ),
        )
        fresh: dict[str, list[Finding]] = {}
        for summary in summaries:
            if targets is None or summary.module in targets:
                fresh[summary.module] = []
        for rule in project_rules:
            for finding in rule.check_project(context):
                module = self._module_of(records, finding.path)
                fresh.setdefault(module, []).append(finding)
        combined: dict[str, tuple[Finding, ...]] = dict(reused)
        for module, findings in fresh.items():
            combined[module] = tuple(findings)
            if cache is not None and module in closure_digests:
                cache.store_project_findings(
                    module, closure_digests[module], tuple(findings)
                )
        if cache is not None:
            cache.note_project(reused=len(reused), recomputed=len(fresh))
        return self._group_by_path(combined)

    @staticmethod
    def _module_of(records: Sequence[_FileRecord], path: str) -> str:
        for record in records:
            if record.path == path:
                return record.module
        return module_name_for(path)

    @staticmethod
    def _group_by_path(
        by_module: dict[str, tuple[Finding, ...]],
    ) -> dict[str, tuple[Finding, ...]]:
        by_path: dict[str, list[Finding]] = {}
        for findings in by_module.values():
            for finding in findings:
                by_path.setdefault(finding.path, []).append(finding)
        return {path: tuple(fs) for path, fs in by_path.items()}

    # -- finalization: selection, suppressions, staleness --------------------

    def _enabled_ids(self) -> set[str]:
        return {
            rule.id for rule in self.rules if self.config.enabled(rule.id)
        }

    def _finalize(
        self,
        record: _FileRecord,
        project_findings: Sequence[Finding],
    ) -> LintResult:
        if record.summary is None:
            return LintResult(errors=record.errors, files=1)
        enabled = self._enabled_ids()
        findings = [
            f
            for f in tuple(record.summary.local_findings) + tuple(project_findings)
            if f.rule in enabled
        ]
        findings = self._apply_suppressions(
            findings, record.summary.suppressions, record.path
        )
        findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return LintResult(
            findings=tuple(findings), errors=record.errors, files=1
        )

    def _apply_suppressions(
        self,
        findings: list[Finding],
        suppressions: Sequence[Suppression],
        path: str,
    ) -> list[Finding]:
        by_line: dict[int, Suppression] = {s.line: s for s in suppressions}
        matched: set[int] = set()
        out: list[Finding] = []
        for finding in findings:
            suppression = by_line.get(finding.line)
            if suppression is not None and suppression.covers(finding.rule):
                matched.add(suppression.line)
                finding = replace(finding, suppressed=True)
            out.append(finding)
        if self.config.enabled(STALE_RULE_ID):
            known = set(rule_ids()) | {STALE_RULE_ID}
            for suppression in suppressions:
                unknown = tuple(
                    rule
                    for rule in (suppression.rules or ())
                    if rule not in known
                )
                for rule in unknown:
                    out.append(
                        Finding(
                            rule=STALE_RULE_ID,
                            path=path,
                            line=suppression.line,
                            col=suppression.col,
                            message=(
                                f"unknown rule id {rule!r} in `# repro: "
                                "noqa[...]` — no such rule is registered, "
                                "so this marker suppresses nothing "
                                "(likely a typo; known ids: "
                                f"{', '.join(rule_ids())})"
                            ),
                        )
                    )
                if unknown:
                    continue  # the typo diagnosis subsumes staleness
                if suppression.line in matched:
                    continue
                if not self._stale_checkable(suppression):
                    continue
                out.append(
                    Finding(
                        rule=STALE_RULE_ID,
                        path=path,
                        line=suppression.line,
                        col=suppression.col,
                        message=(
                            "stale suppression: this `# repro: noqa"
                            f"{suppression.render_rules()}` matches no "
                            "finding — remove it (suppressions must earn "
                            "their keep, or they hide the next real "
                            "violation)"
                        ),
                    )
                )
        return out

    def _stale_checkable(self, suppression: Suppression) -> bool:
        """Stale-check only suppressions whose rules all ran: under
        ``--select REP006`` a ``noqa[REP001]`` is dormant, not stale."""
        enabled = self._enabled_ids()
        if suppression.rules is None:
            return set(rule_ids()) <= enabled | {STALE_RULE_ID}
        return set(suppression.rules) <= enabled


def _python_files(path: str) -> Iterator[str]:
    """``path`` itself (a file), or every ``*.py`` under it, sorted."""
    if os.path.isfile(path):
        yield path
        return
    for root, dirs, files in os.walk(path):
        dirs.sort()
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def lint_paths(
    paths: Iterable[str],
    config: LintConfig | None = None,
    cache: "LintCache | None" = None,
) -> LintResult:
    """One-call façade: lint ``paths`` under ``config`` (or the default)."""
    return LintEngine(config).lint_paths(paths, cache=cache)


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
) -> LintResult:
    """One-call façade over :meth:`LintEngine.lint_source`."""
    return LintEngine(config).lint_source(source, path=path, module=module)
