"""The lint engine: one AST walk, a string-keyed rule registry, findings.

Mirror of the serving side's :mod:`repro.engine.registry`: rules register
under stable string ids (``"REP001"``), surfaces iterate the registry as
data (:func:`rule_ids`, :func:`iter_rules`), and a run is an engine call —
:func:`lint_source` for one buffer, :func:`lint_paths` for a tree.

The walk is single-pass: :class:`LintEngine` descends the tree once,
maintaining the ancestor stack and the module's import map, and offers
every node to every in-scope rule.  Rules are :class:`Rule` subclasses
producing ``(line, col, message)`` triples; the engine stamps them into
:class:`Finding` records, applies the ``# repro: noqa[...]`` suppressions
(:mod:`repro.analysis.suppressions`), and reports stale suppressions under
the reserved id :data:`STALE_RULE_ID`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

from repro.analysis.config import DEFAULT_CONFIG, LintConfig
from repro.analysis.suppressions import (
    Suppression,
    SuppressionSyntaxError,
    find_suppressions,
)

#: Reserved id under which stale ``noqa`` comments are reported (a
#: suppression that matches no finding is itself a finding).
STALE_RULE_ID = "REP000"


@dataclass(frozen=True)
class Finding:
    """One lint finding, pinned to a source location.

    ``suppressed`` findings matched a ``# repro: noqa[...]`` comment on
    their line; they are kept (reporters can show them) but never fail a
    run.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix reporters print."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass(frozen=True)
class LintError:
    """A file the engine could not lint (unreadable or unparsable)."""

    path: str
    message: str
    line: int = 0


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``summary``/``rationale`` and implement
    :meth:`visit`; :meth:`applies` gates the rule per file (contract
    scoping).  Rules are stateless — one instance serves every file.
    """

    id: str = ""
    summary: str = ""
    #: Why the invariant exists — rendered in ``--explain`` style docs.
    rationale: str = ""

    def applies(self, ctx: "LintContext") -> bool:
        """Whether this rule is in scope for ``ctx``'s module."""
        return True

    def visit(
        self, node: ast.AST, ctx: "LintContext"
    ) -> Iterable[tuple[int, int, str]]:
        """Findings for ``node`` as ``(line, col, message)`` triples."""
        return ()


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a :class:`Rule` subclass to the registry.

    Ids are unique; re-registering an id replaces the entry (mirrors
    ``repro.engine.registry`` semantics so tests can shadow a rule).
    """
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    _RULES[rule.id] = rule
    return cls


def get_rule(rule_id: str) -> Rule:
    """The registered rule for ``rule_id``."""
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(rule_ids())
        raise KeyError(f"unknown rule {rule_id!r}; registered rules: {known}")


def rule_ids() -> tuple[str, ...]:
    """Every registered rule id, sorted."""
    return tuple(sorted(_RULES))


def iter_rules() -> Iterator[Rule]:
    """Every registered rule, in id order."""
    for rule_id in rule_ids():
        yield _RULES[rule_id]


class LintContext:
    """Per-file state the engine exposes to rules during the walk."""

    def __init__(self, path: str, module: str, config: LintConfig):
        self.path = path
        self.module = module
        self.config = config
        #: Ancestors of the node currently offered to rules (outermost
        #: first; the node itself is *not* on the stack).
        self.stack: list[ast.AST] = []
        #: Local name -> dotted origin, from top-level imports
        #: (``import numpy as np`` -> ``{"np": "numpy"}``,
        #: ``from time import perf_counter`` ->
        #: ``{"perf_counter": "time.perf_counter"}``).
        self.imports: dict[str, str] = {}

    # -- structural queries used by the rules ------------------------------

    def parent(self) -> ast.AST | None:
        """The immediate parent of the current node (``None`` at module
        level)."""
        return self.stack[-1] if self.stack else None

    def enclosing_function(
        self,
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost function whose *body* contains the current node."""
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    def in_async_function(self) -> bool:
        """Whether the nearest enclosing function is ``async def``."""
        return isinstance(self.enclosing_function(), ast.AsyncFunctionDef)

    def resolve(self, dotted: str) -> str:
        """Rewrite ``dotted``'s head through the import map.

        ``np.random.default_rng`` becomes ``numpy.random.default_rng``
        under ``import numpy as np``; an unmapped head passes through.
        """
        head, sep, rest = dotted.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return dotted
        return origin + sep + rest if rest else origin


def dotted_name(node: ast.AST) -> str | None:
    """The source-level dotted name of a ``Name``/``Attribute`` chain
    (``None`` for anything dynamic, e.g. a subscript in the chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _collect_imports(tree: ast.Module, ctx: LintContext) -> None:
    """Fill ``ctx.imports`` from every ``import`` in the file (any depth —
    local imports are the repo's idiom for optional heavy deps)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                origin = alias.name if alias.asname else local
                ctx.imports[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                ctx.imports[local] = f"{node.module}.{alias.name}"


def module_name_for(path: str) -> str:
    """Dotted module name of ``path``, walking up through packages.

    ``src/repro/serve/core.py`` -> ``repro.serve.core``; a file outside any
    package (no ``__init__.py`` chain) is just its stem, which keeps
    fixture files scope-neutral unless a test overrides the module.
    """
    directory, filename = os.path.split(os.path.abspath(path))
    stem = os.path.splitext(filename)[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
    return ".".join(reversed(parts)) or stem


@dataclass(frozen=True)
class LintResult:
    """Everything one lint run produced.

    ``findings`` holds every finding (suppressed ones flagged, stale
    suppressions included under :data:`STALE_RULE_ID`), sorted by location.
    """

    findings: tuple[Finding, ...] = ()
    errors: tuple[LintError, ...] = ()
    files: int = 0

    @property
    def active(self) -> tuple[Finding, ...]:
        """The findings that fail a run (unsuppressed)."""
        return tuple(f for f in self.findings if not f.suppressed)

    @property
    def suppressed(self) -> tuple[Finding, ...]:
        """The findings silenced by ``# repro: noqa[...]`` comments."""
        return tuple(f for f in self.findings if f.suppressed)

    @property
    def clean(self) -> bool:
        """Whether the run is gate-passing: no active findings, no errors."""
        return not self.active and not self.errors

    def merged(self, other: "LintResult") -> "LintResult":
        """This result plus ``other`` (multi-file aggregation)."""
        return LintResult(
            findings=self.findings + other.findings,
            errors=self.errors + other.errors,
            files=self.files + other.files,
        )


class LintEngine:
    """A configured lint session: walks trees, applies rules, suppresses.

    >>> from repro.analysis import LintEngine
    >>> engine = LintEngine()
    >>> result = engine.lint_source(
    ...     "import numpy as np\\nrng = np.random.default_rng(0)\\n",
    ...     path="snippet.py", module="repro.rankings.snippet",
    ... )
    >>> [(f.rule, f.line) for f in result.active]
    [('REP001', 2)]
    """

    def __init__(self, config: LintConfig | None = None):
        self.config = config if config is not None else DEFAULT_CONFIG
        self.rules: tuple[Rule, ...] = tuple(
            rule for rule in iter_rules() if self.config.enabled(rule.id)
        )

    # -- entry points -------------------------------------------------------

    def lint_source(
        self, source: str, path: str, module: str | None = None
    ) -> LintResult:
        """Lint one source buffer (``module`` overrides scope resolution —
        how fixture tests lint a snippet *as* ``repro.serve.core``)."""
        if module is None:
            module = module_name_for(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return LintResult(
                errors=(
                    LintError(
                        path=path,
                        message=f"syntax error: {exc.msg}",
                        line=exc.lineno or 0,
                    ),
                ),
                files=1,
            )
        ctx = LintContext(path=path, module=module, config=self.config)
        _collect_imports(tree, ctx)
        in_scope = [rule for rule in self.rules if rule.applies(ctx)]
        raw: list[Finding] = []

        def descend(node: ast.AST) -> None:
            for rule in in_scope:
                for line, col, message in rule.visit(node, ctx):
                    raw.append(
                        Finding(
                            rule=rule.id,
                            path=path,
                            line=line,
                            col=col,
                            message=message,
                        )
                    )
            ctx.stack.append(node)
            for child in ast.iter_child_nodes(node):
                descend(child)
            ctx.stack.pop()

        descend(tree)
        errors: tuple[LintError, ...] = ()
        try:
            suppressions: Sequence[Suppression] = find_suppressions(source)
        except SuppressionSyntaxError as exc:
            suppressions = ()
            errors = (LintError(path=path, message=str(exc), line=exc.line),)
        findings = self._apply_suppressions(raw, suppressions, path)
        findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return LintResult(findings=tuple(findings), errors=errors, files=1)

    def lint_file(self, path: str, module: str | None = None) -> LintResult:
        """Lint one file from disk."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            return LintResult(
                errors=(LintError(path=path, message=str(exc)),), files=1
            )
        return self.lint_source(source, path=path, module=module)

    def lint_paths(self, paths: Iterable[str]) -> LintResult:
        """Lint files and directory trees (``*.py``, sorted walk order)."""
        result = LintResult()
        for path in paths:
            for file_path in _python_files(path):
                result = result.merged(self.lint_file(file_path))
        return result

    # -- suppression application -------------------------------------------

    def _apply_suppressions(
        self,
        findings: list[Finding],
        suppressions: Sequence[Suppression],
        path: str,
    ) -> list[Finding]:
        by_line: dict[int, Suppression] = {s.line: s for s in suppressions}
        matched: set[int] = set()
        out: list[Finding] = []
        for finding in findings:
            suppression = by_line.get(finding.line)
            if suppression is not None and suppression.covers(finding.rule):
                matched.add(suppression.line)
                finding = replace(finding, suppressed=True)
            out.append(finding)
        if self.config.enabled(STALE_RULE_ID):
            for suppression in suppressions:
                if suppression.line in matched:
                    continue
                if not self._stale_checkable(suppression):
                    continue
                out.append(
                    Finding(
                        rule=STALE_RULE_ID,
                        path=path,
                        line=suppression.line,
                        col=suppression.col,
                        message=(
                            "stale suppression: this `# repro: noqa"
                            f"{suppression.render_rules()}` matches no "
                            "finding — remove it (suppressions must earn "
                            "their keep, or they hide the next real "
                            "violation)"
                        ),
                    )
                )
        return out

    def _stale_checkable(self, suppression: Suppression) -> bool:
        """Stale-check only suppressions whose rules all ran: under
        ``--select REP006`` a ``noqa[REP001]`` is dormant, not stale."""
        enabled = {rule.id for rule in self.rules}
        if suppression.rules is None:
            return set(rule.id for rule in iter_rules()) <= enabled | {
                STALE_RULE_ID
            }
        return set(suppression.rules) <= enabled


def _python_files(path: str) -> Iterator[str]:
    """``path`` itself (a file), or every ``*.py`` under it, sorted."""
    if os.path.isfile(path):
        yield path
        return
    for root, dirs, files in os.walk(path):
        dirs.sort()
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def lint_paths(
    paths: Iterable[str], config: LintConfig | None = None
) -> LintResult:
    """One-call façade: lint ``paths`` under ``config`` (or the default)."""
    return LintEngine(config).lint_paths(paths)


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
) -> LintResult:
    """One-call façade over :meth:`LintEngine.lint_source`."""
    return LintEngine(config).lint_source(source, path=path, module=module)
