"""Pass 2 of the project analyzer: per-function effect sets, propagated.

Pass 1 (:mod:`repro.analysis.callgraph`) knows *who calls whom*; this
module knows *what that means*.  Each function gets a set of effects
inferred from the same primitives the per-module rules match today —

========  =============================================================
effect    seeded by
========  =============================================================
``WALL_CLOCK``       ``time.time``/``perf_counter``/``datetime.now`` …
``GLOBAL_RNG``       ``np.random.default_rng``, legacy ``np.random.*``,
                     stdlib ``random.*``
``BLOCKING``         ``time.sleep``, ``subprocess.*``, sync ``open`` …
``UNORDERED_ITER``   iteration over sets / bare dict views
``UNBOUNDED_RETRY``  ``while True`` whose handler retries forever
========  =============================================================

— then the direct ("base") effects are propagated transitively over the
call graph to a fixpoint.  Propagation is SCC-aware (recursion and
mutual recursion terminate) and *witness-carrying*: every inherited
effect remembers the call edge it arrived through, so a finding can
print the full chain ``a → b → time.time`` and ``repro lint --explain``
can reconstruct it hop by hop.  Witnesses are well-founded by
construction — a witness is only ever recorded pointing at an
already-grounded fact, so chains never cycle even inside an SCC.

Two deliberate policy choices:

* a primitive on a line whose ``# repro: noqa`` covers the matching
  local rule does **not** seed propagation — a justified suppression is
  a declaration that the effect cannot reach an artefact, and callers
  inherit the justification rather than the effect;
* ``GLOBAL_RNG`` is **absorbed** by the seeded entry-point modules
  (``config.rng_entry_points``): their RNG construction is disciplined
  by contract, so a caller of ``repro.datasets.make_synthetic`` does not
  inherit an RNG effect.  ``WALL_CLOCK`` is *not* absorbed — purity is a
  property of the whole call tree, which is the entire point of the
  transitive rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.analysis.callgraph import (
    CallGraph,
    ModuleIndex,
    build_call_graph,
    index_module,
    strongly_connected_components,
)
from repro.analysis.config import LintConfig, module_matches
from repro.analysis.suppressions import Suppression

if TYPE_CHECKING:  # type-only: engine imports this module lazily at runtime
    from repro.analysis.engine import Finding

# ---------------------------------------------------------------------------
# Effects and the primitive tables the local rules share
# ---------------------------------------------------------------------------

WALL_CLOCK = "wall-clock"
GLOBAL_RNG = "global-rng"
BLOCKING = "blocking"
UNORDERED_ITER = "unordered-iter"
UNBOUNDED_RETRY = "unbounded-retry"

#: Every effect the analyzer infers, in deterministic order.
EFFECTS = (BLOCKING, GLOBAL_RNG, UNBOUNDED_RETRY, UNORDERED_ITER, WALL_CLOCK)

#: The per-module rule that reports the *direct* form of each effect —
#: a noqa covering it on a primitive's line also stops propagation.
EFFECT_LOCAL_RULE = {
    WALL_CLOCK: "REP002",
    GLOBAL_RNG: "REP001",
    BLOCKING: "REP003",
    UNORDERED_ITER: "REP006",
    UNBOUNDED_RETRY: "REP008",
}

#: The transitive rule consuming each effect (where one exists).
EFFECT_TRANSITIVE_RULE = {
    WALL_CLOCK: "REP009",
    GLOBAL_RNG: "REP009",
    BLOCKING: "REP010",
}

CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
    }
)

#: ``numpy.random`` attributes that are *fine* to touch anywhere: the
#: explicit-seeding types the determinism contract is built from.
NP_RANDOM_OK = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


def effect_for_call(name: str) -> str | None:
    """The effect a call to resolved dotted ``name`` carries, or ``None``.

    >>> effect_for_call("time.monotonic")
    'wall-clock'
    >>> effect_for_call("numpy.random.default_rng")
    'global-rng'
    >>> effect_for_call("numpy.random.SeedSequence") is None
    True
    """
    if name in CLOCK_CALLS:
        return WALL_CLOCK
    if name in BLOCKING_CALLS:
        return BLOCKING
    if name == "numpy.random.default_rng":
        return GLOBAL_RNG
    if name.startswith("numpy.random."):
        attr = name.rsplit(".", 1)[1]
        return None if attr in NP_RANDOM_OK else GLOBAL_RNG
    if name == "random" or name.startswith("random."):
        return GLOBAL_RNG
    return None


# -- structural detectors shared with the local rules -----------------------

_DICT_VIEWS = frozenset({"keys", "values", "items"})

#: Builtins whose result does not depend on their argument's iteration
#: order — a generator over ``.items()`` fed straight into one of these
#: is order-free by construction.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all"}
)


def consumed_order_free(parent: ast.AST | None) -> bool:
    """Whether a comprehension is the direct argument of an
    order-insensitive builtin (``sorted(x for x in d.items())``)."""
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in ORDER_INSENSITIVE_CONSUMERS
    )


def unordered_reason(expr: ast.AST) -> str | None:
    """Why ``expr`` iterates in an unverifiable order, or ``None``."""
    if isinstance(expr, ast.Set):
        return "a set literal"
    if isinstance(expr, ast.SetComp):
        return "a set comprehension"
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DICT_VIEWS
            and not expr.args
            and not expr.keywords
        ):
            return f".{func.attr}()"
    return None


def is_unbounded_loop(
    node: ast.AST, resolve: Callable[[str], str]
) -> bool:
    """``while True`` (or ``while 1``), or ``for … in itertools.count()``."""
    if isinstance(node, ast.While):
        test = node.test
        return isinstance(test, ast.Constant) and bool(test.value)
    if isinstance(node, ast.For) and isinstance(node.iter, ast.Call):
        from repro.analysis.callgraph import dotted_name

        name = dotted_name(node.iter.func)
        return name is not None and resolve(name) == "itertools.count"
    return False


def loop_level_statements(loop: ast.While | ast.For) -> Iterator[ast.stmt]:
    """Statements at this loop's own level: descend through ifs/withs/
    tries, but never into nested loops or function/class definitions
    (their ``continue``/``break`` bind elsewhere)."""
    stack: list[ast.stmt] = list(loop.body)
    while stack:
        stmt = stack.pop()
        if isinstance(
            stmt,
            (
                ast.While,
                ast.For,
                ast.AsyncFor,
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
            ),
        ):
            continue
        yield stmt
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            for child in getattr(stmt, field_name, ()) or ():
                if isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)
                elif isinstance(child, ast.stmt):
                    stack.append(child)


def retries_unconditionally(handler: ast.ExceptHandler) -> bool:
    """A handler that loops again on failure with no escape: it contains
    a ``continue`` and no ``raise``/``break``/``return`` at the handler's
    own level (an escape statement is what bounds the retry)."""
    retries = False
    stack: list[ast.stmt] = list(handler.body)
    while stack:
        stmt = stack.pop()
        if isinstance(
            stmt,
            (
                ast.While,
                ast.For,
                ast.AsyncFor,
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
            ),
        ):
            continue
        if isinstance(stmt, (ast.Raise, ast.Break, ast.Return)):
            return False
        if isinstance(stmt, ast.Continue):
            retries = True
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            for child in getattr(stmt, field_name, ()) or ():
                if isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)
                elif isinstance(child, ast.stmt):
                    stack.append(child)
    return retries


# ---------------------------------------------------------------------------
# Module summaries — the unit the incremental cache stores
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EffectSource:
    """One *direct* effect occurrence inside a function body."""

    effect: str
    detail: str
    line: int
    col: int


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the project pass needs to know about one module —
    a pure function of the module's source text (plus the scope config),
    which is what makes it cacheable by content hash."""

    module: str
    path: str
    index: ModuleIndex
    base_effects: tuple[tuple[str, tuple[EffectSource, ...]], ...]
    local_findings: tuple["Finding", ...]
    suppressions: tuple[Suppression, ...]

    def effect_map(self) -> dict[str, tuple[EffectSource, ...]]:
        return dict(self.base_effects)


def _suppressed_effects(
    suppressions: Sequence[Suppression],
) -> dict[int, set[str]]:
    """Line -> effects whose primitives must not seed propagation there
    (the line's noqa covers the matching local or transitive rule)."""
    out: dict[int, set[str]] = {}
    for suppression in suppressions:
        covered: set[str] = set()
        for effect, rule in EFFECT_LOCAL_RULE.items():
            if suppression.covers(rule):
                covered.add(effect)
        for effect, rule in EFFECT_TRANSITIVE_RULE.items():
            if suppression.covers(rule):
                covered.add(effect)
        if covered:
            out.setdefault(suppression.line, set()).update(covered)
    return out


class _StructuralScanner:
    """Collect UNORDERED_ITER / UNBOUNDED_RETRY sources with the same
    qualified-name discipline as the call-graph indexer, so sources land
    on the same function nodes the graph knows about."""

    def __init__(self, module: str, imports: dict[str, str]):
        self.module = module
        self.imports = imports
        self.sources: dict[str, list[EffectSource]] = {}

    def _resolve(self, dotted: str) -> str:
        head, sep, rest = dotted.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return dotted
        return origin + sep + rest if rest else origin

    def _add(self, fn: str | None, source: EffectSource) -> None:
        if fn is not None:
            self.sources.setdefault(fn, []).append(source)

    def scan(self, tree: ast.Module) -> dict[str, list[EffectSource]]:
        self._walk(tree, qname=self.module, fn=None, parent=None)
        return self.sources

    def _walk(
        self,
        node: ast.AST,
        qname: str,
        fn: str | None,
        parent: ast.AST | None,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            child_qname, child_fn = qname, fn
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_qname = f"{qname}.{child.name}"
                child_fn = child_qname
            elif isinstance(child, ast.ClassDef):
                child_qname = f"{qname}.{child.name}"
            self._inspect(child, fn, node)
            self._walk(child, child_qname, child_fn, node)

    def _inspect(
        self, node: ast.AST, fn: str | None, parent: ast.AST | None
    ) -> None:
        iterables: list[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            if not consumed_order_free(parent):
                iterables.extend(gen.iter for gen in node.generators)
        for expr in iterables:
            reason = unordered_reason(expr)
            if reason is not None:
                self._add(
                    fn,
                    EffectSource(
                        effect=UNORDERED_ITER,
                        detail=reason,
                        line=expr.lineno,
                        col=expr.col_offset,
                    ),
                )
        if isinstance(node, (ast.While, ast.For)) and is_unbounded_loop(
            node, self._resolve
        ):
            for stmt in loop_level_statements(node):
                if not isinstance(stmt, ast.Try):
                    continue
                if any(
                    retries_unconditionally(handler)
                    for handler in stmt.handlers
                ):
                    self._add(
                        fn,
                        EffectSource(
                            effect=UNBOUNDED_RETRY,
                            detail="while True retry",
                            line=node.lineno,
                            col=node.col_offset,
                        ),
                    )
                    break


def summarize_module(
    tree: ast.Module,
    module: str,
    path: str,
    local_findings: Sequence["Finding"] = (),
    suppressions: Sequence[Suppression] = (),
) -> ModuleSummary:
    """Build the cacheable pass-1+2 summary for one parsed module."""
    index = index_module(tree, module, path)
    blocked = _suppressed_effects(suppressions)
    sources: dict[str, list[EffectSource]] = {}
    for call in index.calls:
        if call.caller is None:
            continue
        effect = effect_for_call(call.target)
        if effect is None:
            continue
        if effect in blocked.get(call.line, ()):
            continue
        sources.setdefault(call.caller, []).append(
            EffectSource(
                effect=effect,
                detail=call.target,
                line=call.line,
                col=call.col,
            )
        )
    scanner = _StructuralScanner(module, index.import_map())
    for fn, found in scanner.scan(tree).items():
        for source in found:
            if source.effect in blocked.get(source.line, ()):
                continue
            sources.setdefault(fn, []).append(source)
    base = tuple(
        (fn, tuple(sorted(found, key=lambda s: (s.line, s.col, s.effect))))
        for fn, found in sorted(sources.items())
    )
    return ModuleSummary(
        module=module,
        path=path,
        index=index,
        base_effects=base,
        local_findings=tuple(local_findings),
        suppressions=tuple(suppressions),
    )


def summarize_source(
    source: str, module: str, path: str = "<string>"
) -> ModuleSummary:
    """Convenience wrapper for tests: parse and summarize one buffer."""
    return summarize_module(ast.parse(source, filename=path), module, path)


# ---------------------------------------------------------------------------
# Transitive propagation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Witness:
    """Why a function has an effect.

    ``kind == "direct"``: ``detail`` is the primitive (``time.time``) at
    ``line``/``col`` inside the function.  ``kind == "call"``: ``detail``
    is the callee qname whose effect is inherited, through the call at
    ``line``/``col``.
    """

    kind: str
    detail: str
    line: int
    col: int


@dataclass
class ProjectEffects:
    """The propagated facts: for each effect, ``qname -> Witness``."""

    graph: CallGraph
    witnesses: dict[str, dict[str, Witness]] = field(default_factory=dict)

    def has(self, qname: str, effect: str) -> bool:
        return qname in self.witnesses.get(effect, {})

    def witness(self, qname: str, effect: str) -> Witness | None:
        return self.witnesses.get(effect, {}).get(qname)

    def effects_of(self, qname: str) -> tuple[str, ...]:
        """Every effect ``qname`` carries, in deterministic order."""
        return tuple(
            effect for effect in EFFECTS if self.has(qname, effect)
        )

    def chain(self, qname: str, effect: str) -> tuple[Witness, ...]:
        """The witness hops from ``qname`` down to the primitive.

        Well-founded by construction (witnesses only ever point at
        already-grounded facts), but guarded anyway: a corrupted cache
        cannot loop the reconstruction.
        """
        hops: list[Witness] = []
        current = qname
        seen: set[str] = set()
        while current not in seen:
            seen.add(current)
            witness = self.witness(current, effect)
            if witness is None:
                break
            hops.append(witness)
            if witness.kind == "direct":
                break
            current = witness.detail
        return tuple(hops)

    def render_chain(self, qname: str, effect: str) -> str:
        """``a → b → time.time`` — the witness path as one string."""
        parts = [qname]
        for witness in self.chain(qname, effect):
            parts.append(witness.detail)
        return " → ".join(parts)


def propagate_effects(
    summaries: Sequence[ModuleSummary],
    config: LintConfig,
    graph: CallGraph | None = None,
) -> ProjectEffects:
    """Run the SCC-aware fixpoint over the whole project.

    Components arrive from Tarjan in reverse topological order (callees
    first), so a single sweep with an inner per-SCC fixpoint reaches the
    global fixpoint: by the time a component is processed, every fact
    outside it is final.  A prebuilt ``graph`` (the engine builds one for
    cache invalidation anyway) skips the reassembly.
    """
    if graph is None:
        graph = build_call_graph([s.index for s in summaries])
    base: dict[str, dict[str, EffectSource]] = {}
    for summary in summaries:
        for fn, sources in summary.base_effects:
            per_fn = base.setdefault(fn, {})
            for source in sources:
                per_fn.setdefault(source.effect, source)

    absorbing: dict[str, tuple[str, ...]] = {
        GLOBAL_RNG: config.rng_entry_points,
    }
    project = ProjectEffects(graph=graph)
    components = strongly_connected_components(graph)

    for effect in EFFECTS:
        facts: dict[str, Witness] = {}
        absorb_prefixes = absorbing.get(effect, ())

        def absorbed(qname: str) -> bool:
            info = graph.symbols.get(qname)
            if info is None:
                return False
            return module_matches(info.module, absorb_prefixes)

        for component in components:
            changed = True
            while changed:
                changed = False
                for member in component:
                    if member in facts or absorbed(member):
                        continue
                    source = base.get(member, {}).get(effect)
                    if source is not None:
                        facts[member] = Witness(
                            kind="direct",
                            detail=source.detail,
                            line=source.line,
                            col=source.col,
                        )
                        changed = True
                        continue
                    for edge in graph.callees(member):
                        if edge.callee in facts:
                            facts[member] = Witness(
                                kind="call",
                                detail=edge.callee,
                                line=edge.line,
                                col=edge.col,
                            )
                            changed = True
                            break
        project.witnesses[effect] = facts
    return project


def analyze_project(
    summaries: Sequence[ModuleSummary], config: LintConfig
) -> ProjectEffects:
    """One-call façade: build the graph and propagate every effect."""
    return propagate_effects(summaries, config)
