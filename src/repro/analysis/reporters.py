"""Rendering lint results: human text and machine JSON.

The text form is the review-time surface (``path:line:col: RULE message``,
one per line, summary last).  The JSON form is the CI artefact — a stable
schema the lint gate uploads so a red build carries its findings with it::

    {
      "version": 1,
      "clean": false,
      "files": 12,
      "counts": {"active": 2, "suppressed": 3, "errors": 0},
      "findings": [{"rule": "REP001", "path": "...", "line": 7, ...}],
      "errors": []
    }
"""

from __future__ import annotations

import json

from repro.analysis.engine import Finding, LintError, LintResult


def render_text(result: LintResult, *, show_suppressed: bool = False) -> str:
    """The human report: one line per active finding, summary last."""
    lines: list[str] = []
    for error in result.errors:
        # 1-based column, like the findings — editors parse all of these.
        location = (
            f"{error.path}:{error.line}:{error.col + 1}"
            if error.line
            else error.path
        )
        lines.append(f"{location}: error: {error.message}")
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        tag = " (suppressed)" if finding.suppressed else ""
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.message}{tag}"
        )
    active = len(result.active)
    suppressed = len(result.suppressed)
    lines.append(
        f"{result.files} file{'s' if result.files != 1 else ''} checked: "
        f"{active} finding{'s' if active != 1 else ''}"
        f" ({suppressed} suppressed, {len(result.errors)} errors)"
    )
    return "\n".join(lines)


def _finding_payload(finding: Finding) -> dict[str, object]:
    payload: dict[str, object] = {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "suppressed": finding.suppressed,
    }
    # The witness chain is additive and optional: absent for per-module
    # findings, so pre-REP009 consumers of the schema keep working.
    if finding.witness:
        payload["witness"] = list(finding.witness)
    return payload


def _error_payload(error: LintError) -> dict[str, object]:
    return {"path": error.path, "line": error.line, "message": error.message}


def render_json(result: LintResult, *, indent: int | None = 2) -> str:
    """The machine report (schema in the module docstring); key order and
    finding order are deterministic, so two clean runs over one tree are
    byte-identical — the property the CI artefact diffing relies on."""
    payload = {
        "version": 1,
        "clean": result.clean,
        "files": result.files,
        "counts": {
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "errors": len(result.errors),
        },
        "findings": [_finding_payload(f) for f in result.findings],
        "errors": [_error_payload(e) for e in result.errors],
    }
    return json.dumps(payload, indent=indent, sort_keys=False)
