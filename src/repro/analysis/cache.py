"""The incremental lint cache: per-module summaries keyed by content hash.

Whole-project analysis re-parses every module on every run; this cache
makes the warm path cheap without ever being allowed to change the
answer.  Three layers of keying guarantee that:

* **summaries** are keyed by the file's sha256 content hash — a pure
  function of the bytes, so a hit is exactly equivalent to re-running
  pass 1 (:func:`repro.analysis.effects.summarize_module` on the same
  text);
* **project findings** are keyed per module by a *closure digest* — the
  hash of every (module, content-hash) pair in the module's transitive
  import/call dependency closure.  Editing ``repro.utils.rng``
  invalidates the transitive findings of every module that can reach it,
  and nothing else: that is the "invalidated transitively via the module
  dependency graph" contract;
* the whole file is fenced by a **config fingerprint** (contract scopes
  + the registered rule set).  Changing a scope tuple or registering a
  rule silently starts from a cold cache.  ``--select``/``--ignore`` are
  deliberately *excluded*: summaries store findings for every rule and
  the engine filters at finalize, so one cache serves every selection.

The file format is one JSON document (``.repro-lint-cache.json``),
written with sorted keys so the cache itself is byte-deterministic.  A
missing, unreadable, or corrupt cache file degrades to a cold run —
never to an error, and never to a stale answer.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.callgraph import (
    CallSite,
    FunctionInfo,
    ModuleIndex,
    PoolSubmission,
)
from repro.analysis.config import LintConfig
from repro.analysis.effects import EffectSource, ModuleSummary
from repro.analysis.engine import Finding, rule_ids
from repro.analysis.suppressions import Suppression

__all__ = ["CacheStats", "DEFAULT_CACHE_PATH", "LintCache", "config_fingerprint"]

#: Where ``repro lint`` persists the cache unless ``--cache-file`` says
#: otherwise.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"

#: Bumped whenever the summary schema changes shape — an old cache file
#: is then a clean miss instead of a deserialization error.
_FORMAT_VERSION = 1

# The scope fields that shape findings.  select/ignore are excluded on
# purpose (see module docstring).
_SCOPE_FIELDS = (
    "rng_entry_points",
    "clock_free_modules",
    "async_modules",
    "cache_owners",
    "registry_factories",
    "digest_modules",
    "worker_modules",
    "retry_modules",
    "pool_submit_modules",
)


def config_fingerprint(config: LintConfig) -> str:
    """A stable hash of everything cached results depend on besides the
    source text: the contract scopes and the registered rule ids."""
    payload = {
        "version": _FORMAT_VERSION,
        "rules": list(rule_ids()),
        "scopes": {
            name: list(getattr(config, name)) for name in _SCOPE_FIELDS
        },
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CacheStats:
    """What the cache did during one run — the CI artifact payload."""

    summary_hits: int = 0
    summary_misses: int = 0
    project_reused: int = 0
    project_recomputed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "summary_hits": self.summary_hits,
            "summary_misses": self.summary_misses,
            "project_reused": self.project_reused,
            "project_recomputed": self.project_recomputed,
        }


# ---------------------------------------------------------------------------
# (De)serialization — plain dicts, sorted keys, no pickle
# ---------------------------------------------------------------------------


def _finding_to_dict(finding: Finding) -> dict[str, Any]:
    out: dict[str, Any] = {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }
    if finding.witness:
        out["witness"] = list(finding.witness)
    return out


def _finding_from_dict(data: dict[str, Any]) -> Finding:
    return Finding(
        rule=data["rule"],
        path=data["path"],
        line=data["line"],
        col=data["col"],
        message=data["message"],
        witness=tuple(data.get("witness", ())),
    )


def _summary_to_dict(summary: ModuleSummary) -> dict[str, Any]:
    index = summary.index
    return {
        "module": summary.module,
        "path": summary.path,
        "index": {
            "imports": [list(pair) for pair in index.imports],
            "functions": [
                {
                    "qname": f.qname,
                    "line": f.line,
                    "col": f.col,
                    "is_async": f.is_async,
                    "nested_in": f.nested_in,
                }
                for f in index.functions
            ],
            "calls": [
                {
                    "caller": c.caller,
                    "target": c.target,
                    "line": c.line,
                    "col": c.col,
                    "awaited": c.awaited,
                    "in_async": c.in_async,
                }
                for c in index.calls
            ],
            "submissions": [
                {
                    "caller": s.caller,
                    "site": s.site,
                    "reason": s.reason,
                    "detail": s.detail,
                    "line": s.line,
                    "col": s.col,
                }
                for s in index.submissions
            ],
        },
        "base_effects": [
            [
                fn,
                [
                    {
                        "effect": s.effect,
                        "detail": s.detail,
                        "line": s.line,
                        "col": s.col,
                    }
                    for s in sources
                ],
            ]
            for fn, sources in summary.base_effects
        ],
        "local_findings": [
            _finding_to_dict(f) for f in summary.local_findings
        ],
        "suppressions": [
            {
                "line": s.line,
                "col": s.col,
                "rules": None if s.rules is None else list(s.rules),
            }
            for s in summary.suppressions
        ],
    }


def _summary_from_dict(data: dict[str, Any]) -> ModuleSummary:
    module = data["module"]
    path = data["path"]
    raw_index = data["index"]
    index = ModuleIndex(
        module=module,
        path=path,
        imports=tuple((a, b) for a, b in raw_index["imports"]),
        functions=tuple(
            FunctionInfo(
                qname=f["qname"],
                module=module,
                path=path,
                line=f["line"],
                col=f["col"],
                is_async=f["is_async"],
                nested_in=f["nested_in"],
            )
            for f in raw_index["functions"]
        ),
        calls=tuple(
            CallSite(
                caller=c["caller"],
                target=c["target"],
                line=c["line"],
                col=c["col"],
                awaited=c["awaited"],
                in_async=c["in_async"],
            )
            for c in raw_index["calls"]
        ),
        submissions=tuple(
            PoolSubmission(
                caller=s["caller"],
                site=s["site"],
                reason=s["reason"],
                detail=s["detail"],
                line=s["line"],
                col=s["col"],
            )
            for s in raw_index["submissions"]
        ),
    )
    return ModuleSummary(
        module=module,
        path=path,
        index=index,
        base_effects=tuple(
            (
                fn,
                tuple(
                    EffectSource(
                        effect=s["effect"],
                        detail=s["detail"],
                        line=s["line"],
                        col=s["col"],
                    )
                    for s in sources
                ),
            )
            for fn, sources in data["base_effects"]
        ),
        local_findings=tuple(
            _finding_from_dict(f) for f in data["local_findings"]
        ),
        suppressions=tuple(
            Suppression(
                line=s["line"],
                col=s["col"],
                rules=None if s["rules"] is None else tuple(s["rules"]),
            )
            for s in data["suppressions"]
        ),
    )


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------


class LintCache:
    """One run's view of the persisted cache file.

    The engine calls :meth:`load_summary` / :meth:`store_summary` per
    file and :meth:`load_project_findings` / :meth:`store_project_findings`
    per module; the CLI calls :meth:`save` once at the end (the engine
    itself never writes — a read-only run like ``--explain`` can share
    the file safely).
    """

    def __init__(self, path: str, config: LintConfig):
        self.path = path
        self.fingerprint = config_fingerprint(config)
        self.stats = CacheStats()
        self._summaries: dict[str, dict[str, Any]] = {}
        self._projects: dict[str, dict[str, Any]] = {}
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return  # cold start: missing or corrupt cache is a miss, not an error
        if not isinstance(data, dict):
            return
        if data.get("fingerprint") != self.fingerprint:
            return  # scopes or rule set changed: everything is stale
        summaries = data.get("summaries")
        projects = data.get("projects")
        if isinstance(summaries, dict):
            self._summaries = summaries
        if isinstance(projects, dict):
            self._projects = projects

    # -- pass-1 summaries ---------------------------------------------------

    def load_summary(
        self, path: str, content_hash: str
    ) -> ModuleSummary | None:
        entry = self._summaries.get(os.path.abspath(path))
        if entry is None or entry.get("hash") != content_hash:
            self.stats.summary_misses += 1
            return None
        try:
            summary = _summary_from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.stats.summary_misses += 1
            return None
        self.stats.summary_hits += 1
        return summary

    def store_summary(
        self, path: str, content_hash: str, summary: ModuleSummary
    ) -> None:
        self._summaries[os.path.abspath(path)] = {
            "hash": content_hash,
            "summary": _summary_to_dict(summary),
        }

    # -- pass-2 project findings --------------------------------------------

    def load_project_findings(
        self, module: str, closure_digest: str
    ) -> tuple[Finding, ...] | None:
        entry = self._projects.get(module)
        if entry is None or entry.get("closure") != closure_digest:
            return None
        try:
            return tuple(
                _finding_from_dict(f) for f in entry["findings"]
            )
        except (KeyError, TypeError, ValueError):
            return None

    def store_project_findings(
        self, module: str, closure_digest: str, findings: tuple[Finding, ...]
    ) -> None:
        self._projects[module] = {
            "closure": closure_digest,
            "findings": [_finding_to_dict(f) for f in findings],
        }

    def note_project(self, reused: int, recomputed: int) -> None:
        self.stats.project_reused += reused
        self.stats.project_recomputed += recomputed

    # -- persistence --------------------------------------------------------

    def save(self) -> None:
        """Write the cache file (sorted keys — byte-deterministic)."""
        payload = {
            "fingerprint": self.fingerprint,
            "summaries": self._summaries,
            "projects": self._projects,
        }
        blob = json.dumps(payload, sort_keys=True, indent=None)
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(blob)
        os.replace(tmp, self.path)
