"""repro.net — the stdlib HTTP/JSON wire frontend over ``repro.serve``.

Structured like the serving tier itself: a sans-IO protocol core
(:mod:`repro.net.protocol` — bytes in, events out, no sockets, no
clock), versioned JSON schemas (:mod:`repro.net.schemas` — requests,
responses, seeds, and the shared structured error body), a thin
``asyncio.start_server`` shell (:mod:`repro.net.server`), and the
matching keep-alive client (:mod:`repro.net.client`) whose ``submit``
drops into :func:`repro.serve.loadgen.run_load` as a transport.

Quick start::

    engine = RankingEngine(n_jobs=2)
    async with HttpRankingServer(engine, port=0) as server:
        async with AsyncHttpClient(server.host, server.port) as client:
            response = await client.submit(request)

Digests served over HTTP stay byte-identical to the serial loop when
per-request seeds are pinned client-side
(:func:`repro.serve.loadgen.pin_request_seeds`); ``POST /v1/rank_many``
applies the same rule server-side from the batch's root seed.
"""

from repro.net.client import AsyncHttpClient, HttpWireError, raise_for_error
from repro.net.protocol import (
    HttpLimits,
    HttpRequest,
    HttpResponse,
    ProtocolViolation,
    RequestParser,
    ResponseParser,
    encode_request,
    encode_response,
)
from repro.net.schemas import (
    SCHEMA_VERSION,
    WireFormatError,
    decode_rank_many_request,
    decode_rank_request,
    decode_rank_response,
    encode_rank_many_request,
    encode_rank_request,
    encode_rank_response,
    error_body,
    validate_error_body,
)
from repro.net.server import HttpRankingServer

__all__ = [
    "AsyncHttpClient",
    "HttpLimits",
    "HttpRankingServer",
    "HttpRequest",
    "HttpResponse",
    "HttpWireError",
    "ProtocolViolation",
    "RequestParser",
    "ResponseParser",
    "SCHEMA_VERSION",
    "WireFormatError",
    "decode_rank_many_request",
    "decode_rank_request",
    "decode_rank_response",
    "encode_rank_many_request",
    "encode_rank_request",
    "encode_rank_response",
    "encode_request",
    "encode_response",
    "error_body",
    "raise_for_error",
    "validate_error_body",
]
