"""Sans-IO HTTP/1.1 wire protocol for the serving tier.

The network frontend is split the same way ``repro.serve`` is: this
module is the pure protocol core — bytes in, events out — with **no
sockets, no clock, no asyncio**.  A thin shell
(:mod:`repro.net.server`) feeds socket reads into a
:class:`RequestParser` and writes :func:`encode_response` bytes back;
the client (:mod:`repro.net.client`) mirrors it with
:func:`encode_request` and :class:`ResponseParser`.  Because nothing
here touches IO or time, the whole parser/encoder surface is tested
byte-level with zero real sockets (``tests/test_net_protocol.py``).

Scope is deliberately narrow — exactly what the JSON frontend needs:

* incremental request/response parsing with hard header/body limits
  (oversized headers → 431, oversized or undeclared bodies → 413/400);
* ``Content-Length`` framing only (``Transfer-Encoding`` → 501: the
  serving frontend never chunks);
* the HTTP/1.0-vs-1.1 keep-alive state machine, including pipelined
  requests sitting in one ``feed`` buffer;
* response/request encoders that always emit explicit framing.

Malformed input surfaces as a :class:`ProtocolViolation` event carrying
the HTTP status the shell should answer with before closing; after a
violation the parser refuses further input (the connection is dead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

HTTP_VERSIONS = ("HTTP/1.0", "HTTP/1.1")

#: Default cap on the request line + headers block, bytes.
DEFAULT_MAX_HEADER_BYTES = 16 * 1024
#: Default cap on a message body, bytes.  ``rank_many`` batches carry
#: score arrays, so this is generous; the server can lower it.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

REASON_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}

_TOKEN_EXTRA = "!#$%&'*+-.^_`|~"


def _is_token(value: str) -> bool:
    return bool(value) and all(
        c.isalnum() or c in _TOKEN_EXTRA for c in value
    )


@dataclass(frozen=True)
class HttpLimits:
    """Hard parser limits; violation events carry the matching status."""

    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES

    def __post_init__(self) -> None:
        if self.max_header_bytes < 64:
            raise ValueError(
                f"max_header_bytes must be >= 64, got {self.max_header_bytes}"
            )
        if self.max_body_bytes < 0:
            raise ValueError(
                f"max_body_bytes must be >= 0, got {self.max_body_bytes}"
            )


@dataclass(frozen=True)
class HttpRequest:
    """One fully framed request, emitted by :class:`RequestParser`.

    Header names are lower-cased at parse time; ``keep_alive`` already
    folds in the HTTP-version default and any ``Connection`` header.
    """

    method: str
    target: str
    version: str
    headers: tuple[tuple[str, str], ...]
    body: bytes
    keep_alive: bool

    def header(self, name: str, default: str | None = None) -> str | None:
        name = name.lower()
        for key, value in self.headers:
            if key == name:
                return value
        return default


@dataclass(frozen=True)
class HttpResponse:
    """One fully framed response, emitted by :class:`ResponseParser`."""

    status: int
    reason: str
    version: str
    headers: tuple[tuple[str, str], ...]
    body: bytes
    keep_alive: bool

    def header(self, name: str, default: str | None = None) -> str | None:
        name = name.lower()
        for key, value in self.headers:
            if key == name:
                return value
        return default


@dataclass(frozen=True)
class ProtocolViolation:
    """Terminal parse failure; ``status`` is what the shell should send."""

    status: int
    code: str
    message: str


_STATE_HEADERS = "headers"
_STATE_BODY = "body"
_STATE_CLOSED = "closed"
_STATE_FAILED = "failed"


@dataclass
class _Framing:
    """Start-line fields + body length, handed from the header pass to
    the body pass."""

    start: tuple[str, str, str]
    headers: tuple[tuple[str, str], ...]
    body_length: int
    keep_alive: bool


class _MessageParser:
    """Shared incremental machinery for requests and responses.

    Subclasses implement ``_parse_start_line`` and ``_build_event``.
    ``feed`` accumulates bytes and emits zero or more complete events;
    pipelined messages inside one feed all come out in order.
    """

    def __init__(self, limits: HttpLimits | None = None) -> None:
        self.limits = limits or HttpLimits()
        self._buffer = bytearray()
        self._state = _STATE_HEADERS
        self._framing: _Framing | None = None

    # -- subclass hooks ----------------------------------------------------

    def _parse_start_line(self, line: str) -> "tuple[str, str, str] | ProtocolViolation":
        raise NotImplementedError

    def _default_body_length(self) -> "int | ProtocolViolation":
        """Body length when no ``Content-Length`` header is present."""
        return 0

    def _version_of(self, start: tuple[str, str, str]) -> str:
        raise NotImplementedError

    def _build_event(
        self, framing: _Framing, body: bytes
    ) -> "HttpRequest | HttpResponse":
        raise NotImplementedError

    # -- state inspection --------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def failed(self) -> bool:
        return self._state == _STATE_FAILED

    # -- feeding -----------------------------------------------------------

    def feed(self, data: bytes) -> list:
        """Consume ``data``; return every event completed by it.

        After a :class:`ProtocolViolation` (or a ``Connection: close``
        message) further input is silently discarded — the transport
        must be closed.
        """
        if self._state in (_STATE_FAILED, _STATE_CLOSED):
            return []
        self._buffer.extend(data)
        events: list = []
        while True:
            if self._state == _STATE_HEADERS:
                progressed, made = self._try_headers()
            elif self._state == _STATE_BODY:
                progressed, made = self._try_body()
            else:
                break
            if made is not None:
                events.append(made)
                if isinstance(made, ProtocolViolation):
                    self._state = _STATE_FAILED
                    break
            if not progressed:
                break
        return events

    def _fail(self, status: int, code: str, message: str) -> ProtocolViolation:
        return ProtocolViolation(status=status, code=code, message=message)

    def _try_headers(self) -> "tuple[bool, ProtocolViolation | None]":
        """One header-block step: ``(made progress?, violation event)``."""
        end = self._buffer.find(b"\r\n\r\n")
        if end < 0:
            if len(self._buffer) > self.limits.max_header_bytes:
                return True, self._fail(
                    431,
                    "headers_too_large",
                    f"header block exceeds {self.limits.max_header_bytes} bytes",
                )
            return False, None
        if end + 4 > self.limits.max_header_bytes:
            return True, self._fail(
                431,
                "headers_too_large",
                f"header block exceeds {self.limits.max_header_bytes} bytes",
            )
        block = bytes(self._buffer[:end])
        del self._buffer[: end + 4]
        try:
            text = block.decode("ascii")
        except UnicodeDecodeError:
            return True, self._fail(
                400, "bad_header_encoding", "headers are not ASCII"
            )
        lines = text.split("\r\n")
        start = self._parse_start_line(lines[0])
        if isinstance(start, ProtocolViolation):
            return True, start
        headers: list[tuple[str, str]] = []
        for line in lines[1:]:
            if not line:
                return True, self._fail(400, "bad_header", "empty header line")
            if line[0] in " \t":
                return True, self._fail(
                    400, "bad_header", "obsolete header line folding"
                )
            name, sep, value = line.partition(":")
            if not sep or not _is_token(name):
                return True, self._fail(
                    400, "bad_header", f"malformed header {line!r}"
                )
            headers.append((name.lower(), value.strip()))
        framing = self._frame(start, tuple(headers))
        if isinstance(framing, ProtocolViolation):
            return True, framing
        self._framing = framing
        self._state = _STATE_BODY
        return True, None

    def _frame(
        self,
        start: tuple[str, str, str],
        headers: tuple[tuple[str, str], ...],
    ) -> "_Framing | ProtocolViolation":
        header_map: dict[str, str] = {}
        for name, value in headers:
            if name in ("content-length", "transfer-encoding") and name in header_map:
                return self._fail(400, "bad_header", f"duplicate {name} header")
            header_map.setdefault(name, value)
        if "transfer-encoding" in header_map:
            return self._fail(
                501,
                "transfer_encoding_unsupported",
                "Transfer-Encoding is not supported; use Content-Length",
            )
        raw_length = header_map.get("content-length")
        if raw_length is None:
            length = self._default_body_length()
            if isinstance(length, ProtocolViolation):
                return length
        elif not raw_length.isdigit():
            return self._fail(
                400, "bad_content_length", f"invalid Content-Length {raw_length!r}"
            )
        else:
            length = int(raw_length)
        if length > self.limits.max_body_bytes:
            return self._fail(
                413,
                "body_too_large",
                f"declared body of {length} bytes exceeds "
                f"{self.limits.max_body_bytes}",
            )
        version = self._version_of(start)
        connection = header_map.get("connection", "").lower()
        if version == "HTTP/1.0":
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        return _Framing(
            start=start,
            headers=headers,
            body_length=length,
            keep_alive=keep_alive,
        )

    def _try_body(self) -> "tuple[bool, HttpRequest | HttpResponse | None]":
        framing = self._framing
        assert framing is not None
        if len(self._buffer) < framing.body_length:
            return False, None
        body = bytes(self._buffer[: framing.body_length])
        del self._buffer[: framing.body_length]
        self._framing = None
        self._state = _STATE_HEADERS if framing.keep_alive else _STATE_CLOSED
        return True, self._build_event(framing, body)


class RequestParser(_MessageParser):
    """Incremental server-side parser: bytes in, :class:`HttpRequest`
    (or :class:`ProtocolViolation`) events out."""

    def _parse_start_line(
        self, line: str
    ) -> "tuple[str, str, str] | ProtocolViolation":
        parts = line.split(" ")
        if len(parts) != 3:
            return self._fail(400, "bad_request_line", f"malformed request line {line!r}")
        method, target, version = parts
        if not _is_token(method):
            return self._fail(400, "bad_request_line", f"malformed method {method!r}")
        if not target or " " in target:
            return self._fail(400, "bad_request_line", f"malformed target {target!r}")
        if version not in HTTP_VERSIONS:
            if version.startswith("HTTP/"):
                return self._fail(
                    505, "version_unsupported", f"unsupported version {version!r}"
                )
            return self._fail(400, "bad_request_line", f"malformed version {version!r}")
        return (method, target, version)

    def _version_of(self, start: tuple[str, str, str]) -> str:
        return start[2]

    def _build_event(self, framing: _Framing, body: bytes) -> HttpRequest:
        method, target, version = framing.start
        return HttpRequest(
            method=method,
            target=target,
            version=version,
            headers=framing.headers,
            body=body,
            keep_alive=framing.keep_alive,
        )


class ResponseParser(_MessageParser):
    """Incremental client-side parser: bytes in, :class:`HttpResponse`
    events out.

    The serving frontend always emits explicit ``Content-Length``
    framing, so a missing length is treated as an empty body rather
    than read-until-EOF.
    """

    def _parse_start_line(
        self, line: str
    ) -> "tuple[str, str, str] | ProtocolViolation":
        parts = line.split(" ", 2)
        if len(parts) < 2:
            return self._fail(400, "bad_status_line", f"malformed status line {line!r}")
        version = parts[0]
        if version not in HTTP_VERSIONS:
            return self._fail(400, "bad_status_line", f"unsupported version {version!r}")
        if not parts[1].isdigit() or len(parts[1]) != 3:
            return self._fail(400, "bad_status_line", f"malformed status {parts[1]!r}")
        reason = parts[2] if len(parts) == 3 else ""
        return (version, parts[1], reason)

    def _version_of(self, start: tuple[str, str, str]) -> str:
        return start[0]

    def _build_event(self, framing: _Framing, body: bytes) -> HttpResponse:
        version, status, reason = framing.start
        return HttpResponse(
            status=int(status),
            reason=reason,
            version=version,
            headers=framing.headers,
            body=body,
            keep_alive=framing.keep_alive,
        )


def encode_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
    keep_alive: bool = True,
    reason: str | None = None,
) -> bytes:
    """Serialize one HTTP/1.1 response with explicit framing.

    ``Content-Length`` is always emitted (also for empty bodies) so the
    client parser never needs read-until-EOF; ``Connection: close`` is
    emitted when ``keep_alive`` is off, which is also how the server
    tells clients a drain has begun.
    """
    phrase = reason if reason is not None else REASON_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}"]
    if body:
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    if not keep_alive:
        lines.append("Connection: close")
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("ascii") + b"\r\n\r\n"
    return head + body


def encode_request(
    method: str,
    target: str,
    *,
    host: str,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    """Serialize one HTTP/1.1 request with explicit framing."""
    lines = [f"{method} {target} HTTP/1.1", f"Host: {host}"]
    if body:
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    if not keep_alive:
        lines.append("Connection: close")
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("ascii") + b"\r\n\r\n"
    return head + body


__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_HEADER_BYTES",
    "HttpLimits",
    "HttpRequest",
    "HttpResponse",
    "ProtocolViolation",
    "REASON_PHRASES",
    "RequestParser",
    "ResponseParser",
    "encode_request",
    "encode_response",
]
