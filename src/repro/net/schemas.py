"""Versioned JSON wire schemas for the HTTP frontend.

Everything the frontend puts on the wire round-trips through this
module: :class:`~repro.engine.core.RankingRequest` (including its seed,
so a served digest stays byte-identical to the serial loop),
:class:`~repro.engine.core.RankingResponse`, and the structured error
body shared by every 4xx/5xx answer.

Schema versioning is explicit — every request/response envelope carries
``"version": 1`` and decoding rejects anything else, so a future v2 can
coexist behind the same endpoints.  Seeds are the subtle part: a pinned
:class:`numpy.random.SeedSequence` (e.g. a child spawned by
:func:`repro.serve.loadgen.pin_request_seeds`) is not reconstructible
from an int, so it travels as ``{"entropy": ..., "spawn_key": [...]}``.

Decoding is strict: any malformed field raises :class:`WireFormatError`
with the offending path, which the server maps to a 400 with the
structured error body.  This module is pure data transformation — no
clock, no RNG draws, no IO — and sits under the same clock-free lint
contract as :mod:`repro.net.protocol`.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

import numpy as np

from repro.algorithms.base import FairRankingProblem
from repro.engine.core import RankingRequest, RankingResponse
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike

SCHEMA_VERSION = 1

#: Error codes shared between the server's error responses and the
#: client's exception mapping.
ERROR_CODES = (
    "bad_request",
    "body_too_large",
    "deadline_exceeded",
    "headers_too_large",
    "internal_error",
    "method_not_allowed",
    "not_found",
    "overloaded",
    "pool_recovery_exhausted",
    "protocol_error",
    "server_closed",
    "unhealthy",
)


class WireFormatError(ValueError):
    """A JSON payload does not conform to the v1 schema (HTTP 400)."""


def _require(obj: Mapping[str, Any], key: str, where: str) -> Any:
    if key not in obj:
        raise WireFormatError(f"{where}: missing required field {key!r}")
    return obj[key]


def _require_mapping(obj: Any, where: str) -> Mapping[str, Any]:
    if not isinstance(obj, Mapping):
        raise WireFormatError(f"{where}: expected an object, got {type(obj).__name__}")
    return obj


def _require_version(obj: Mapping[str, Any], where: str) -> None:
    version = _require(obj, "version", where)
    if version != SCHEMA_VERSION:
        raise WireFormatError(
            f"{where}: unsupported schema version {version!r} "
            f"(this frontend speaks {SCHEMA_VERSION})"
        )


def _int_list(obj: Any, where: str) -> list[int]:
    if not isinstance(obj, Sequence) or isinstance(obj, (str, bytes)):
        raise WireFormatError(f"{where}: expected a list of ints")
    out = []
    for i, value in enumerate(obj):
        if isinstance(value, bool) or not isinstance(value, int):
            raise WireFormatError(f"{where}[{i}]: expected an int, got {value!r}")
        out.append(value)
    return out


def _float_list(obj: Any, where: str) -> list[float]:
    if not isinstance(obj, Sequence) or isinstance(obj, (str, bytes)):
        raise WireFormatError(f"{where}: expected a list of numbers")
    out = []
    for i, value in enumerate(obj):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise WireFormatError(f"{where}[{i}]: expected a number, got {value!r}")
        out.append(float(value))
    return out


# -- seeds -------------------------------------------------------------------


def encode_seed(seed: SeedLike) -> Any:
    """``None`` | int | ``{"entropy", "spawn_key"}`` for a SeedSequence.

    Generators are rejected: their state is not portable, and the serial
    determinism contract is defined over ints / SeedSequences.
    """
    if seed is None or isinstance(seed, int):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        if isinstance(seed.entropy, bool) or not isinstance(seed.entropy, int):
            raise WireFormatError(
                "only int-entropy SeedSequences are wire-encodable, "
                f"got entropy {seed.entropy!r}"
            )
        return {
            "entropy": seed.entropy,
            "spawn_key": [int(k) for k in seed.spawn_key],
        }
    raise WireFormatError(
        f"seed of type {type(seed).__name__} is not wire-encodable; "
        "pin an int or SeedSequence"
    )


def decode_seed(obj: Any, where: str = "seed") -> SeedLike:
    if obj is None:
        return None
    if isinstance(obj, bool):
        raise WireFormatError(f"{where}: expected null, int or object")
    if isinstance(obj, int):
        return obj
    if isinstance(obj, Mapping):
        entropy = _require(obj, "entropy", where)
        if isinstance(entropy, bool) or not isinstance(entropy, int) or entropy < 0:
            raise WireFormatError(f"{where}.entropy: expected a non-negative int")
        spawn_key = _int_list(obj.get("spawn_key", []), f"{where}.spawn_key")
        return np.random.SeedSequence(
            entropy=entropy, spawn_key=tuple(spawn_key)
        )
    raise WireFormatError(f"{where}: expected null, int or object, got {obj!r}")


# -- problems ----------------------------------------------------------------


def encode_problem(problem: FairRankingProblem) -> dict[str, Any]:
    groups = None
    if problem.groups is not None:
        labels = []
        for i in range(problem.groups.n_items):
            label = problem.groups.group_of(i)
            if isinstance(label, bool) or not isinstance(label, (str, int, float)):
                raise WireFormatError(
                    f"group label {label!r} is not wire-encodable; "
                    "use str/int/float labels"
                )
            labels.append(label)
        groups = labels
    constraints = None
    if problem.constraints is not None:
        constraints = {
            "alpha": [float(a) for a in problem.constraints.alpha],
            "beta": [float(b) for b in problem.constraints.beta],
            "k": int(problem.constraints.k),
        }
    return {
        "base_ranking": [int(i) for i in problem.base_ranking.order],
        "scores": (
            None
            if problem.scores is None
            else [float(s) for s in problem.scores]
        ),
        "groups": groups,
        "constraints": constraints,
    }


def decode_problem(obj: Any, where: str = "problem") -> FairRankingProblem:
    obj = _require_mapping(obj, where)
    order = _int_list(_require(obj, "base_ranking", where), f"{where}.base_ranking")
    scores_raw = obj.get("scores")
    scores = (
        None
        if scores_raw is None
        else np.array(_float_list(scores_raw, f"{where}.scores"), dtype=np.float64)
    )
    groups_raw = obj.get("groups")
    groups = None
    if groups_raw is not None:
        if not isinstance(groups_raw, Sequence) or isinstance(groups_raw, (str, bytes)):
            raise WireFormatError(f"{where}.groups: expected a list of labels")
        groups = GroupAssignment(list(groups_raw))
    constraints_raw = obj.get("constraints")
    constraints = None
    if constraints_raw is not None:
        cmap = _require_mapping(constraints_raw, f"{where}.constraints")
        k = _require(cmap, "k", f"{where}.constraints")
        if isinstance(k, bool) or not isinstance(k, int):
            raise WireFormatError(f"{where}.constraints.k: expected an int")
        constraints = FairnessConstraints(
            alpha=np.array(
                _float_list(_require(cmap, "alpha", f"{where}.constraints"),
                            f"{where}.constraints.alpha"),
                dtype=np.float64,
            ),
            beta=np.array(
                _float_list(_require(cmap, "beta", f"{where}.constraints"),
                            f"{where}.constraints.beta"),
                dtype=np.float64,
            ),
            k=k,
        )
    try:
        return FairRankingProblem(
            base_ranking=Ranking(np.array(order, dtype=np.int64)),
            scores=scores,
            groups=groups,
            constraints=constraints,
        )
    except Exception as exc:
        raise WireFormatError(f"{where}: invalid problem: {exc}") from exc


# -- requests ----------------------------------------------------------------


def encode_rank_request(
    request: RankingRequest, *, deadline: float | None = None
) -> dict[str, Any]:
    """The ``POST /v1/rank`` body for one request."""
    if not isinstance(request.params, Mapping):
        raise WireFormatError("params must be a mapping")
    body: dict[str, Any] = {
        "version": SCHEMA_VERSION,
        "algorithm": request.algorithm,
        "problem": encode_problem(request.problem),
        "params": json_safe(dict(request.params)),
        "seed": encode_seed(request.seed),
        "request_id": json_safe(request.request_id),
    }
    if deadline is not None:
        body["deadline_s"] = float(deadline)
    return body


def decode_rank_request(obj: Any) -> tuple[RankingRequest, float | None]:
    """Decode a ``POST /v1/rank`` body → (request, per-request deadline)."""
    obj = _require_mapping(obj, "request")
    _require_version(obj, "request")
    algorithm = _require(obj, "algorithm", "request")
    if not isinstance(algorithm, str) or not algorithm:
        raise WireFormatError("request.algorithm: expected a non-empty string")
    params_raw = obj.get("params", {})
    params = dict(_require_mapping(params_raw, "request.params"))
    deadline_raw = obj.get("deadline_s")
    deadline: float | None = None
    if deadline_raw is not None:
        if isinstance(deadline_raw, bool) or not isinstance(deadline_raw, (int, float)):
            raise WireFormatError("request.deadline_s: expected a number")
        deadline = float(deadline_raw)
    request = RankingRequest(
        algorithm=algorithm,
        problem=decode_problem(_require(obj, "problem", "request"), "request.problem"),
        params=params,
        seed=decode_seed(obj.get("seed"), "request.seed"),
        request_id=obj.get("request_id"),
    )
    return request, deadline


def encode_rank_many_request(
    requests: Sequence[RankingRequest],
    *,
    seed: SeedLike = None,
    deadline: float | None = None,
) -> dict[str, Any]:
    """The ``POST /v1/rank_many`` body: a batch plus its root seed.

    ``seed`` plays the role of :meth:`RankingEngine.rank_many`'s ``seed``
    argument — requests with ``seed is None`` get the root's spawned
    child at their batch index, server-side.
    """
    body: dict[str, Any] = {
        "version": SCHEMA_VERSION,
        "seed": encode_seed(seed),
        "requests": [encode_rank_request(r) for r in requests],
    }
    if deadline is not None:
        body["deadline_s"] = float(deadline)
    return body


def decode_rank_many_request(
    obj: Any,
) -> tuple[list[RankingRequest], SeedLike, float | None]:
    obj = _require_mapping(obj, "batch")
    _require_version(obj, "batch")
    raw = _require(obj, "requests", "batch")
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise WireFormatError("batch.requests: expected a list")
    if not raw:
        raise WireFormatError("batch.requests: must not be empty")
    requests = []
    for i, item in enumerate(raw):
        try:
            request, _ = decode_rank_request(item)
        except WireFormatError as exc:
            raise WireFormatError(f"batch.requests[{i}]: {exc}") from exc
        requests.append(request)
    deadline_raw = obj.get("deadline_s")
    deadline: float | None = None
    if deadline_raw is not None:
        if isinstance(deadline_raw, bool) or not isinstance(deadline_raw, (int, float)):
            raise WireFormatError("batch.deadline_s: expected a number")
        deadline = float(deadline_raw)
    return requests, decode_seed(obj.get("seed"), "batch.seed"), deadline


# -- responses ---------------------------------------------------------------


def encode_rank_response(response: RankingResponse) -> dict[str, Any]:
    return {
        "version": SCHEMA_VERSION,
        "request_id": json_safe(response.request_id),
        "index": int(response.index),
        "algorithm": response.algorithm,
        "ranking": [int(i) for i in response.ranking.order],
        "metadata": json_safe(response.metadata),
        "seconds": float(response.seconds),
    }


def decode_rank_response(obj: Any) -> RankingResponse:
    obj = _require_mapping(obj, "response")
    _require_version(obj, "response")
    index = _require(obj, "index", "response")
    if isinstance(index, bool) or not isinstance(index, int):
        raise WireFormatError("response.index: expected an int")
    algorithm = _require(obj, "algorithm", "response")
    if not isinstance(algorithm, str):
        raise WireFormatError("response.algorithm: expected a string")
    order = _int_list(_require(obj, "ranking", "response"), "response.ranking")
    seconds = _require(obj, "seconds", "response")
    if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
        raise WireFormatError("response.seconds: expected a number")
    metadata = dict(_require_mapping(obj.get("metadata", {}), "response.metadata"))
    return RankingResponse(
        request_id=obj.get("request_id"),
        index=index,
        algorithm=algorithm,
        ranking=Ranking(np.array(order, dtype=np.int64)),
        metadata=metadata,
        seconds=float(seconds),
    )


# -- error bodies ------------------------------------------------------------


def error_body(
    code: str,
    message: str,
    *,
    retry_after_s: float | None = None,
    details: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The structured error body shared by every 4xx/5xx response.

    Shape: ``{"error": {"code", "message"[, "retry_after_s"][, "details"]}}``.
    ``retry_after_s`` mirrors the ``Retry-After`` header as a float so
    clients need not parse the header; ``details`` carries the fields
    needed to re-raise the server-side exception client-side.
    """
    error: dict[str, Any] = {"code": code, "message": message}
    if retry_after_s is not None:
        error["retry_after_s"] = float(retry_after_s)
    if details is not None:
        error["details"] = json_safe(dict(details))
    return {"error": error}


def validate_error_body(obj: Any) -> dict[str, Any]:
    """Check an error body against the shared schema; return the inner
    ``error`` object.  Clients rely on this shape for every status."""
    obj = _require_mapping(obj, "error body")
    error = _require_mapping(_require(obj, "error", "error body"), "error body.error")
    code = _require(error, "code", "error body.error")
    if not isinstance(code, str) or not code:
        raise WireFormatError("error body.error.code: expected a non-empty string")
    message = _require(error, "message", "error body.error")
    if not isinstance(message, str):
        raise WireFormatError("error body.error.message: expected a string")
    retry_after = error.get("retry_after_s")
    if retry_after is not None and (
        isinstance(retry_after, bool) or not isinstance(retry_after, (int, float))
    ):
        raise WireFormatError("error body.error.retry_after_s: expected a number")
    if "details" in error:
        _require_mapping(error["details"], "error body.error.details")
    extra = set(error) - {"code", "message", "retry_after_s", "details"}
    if extra:
        raise WireFormatError(
            f"error body.error: unexpected fields {sorted(extra)}"
        )
    return dict(error)


# -- JSON coercion -----------------------------------------------------------


def json_safe(value: Any) -> Any:
    """Best-effort coercion of diagnostics payloads into JSON-able data.

    NumPy scalars/arrays become Python numbers/lists, mappings get
    string keys, and anything else falls back to ``repr`` — metadata is
    diagnostics, not part of the determinism contract (digests hash only
    index/algorithm/order).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if np.isfinite(value) else repr(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return json_safe(float(value))
    if isinstance(value, np.ndarray):
        return [json_safe(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    return repr(value)


def dumps(obj: Any) -> bytes:
    """Compact deterministic JSON bytes (sorted keys, no whitespace)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def loads(data: bytes) -> Any:
    """Parse JSON bytes, mapping any failure to :class:`WireFormatError`."""
    try:
        return json.loads(data)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireFormatError(f"malformed JSON body: {exc}") from exc


__all__ = [
    "ERROR_CODES",
    "SCHEMA_VERSION",
    "WireFormatError",
    "decode_problem",
    "decode_rank_many_request",
    "decode_rank_request",
    "decode_rank_response",
    "decode_seed",
    "dumps",
    "encode_problem",
    "encode_rank_many_request",
    "encode_rank_request",
    "encode_rank_response",
    "encode_seed",
    "error_body",
    "json_safe",
    "loads",
    "validate_error_body",
]
