"""The asyncio HTTP shell over :class:`AsyncRankingServer`.

:class:`HttpRankingServer` is the IO half of the frontend: it owns an
``asyncio.start_server`` listener, feeds every connection's bytes
through a sans-IO :class:`~repro.net.protocol.RequestParser`, routes
framed requests to the serving tier, and writes
:func:`~repro.net.protocol.encode_response` bytes back.  All protocol
logic (framing, limits, keep-alive) lives in :mod:`repro.net.protocol`;
all schema logic in :mod:`repro.net.schemas`; this module only moves
bytes and maps exceptions to statuses.

Endpoints
---------
``POST /v1/rank``
    One request through the coalescing tier; the response body carries
    the served :class:`~repro.engine.core.RankingResponse`.
``POST /v1/rank_many``
    A batch plus a root seed.  Requests without a pinned seed get the
    root's spawned child at their batch index — exactly
    :meth:`RankingEngine.rank_many`'s rule — so the batch digest is
    byte-identical to the serial loop.  Per-item failures are isolated
    into per-item error objects; the envelope is still a 200.
``GET /stats``
    :class:`~repro.serve.protocol.ServeStats` counters (incl. fault /
    breaker counters), coalescing factor, and latency percentiles.
``GET /healthz``
    200 while the circuit breaker is closed; 503 + ``Retry-After``
    while it is open/half-open.

Error mapping (shared structured body, see
:func:`repro.net.schemas.error_body`): ``ServerOverloaded`` /
``ServerUnhealthy`` → 429 + ``Retry-After``; ``DeadlineExceeded`` →
504; malformed JSON/schema → 400; oversized bodies → 413 (headers →
431); pool-recovery exhaustion → 503 + ``Retry-After``.

Shutdown is a graceful drain (``SIGTERM``/``SIGINT`` under
:meth:`HttpRankingServer.serve_forever`): the listener closes, idle
keep-alive connections are disconnected, busy connections finish their
in-flight response and close, then the inner server drains everything
already admitted.
"""

from __future__ import annotations

import asyncio
import math
import signal
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Any, Awaitable, Callable

from repro.engine.core import RankingEngine
from repro.exceptions import WorkerCrashError
from repro.net.protocol import (
    HttpLimits,
    HttpRequest,
    ProtocolViolation,
    RequestParser,
    encode_response,
)
from repro.net.schemas import (
    SCHEMA_VERSION,
    WireFormatError,
    decode_rank_many_request,
    decode_rank_request,
    dumps,
    encode_rank_response,
    error_body,
    loads,
)
from repro.serve.protocol import (
    DeadlineExceeded,
    ServeConfig,
    ServerClosed,
    ServerOverloaded,
    ServerUnhealthy,
)
from repro.serve.server import AsyncRankingServer
from repro.utils.rng import spawn_seed_sequences

BREAKER_CLOSED = "closed"

#: Default ``Retry-After`` hint (seconds) attached to overload
#: rejections — overload has no intrinsic time base, unlike the
#: breaker's cooldown, so this is a config knob.
DEFAULT_OVERLOAD_RETRY_AFTER = 0.05


def _retry_after_header(seconds: float) -> tuple[str, str]:
    """``Retry-After`` is integer delta-seconds on the wire; the precise
    float travels in the error body's ``retry_after_s``."""
    return ("Retry-After", str(max(0, math.ceil(seconds))))


@dataclass
class _Connection:
    """Per-connection bookkeeping for the drain path."""

    writer: asyncio.StreamWriter
    busy: bool = False


class HttpRankingServer:
    """A localhost-bindable HTTP/1.1 JSON frontend over the serving tier.

    Owns an :class:`AsyncRankingServer` (constructed from ``engine`` +
    ``config``/overrides exactly like the inner class) plus the
    listener.  ``port=0`` binds an ephemeral port; read it back from
    :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        engine: RankingEngine,
        config: ServeConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: HttpLimits | None = None,
        overload_retry_after: float = DEFAULT_OVERLOAD_RETRY_AFTER,
        **overrides: Any,
    ) -> None:
        self._inner = AsyncRankingServer(engine, config, **overrides)
        self._host = host
        self._requested_port = port
        self._limits = limits or HttpLimits()
        self._overload_retry_after = float(overload_retry_after)
        self._server: asyncio.base_events.Server | None = None
        self._connections: dict[int, _Connection] = {}
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._draining = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def inner(self) -> AsyncRankingServer:
        """The in-process serving tier behind this frontend."""
        return self._inner

    @property
    def started(self) -> bool:
        return self._server is not None

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("the HTTP server is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def address(self) -> str:
        return f"{self._host}:{self.port}"

    async def start(self) -> "HttpRankingServer":
        if self._server is not None:
            raise RuntimeError("the HTTP server is already started")
        await self._inner.start()
        try:
            self._server = await asyncio.start_server(
                self._on_connection, host=self._host, port=self._requested_port
            )
        except BaseException:
            await self._inner.stop(drain=False)
            raise
        self._draining = False
        return self

    async def __aenter__(self) -> "HttpRankingServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    async def stop(self, *, drain: bool = True) -> None:
        """Graceful drain: stop accepting, finish in-flight responses,
        close keep-alive connections, then drain the inner server.

        ``drain=False`` additionally fails everything the inner tier has
        admitted but not dispatched (see
        :meth:`AsyncRankingServer.stop`).
        """
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        if not drain:
            # Fail fast: everything admitted-but-undispatched fails with
            # ``ServerClosed`` *now*, so busy connections answer 503
            # instead of waiting out their in-flight work.
            await self._inner.stop(drain=False)
        # Idle keep-alive connections are parked in ``reader.read`` with
        # nothing in flight — disconnect them; busy ones observe
        # ``_draining`` after writing their current response and close
        # themselves.
        for conn in self._connections.values():
            if not conn.busy:
                conn.writer.close()
        if self._conn_tasks:
            await asyncio.gather(*tuple(self._conn_tasks), return_exceptions=True)
        if drain:
            await self._inner.stop(drain=True)
        self._server = None
        self._connections.clear()
        self._draining = False

    async def serve_forever(
        self, *, signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)
    ) -> None:
        """Serve until one of ``signals`` arrives, then drain gracefully."""
        if self._server is None:
            raise RuntimeError("the HTTP server is not started")
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        for sig in signals:
            loop.add_signal_handler(sig, stop_event.set)
        try:
            await stop_event.wait()
        finally:
            for sig in signals:
                loop.remove_signal_handler(sig)
        await self.stop(drain=True)

    # -- connection handling ---------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        conn = _Connection(writer=writer)
        self._connections[id(conn)] = conn
        parser = RequestParser(self._limits)
        try:
            while not parser.failed:
                data = await reader.read(65536)
                if not data:
                    return
                conn.busy = True
                try:
                    for event in parser.feed(data):
                        if isinstance(event, ProtocolViolation):
                            writer.write(self._violation_response(event))
                            await writer.drain()
                            return
                        payload, keep_alive = await self._respond(event)
                        writer.write(payload)
                        await writer.drain()
                        if not keep_alive:
                            return
                finally:
                    conn.busy = False
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.pop(id(conn), None)
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _violation_response(self, violation: ProtocolViolation) -> bytes:
        body = error_body(violation.code, violation.message)
        return encode_response(violation.status, dumps(body), keep_alive=False)

    async def _respond(self, request: HttpRequest) -> tuple[bytes, bool]:
        """Route one framed request; returns (wire bytes, keep alive?)."""
        status, headers, payload = await self._dispatch(request)
        keep_alive = (
            request.keep_alive and not self._draining and status != 503
        )
        return (
            encode_response(
                status,
                dumps(payload),
                extra_headers=headers,
                keep_alive=keep_alive,
            ),
            keep_alive,
        )

    # -- routing ---------------------------------------------------------------

    async def _dispatch(
        self, request: HttpRequest
    ) -> tuple[int, tuple[tuple[str, str], ...], dict[str, Any]]:
        routes: dict[str, dict[str, Callable[[HttpRequest], Awaitable[Any]]]] = {
            "/v1/rank": {"POST": self._rank},
            "/v1/rank_many": {"POST": self._rank_many},
            "/stats": {"GET": self._stats},
            "/healthz": {"GET": self._healthz},
        }
        methods = routes.get(request.target.partition("?")[0])
        if methods is None:
            return (
                404,
                (),
                error_body("not_found", f"no such endpoint {request.target!r}"),
            )
        handler = methods.get(request.method)
        if handler is None:
            return (
                405,
                (("Allow", ", ".join(sorted(methods))),),
                error_body(
                    "method_not_allowed",
                    f"{request.method} is not allowed on {request.target}",
                ),
            )
        try:
            return await handler(request)
        except Exception as exc:
            return self._map_exception(exc)

    def _map_exception(
        self, exc: Exception
    ) -> tuple[int, tuple[tuple[str, str], ...], dict[str, Any]]:
        if isinstance(exc, ServerUnhealthy):
            return (
                429,
                (_retry_after_header(exc.retry_after),),
                error_body(
                    "unhealthy",
                    str(exc),
                    retry_after_s=exc.retry_after,
                    details={"state": exc.state},
                ),
            )
        if isinstance(exc, ServerOverloaded):
            hint = self._overload_retry_after
            return (
                429,
                (_retry_after_header(hint),),
                error_body(
                    "overloaded",
                    str(exc),
                    retry_after_s=hint,
                    details={
                        "predicted_cost": exc.predicted_cost,
                        "inflight_cost": exc.inflight_cost,
                        "cost_budget": exc.cost_budget,
                        "queue_depth": exc.queue_depth,
                        "max_queue_depth": exc.max_queue_depth,
                    },
                ),
            )
        if isinstance(exc, DeadlineExceeded):
            return (
                504,
                (),
                error_body(
                    "deadline_exceeded",
                    str(exc),
                    details={
                        "request_id": exc.request_id,
                        "deadline_s": exc.deadline,
                        "dispatched": exc.dispatched,
                    },
                ),
            )
        if isinstance(exc, ServerClosed):
            return (503, (), error_body("server_closed", str(exc)))
        if isinstance(exc, WorkerCrashError):
            cooldown = self._inner.config.breaker_cooldown
            return (
                503,
                (_retry_after_header(cooldown),),
                error_body(
                    "pool_recovery_exhausted",
                    str(exc),
                    retry_after_s=cooldown,
                ),
            )
        if isinstance(exc, WireFormatError):
            return (400, (), error_body("bad_request", str(exc)))
        if isinstance(exc, (KeyError, TypeError, ValueError)):
            return (400, (), error_body("bad_request", str(exc)))
        return (500, (), error_body("internal_error", str(exc)))

    # -- endpoint handlers -----------------------------------------------------

    async def _rank(
        self, http: HttpRequest
    ) -> tuple[int, tuple[tuple[str, str], ...], dict[str, Any]]:
        request, deadline = decode_rank_request(loads(http.body))
        response = await self._inner.submit(request, deadline=deadline)
        return (
            200,
            (),
            {"version": SCHEMA_VERSION, "response": encode_rank_response(response)},
        )

    async def _rank_many(
        self, http: HttpRequest
    ) -> tuple[int, tuple[tuple[str, str], ...], dict[str, Any]]:
        requests, seed, deadline = decode_rank_many_request(loads(http.body))
        children = spawn_seed_sequences(seed, len(requests))
        pinned = [
            request
            if request.seed is not None
            else replace(request, seed=children[i])
            for i, request in enumerate(requests)
        ]
        results = await asyncio.gather(
            *(self._inner.submit(r, deadline=deadline) for r in pinned),
            return_exceptions=True,
        )
        items: list[dict[str, Any]] = []
        served = 0
        for i, result in enumerate(results):
            if isinstance(result, BaseException):
                if not isinstance(result, Exception):
                    raise result
                status, _, payload = self._map_exception(result)
                items.append({"status": status, "error": payload["error"]})
            else:
                served += 1
                # Server-wide submission indices are meaningless to the
                # client; re-index by batch position, matching what a
                # client-side ``rank_many`` over the same batch returns.
                items.append(
                    {"response": encode_rank_response(replace(result, index=i))}
                )
        return (
            200,
            (),
            {"version": SCHEMA_VERSION, "served": served, "responses": items},
        )

    async def _stats(
        self, http: HttpRequest
    ) -> tuple[int, tuple[tuple[str, str], ...], dict[str, Any]]:
        stats = self._inner.stats()
        counters = {
            field.name: getattr(stats, field.name)
            for field in dataclass_fields(stats)
            if field.name != "latencies"
        }
        return (
            200,
            (),
            {
                "version": SCHEMA_VERSION,
                "counters": counters,
                "coalescing": stats.coalescing,
                "breaker": self._inner.breaker_state,
                "draining": self._draining,
                "latency_percentiles": stats.latency_percentiles(),
            },
        )

    async def _healthz(
        self, http: HttpRequest
    ) -> tuple[int, tuple[tuple[str, str], ...], dict[str, Any]]:
        state = self._inner.breaker_state
        if state == BREAKER_CLOSED and not self._draining:
            return (
                200,
                (),
                {"version": SCHEMA_VERSION, "status": "ok", "breaker": state},
            )
        cooldown = self._inner.config.breaker_cooldown
        reason = "draining" if self._draining else f"circuit breaker is {state}"
        return (
            503,
            (_retry_after_header(cooldown),),
            error_body(
                "unhealthy",
                reason,
                retry_after_s=cooldown,
                details={"state": state, "draining": self._draining},
            ),
        )


__all__ = [
    "DEFAULT_OVERLOAD_RETRY_AFTER",
    "HttpRankingServer",
]
