"""Async stdlib HTTP client for the serving frontend.

:class:`AsyncHttpClient` is the wire twin of
:class:`~repro.net.server.HttpRankingServer`: it speaks the same
sans-IO protocol (:func:`~repro.net.protocol.encode_request` out,
:class:`~repro.net.protocol.ResponseParser` in) over a pool of
keep-alive ``asyncio`` stream connections, and re-raises the server's
structured error bodies as the *real* serving-tier exceptions —
``ServerOverloaded``, ``ServerUnhealthy``, ``DeadlineExceeded``,
``ServerClosed``.  That makes :meth:`AsyncHttpClient.submit` a drop-in
transport for :func:`repro.serve.loadgen.run_load`: the same client
swarm that load-tests the in-process tier races it over the wire, with
the same rejected/expired/failed accounting.

Determinism note: HTTP arrival order is whatever the network makes it,
so the in-process trick of deriving seeds from submission order does
not survive the wire.  Pin seeds client-side first
(:func:`repro.serve.loadgen.pin_request_seeds`) — the pinned children
travel inside the request schema, and the served digest is then
byte-identical to the serial loop regardless of arrival order.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.engine.core import RankingRequest, RankingResponse
from repro.net.protocol import (
    HttpLimits,
    HttpResponse,
    ProtocolViolation,
    ResponseParser,
    encode_request,
)
from repro.net.schemas import (
    WireFormatError,
    decode_rank_response,
    dumps,
    encode_rank_many_request,
    encode_rank_request,
    loads,
    validate_error_body,
)
from repro.serve.protocol import (
    DeadlineExceeded,
    ServeError,
    ServerClosed,
    ServerOverloaded,
    ServerUnhealthy,
)
from repro.utils.rng import SeedLike


class HttpWireError(ServeError):
    """The server answered with an error that has no richer serving-tier
    exception to map onto (or with a malformed body)."""

    def __init__(
        self,
        *,
        status: int,
        code: str,
        message: str,
        retry_after_s: float | None = None,
        details: Mapping[str, Any] | None = None,
    ) -> None:
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s
        self.details = dict(details or {})
        super().__init__(f"HTTP {status} [{code}]: {message}")


def raise_for_error(status: int, payload: Any) -> None:
    """Re-raise a structured error body as its serving-tier exception.

    2xx payloads pass through; anything else raises.  Bodies that fit
    the shared error schema map ``overloaded``/``unhealthy``/
    ``deadline_exceeded``/``server_closed`` codes back to the exact
    exception types :func:`repro.serve.loadgen.run_load` already
    handles; everything else (including malformed bodies) becomes
    :class:`HttpWireError`.
    """
    if 200 <= status < 300:
        return
    try:
        error = validate_error_body(payload)
    except WireFormatError as exc:
        raise HttpWireError(
            status=status,
            code="protocol_error",
            message=f"unparseable error body: {exc}",
        ) from exc
    code = str(error["code"])
    message = str(error["message"])
    retry_after = error.get("retry_after_s")
    details = error.get("details", {})
    if code == "overloaded" and {
        "predicted_cost",
        "inflight_cost",
        "cost_budget",
        "queue_depth",
        "max_queue_depth",
    } <= set(details):
        raise ServerOverloaded(
            predicted_cost=float(details["predicted_cost"]),
            inflight_cost=float(details["inflight_cost"]),
            cost_budget=float(details["cost_budget"]),
            queue_depth=int(details["queue_depth"]),
            max_queue_depth=int(details["max_queue_depth"]),
        )
    if code == "unhealthy":
        raise ServerUnhealthy(
            retry_after=float(retry_after or 0.0),
            state=str(details.get("state", "open")),
        )
    if code == "deadline_exceeded":
        raise DeadlineExceeded(
            request_id=details.get("request_id"),
            deadline=float(details.get("deadline_s") or 0.0),
            dispatched=bool(details.get("dispatched", False)),
        )
    if code == "server_closed":
        raise ServerClosed(message)
    raise HttpWireError(
        status=status,
        code=code,
        message=message,
        retry_after_s=None if retry_after is None else float(retry_after),
        details=details,
    )


@dataclass
class _PooledConnection:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    parser: ResponseParser


class AsyncHttpClient:
    """Keep-alive JSON client for one frontend address.

    One connection serves one request at a time; concurrent callers
    each draw their own connection from the pool (or dial a new one),
    so a ``run_load`` swarm fans out over as many sockets as it has
    in-flight requests.
    """

    def __init__(
        self, host: str, port: int, *, limits: HttpLimits | None = None
    ) -> None:
        self._host = host
        self._port = int(port)
        self._limits = limits or HttpLimits()
        self._pool: list[_PooledConnection] = []
        self._closed = False

    @property
    def authority(self) -> str:
        return f"{self._host}:{self._port}"

    @classmethod
    def from_url(cls, url: str, *, limits: HttpLimits | None = None) -> "AsyncHttpClient":
        """Parse ``http://HOST:PORT`` (path-less) into a client."""
        stripped = url.strip()
        if stripped.startswith("http://"):
            stripped = stripped[len("http://"):]
        stripped = stripped.rstrip("/")
        host, sep, port = stripped.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"expected an http://HOST:PORT url, got {url!r}"
            )
        return cls(host, int(port), limits=limits)

    async def __aenter__(self) -> "AsyncHttpClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def close(self) -> None:
        """Close every pooled connection."""
        self._closed = True
        pool, self._pool = self._pool, []
        for conn in pool:
            conn.writer.close()
        for conn in pool:
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- raw exchanges ---------------------------------------------------------

    async def _open(self) -> _PooledConnection:
        reader, writer = await asyncio.open_connection(self._host, self._port)
        return _PooledConnection(
            reader=reader, writer=writer, parser=ResponseParser(self._limits)
        )

    async def _exchange_once(
        self, conn: _PooledConnection, wire: bytes
    ) -> HttpResponse:
        conn.writer.write(wire)
        await conn.writer.drain()
        while True:
            data = await conn.reader.read(65536)
            if not data:
                raise ConnectionResetError("connection closed mid-response")
            for event in conn.parser.feed(data):
                if isinstance(event, ProtocolViolation):
                    raise HttpWireError(
                        status=event.status,
                        code=event.code,
                        message=f"malformed response: {event.message}",
                    )
                return event

    async def request(
        self, method: str, target: str, body: bytes = b""
    ) -> HttpResponse:
        """One request/response exchange on a pooled connection.

        A pooled keep-alive connection may have been closed server-side
        (drain, idle kick) between exchanges; that shows up as an
        immediate reset and is retried once on a fresh connection.
        """
        if self._closed:
            raise RuntimeError("the client is closed")
        reused = bool(self._pool)
        conn = self._pool.pop() if self._pool else await self._open()
        wire = encode_request(method, target, host=self.authority, body=body)
        try:
            response = await self._exchange_once(conn, wire)
        except (ConnectionError, OSError):
            conn.writer.close()
            if not reused:
                raise
            conn = await self._open()
            try:
                response = await self._exchange_once(conn, wire)
            except BaseException:
                conn.writer.close()
                raise
        except BaseException:
            conn.writer.close()
            raise
        if response.keep_alive and not self._closed:
            self._pool.append(conn)
        else:
            conn.writer.close()
        return response

    async def request_json(
        self, method: str, target: str, payload: Any = None
    ) -> tuple[int, Any]:
        """JSON-in/JSON-out exchange; returns ``(status, decoded body)``."""
        body = b"" if payload is None else dumps(payload)
        response = await self.request(method, target, body)
        decoded = loads(response.body) if response.body else None
        return response.status, decoded

    # -- the serving surface ---------------------------------------------------

    async def submit(
        self, request: RankingRequest, *, deadline: float | None = None
    ) -> RankingResponse:
        """``POST /v1/rank`` — the wire twin of
        :meth:`AsyncRankingServer.submit`, raising the same exceptions.

        Compatible with :func:`repro.serve.loadgen.run_load` as a
        transport; pin per-request seeds first if digests matter.
        """
        status, payload = await self.request_json(
            "POST", "/v1/rank", encode_rank_request(request, deadline=deadline)
        )
        raise_for_error(status, payload)
        if not isinstance(payload, Mapping) or "response" not in payload:
            raise HttpWireError(
                status=status,
                code="protocol_error",
                message="rank response missing 'response' field",
            )
        return decode_rank_response(payload["response"])

    async def rank_many(
        self,
        requests: Sequence[RankingRequest],
        *,
        seed: SeedLike = None,
        deadline: float | None = None,
    ) -> list["RankingResponse | Exception"]:
        """``POST /v1/rank_many`` — one wire round-trip for a whole batch.

        Returns a list aligned with ``requests``: a
        :class:`RankingResponse` per served item, or the mapped
        exception instance for per-item failures (not raised — batch
        envelopes isolate failures the way the engine's streaming
        ``rank_many`` routes per-request errors).
        """
        status, payload = await self.request_json(
            "POST",
            "/v1/rank_many",
            encode_rank_many_request(requests, seed=seed, deadline=deadline),
        )
        raise_for_error(status, payload)
        if not isinstance(payload, Mapping) or "responses" not in payload:
            raise HttpWireError(
                status=status,
                code="protocol_error",
                message="batch response missing 'responses' field",
            )
        results: list[RankingResponse | Exception] = []
        for item in payload["responses"]:
            if not isinstance(item, Mapping):
                raise HttpWireError(
                    status=status,
                    code="protocol_error",
                    message=f"malformed batch item {item!r}",
                )
            if "response" in item:
                results.append(decode_rank_response(item["response"]))
            else:
                try:
                    raise_for_error(
                        int(item.get("status", 500)), {"error": item.get("error")}
                    )
                except ServeError as exc:
                    results.append(exc)
        return results

    async def stats(self) -> dict[str, Any]:
        """``GET /stats`` decoded to a dict."""
        status, payload = await self.request_json("GET", "/stats")
        raise_for_error(status, payload)
        if not isinstance(payload, Mapping):
            raise HttpWireError(
                status=status, code="protocol_error", message="malformed stats body"
            )
        return dict(payload)

    async def healthz(self) -> tuple[bool, Any]:
        """``GET /healthz`` → ``(healthy?, decoded body)`` (non-raising)."""
        status, payload = await self.request_json("GET", "/healthz")
        return status == 200, payload


__all__ = [
    "AsyncHttpClient",
    "HttpWireError",
    "raise_for_error",
]
