"""Distances between top-k lists (incomplete rankings, the paper's S≤d).

Real systems expose only the top ``k`` of a ranking.  Comparing two top-k
lists needs conventions for items present in one list but not the other;
the classical treatment is Fagin, Kumar & Sivakumar (2003):

* ``kendall_tau_topk`` — KT with penalty parameter ``p``: pairs whose order
  is undetermined (both items missing from one of the lists) contribute
  ``p`` (``p = 0`` optimistic, ``p = 1/2`` neutral, ``p = 1`` pessimistic);
* ``footrule_topk`` — footrule with location parameter ``ℓ``: missing items
  are imputed at position ``ℓ`` (default ``k``, i.e. just below the cut).

Both reduce to the ordinary distances when the two lists contain the same
items.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _validate_topk(lst: Sequence[int], name: str) -> list[int]:
    items = [int(x) for x in lst]
    if len(set(items)) != len(items):
        raise ValueError(f"{name} contains duplicate items")
    if any(x < 0 for x in items):
        raise ValueError(f"{name} contains negative item ids")
    return items


def kendall_tau_topk(
    top_a: Sequence[int],
    top_b: Sequence[int],
    p: float = 0.5,
) -> float:
    """Fagin et al.'s KT distance between two top-k lists.

    Pairs are scored over the union of the two lists:

    * both pairs ordered by both lists → 0 if concordant, 1 if discordant;
    * one item of the pair missing from one list → the present item is
      treated as ranked above the missing one (0 or 1 accordingly);
    * pair undetermined (each list misses one of the two items, or one list
      misses both) → penalty ``p`` when the determined list(s) cannot
      resolve it.

    Follows the case analysis of Fagin–Kumar–Sivakumar Section 3.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"penalty p must be in [0, 1], got {p}")
    a = _validate_topk(top_a, "top_a")
    b = _validate_topk(top_b, "top_b")
    pos_a = {item: i for i, item in enumerate(a)}
    pos_b = {item: i for i, item in enumerate(b)}
    union = sorted(set(a) | set(b))

    total = 0.0
    for idx, i in enumerate(union):
        for j in union[idx + 1 :]:
            in_a = (i in pos_a, j in pos_a)
            in_b = (i in pos_b, j in pos_b)
            # Case 1: both in both lists.
            if all(in_a) and all(in_b):
                total += int(
                    (pos_a[i] - pos_a[j]) * (pos_b[i] - pos_b[j]) < 0
                )
            # Case 2: both in one list, exactly one in the other.
            elif all(in_a) and any(in_b):
                present = i if in_b[0] else j
                missing = j if in_b[0] else i
                # In B the present item ranks above the missing one.
                disagrees = pos_a[present] > pos_a[missing]
                total += int(disagrees)
            elif all(in_b) and any(in_a):
                present = i if in_a[0] else j
                missing = j if in_a[0] else i
                disagrees = pos_b[present] > pos_b[missing]
                total += int(disagrees)
            # Case 3: i only in one list, j only in the other: both lists
            # rank their present item above the missing one, and the two
            # verdicts conflict — a definite discordance.
            elif (in_a[0] and not in_a[1] and in_b[1] and not in_b[0]) or (
                in_a[1] and not in_a[0] and in_b[0] and not in_b[1]
            ):
                total += 1
            # Case 4: both items missing from one of the lists (and hence
            # both present in the other): undetermined → penalty p.
            else:
                total += p
    return total


def footrule_topk(
    top_a: Sequence[int],
    top_b: Sequence[int],
    location: float | None = None,
) -> float:
    """Induced footrule between top-k lists with a location parameter.

    Items missing from a list are imputed at position ``location``
    (0-based; default ``max(len(a), len(b))`` — just past the cut).
    """
    a = _validate_topk(top_a, "top_a")
    b = _validate_topk(top_b, "top_b")
    loc = float(max(len(a), len(b))) if location is None else float(location)
    if loc < 0:
        raise ValueError(f"location must be non-negative, got {loc}")
    pos_a = {item: float(i) for i, item in enumerate(a)}
    pos_b = {item: float(i) for i, item in enumerate(b)}
    union = set(a) | set(b)
    return float(
        sum(
            abs(pos_a.get(item, loc) - pos_b.get(item, loc))
            for item in union
        )
    )


def overlap(top_a: Sequence[int], top_b: Sequence[int]) -> float:
    """Jaccard overlap of the two lists' item sets (1 = same items)."""
    a = set(_validate_topk(top_a, "top_a"))
    b = set(_validate_topk(top_b, "top_b"))
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def recall_at_k(full_order: Sequence[int], reference_top: Sequence[int]) -> float:
    """Fraction of ``reference_top`` recovered in the first
    ``len(reference_top)`` entries of ``full_order``."""
    ref = _validate_topk(reference_top, "reference_top")
    if not ref:
        return 1.0
    k = len(ref)
    head = set(int(x) for x in list(full_order)[:k])
    return len(head & set(ref)) / k
