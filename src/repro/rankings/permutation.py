"""An immutable permutation type used to represent rankings.

Conventions
-----------
A :class:`Ranking` over ``n`` items stores the *order* of items: ``order[j]``
is the item placed at position ``j`` (position 0 is the top of the ranking).
The inverse view, ``positions[i]``, gives the position of item ``i`` and
corresponds to the ``σ(i)`` notation of the paper.  Both views are plain
NumPy arrays; the class keeps them consistent and hashable.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import LengthMismatchError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import as_permutation_array


class Ranking:
    """An immutable ranking (permutation) of items ``0..n-1``.

    Parameters
    ----------
    order:
        ``order[j]`` is the item at position ``j`` (top position first).

    Examples
    --------
    >>> r = Ranking([2, 0, 1])
    >>> r.item_at(0)
    2
    >>> r.position_of(1)
    2
    """

    __slots__ = ("_order", "_positions", "_hash")

    def __init__(self, order: Sequence[int] | np.ndarray):
        arr = as_permutation_array(order, name="ranking order")
        arr.setflags(write=False)
        self._order = arr
        inv = np.empty_like(arr)
        inv[arr] = np.arange(arr.size, dtype=np.int64)
        inv.setflags(write=False)
        self._positions = inv
        self._hash: int | None = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_positions(cls, positions: Sequence[int] | np.ndarray) -> "Ranking":
        """Build a ranking from the inverse view (``positions[i]`` = position
        of item ``i``)."""
        pos = as_permutation_array(positions, name="ranking positions")
        order = np.empty_like(pos)
        order[pos] = np.arange(pos.size, dtype=np.int64)
        return cls(order)

    # -- views -----------------------------------------------------------------

    @property
    def order(self) -> np.ndarray:
        """Read-only array: item at each position (top first)."""
        return self._order

    @property
    def positions(self) -> np.ndarray:
        """Read-only array: position of each item (the paper's ``σ(i)``)."""
        return self._positions

    def __len__(self) -> int:
        return int(self._order.size)

    def item_at(self, position: int) -> int:
        """Item occupying ``position`` (0-based from the top)."""
        return int(self._order[position])

    def position_of(self, item: int) -> int:
        """Position of ``item`` (0-based from the top)."""
        return int(self._positions[item])

    def prefix(self, k: int) -> np.ndarray:
        """The top-``k`` items in order.  ``k`` is clamped to ``[0, n]``."""
        k = max(0, min(k, len(self)))
        return self._order[:k].copy()

    def __iter__(self) -> Iterator[int]:
        return iter(int(i) for i in self._order)

    # -- algebra -----------------------------------------------------------------

    def inverse(self) -> "Ranking":
        """The inverse permutation (order and positions views swapped)."""
        return Ranking(self._positions)

    def compose(self, other: "Ranking") -> "Ranking":
        """Return ``self ∘ other``: apply ``other`` first, then ``self``.

        In order-view terms the result places at position ``j`` the item
        ``self.order[other.order[j]]``.
        """
        if len(self) != len(other):
            raise LengthMismatchError(
                f"cannot compose rankings of lengths {len(self)} and {len(other)}"
            )
        return Ranking(self._order[other._order])

    def relabel(self, mapping: Sequence[int] | np.ndarray) -> "Ranking":
        """Rename items through ``mapping`` (itself a permutation):
        item ``i`` becomes ``mapping[i]``, order of positions preserved."""
        m = as_permutation_array(mapping, name="relabel mapping")
        if m.size != len(self):
            raise LengthMismatchError(
                f"mapping has {m.size} entries for a ranking of {len(self)} items"
            )
        return Ranking(m[self._order])

    def swap_positions(self, j: int, k: int) -> "Ranking":
        """A new ranking with the items at positions ``j`` and ``k`` exchanged."""
        order = self._order.copy()
        order[j], order[k] = order[k], order[j]
        return Ranking(order)

    # -- dunder plumbing ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ranking):
            return NotImplemented
        return len(self) == len(other) and bool(
            np.array_equal(self._order, other._order)
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._order.tobytes())
        return self._hash

    def __repr__(self) -> str:
        return f"Ranking({self._order.tolist()})"


def identity(n: int) -> Ranking:
    """The identity ranking ``0, 1, ..., n-1``."""
    if n < 0:
        raise ValueError(f"ranking length must be non-negative, got {n}")
    return Ranking(np.arange(n, dtype=np.int64))


def random_ranking(n: int, seed: SeedLike = None) -> Ranking:
    """A uniformly random ranking of ``n`` items."""
    if n < 0:
        raise ValueError(f"ranking length must be non-negative, got {n}")
    rng = as_generator(seed)
    return Ranking(rng.permutation(n))


def all_rankings(n: int) -> Iterable[Ranking]:
    """Yield every ranking of ``n`` items (n! of them — small ``n`` only)."""
    import itertools

    for perm in itertools.permutations(range(n)):
        yield Ranking(np.array(perm, dtype=np.int64))
