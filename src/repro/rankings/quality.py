"""Ranking quality measures: CG, DCG, IDCG, NDCG (Section III-D).

Following the paper, the discount at 1-based position ``i`` is
``1 / log(1 + i)`` (natural logarithm), and the ideal ranking lists items in
non-increasing score order.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.exceptions import LengthMismatchError
from repro.rankings.permutation import Ranking
from repro.utils.validation import as_permutation_array

RankingLike = Union[Ranking, Sequence[int], np.ndarray]


def _order(ranking: RankingLike) -> np.ndarray:
    """Order view of ``ranking`` (item at each position)."""
    if isinstance(ranking, Ranking):
        return ranking.order
    return as_permutation_array(ranking, name="ranking")


def position_discounts(k: int) -> np.ndarray:
    """Discount vector ``c(j) = 1 / log(1 + j)`` for 1-based positions
    ``j = 1..k`` (the paper's DCG weights)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    j = np.arange(1, k + 1, dtype=np.float64)
    return 1.0 / np.log1p(j)


def cumulative_gain(ranking: RankingLike, scores: Sequence[float], k: int | None = None) -> float:
    """Cumulative gain: plain sum of the top-``k`` item scores."""
    order = _order(ranking)
    s = _scores_array(scores, order.size)
    k = order.size if k is None else _check_k(k, order.size)
    return float(s[order[:k]].sum())


def dcg(ranking: RankingLike, scores: Sequence[float], k: int | None = None) -> float:
    """Discounted cumulative gain ``Σ_{i=1..k} s(π(i)) / log(1 + i)``."""
    order = _order(ranking)
    s = _scores_array(scores, order.size)
    k = order.size if k is None else _check_k(k, order.size)
    return float((s[order[:k]] * position_discounts(k)).sum())


def idcg(scores: Sequence[float], k: int | None = None) -> float:
    """Ideal DCG: the DCG of items sorted by non-increasing score."""
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {s.shape}")
    k = s.size if k is None else _check_k(k, s.size)
    top = np.sort(s)[::-1][:k]
    return float((top * position_discounts(k)).sum())


def ndcg(ranking: RankingLike, scores: Sequence[float], k: int | None = None) -> float:
    """Normalized DCG ``= DCG(π) / IDCG``.

    Defined as 1.0 when the ideal DCG is zero (all scores zero), so a ranking
    of worthless items is vacuously perfect rather than a division error.
    """
    denom = idcg(scores, k)
    if denom == 0.0:
        return 1.0
    return dcg(ranking, scores, k) / denom


def ndcg_of_order(order: np.ndarray, scores: np.ndarray, discounts: np.ndarray, ideal: float) -> float:
    """Fast-path NDCG used in inner experiment loops: no validation, all
    inputs pre-computed (``discounts = position_discounts(k)``,
    ``ideal = idcg(scores, k)``)."""
    if ideal == 0.0:
        return 1.0
    k = discounts.size
    return float((scores[order[:k]] * discounts).sum() / ideal)


def exposure(ranking: RankingLike, k: int | None = None) -> np.ndarray:
    """Per-item exposure: the discount of the position each item occupies
    (0 beyond position ``k``).  A building block for exposure-based fairness
    extensions."""
    order = _order(ranking)
    n = order.size
    k = n if k is None else _check_k(k, n)
    disc = position_discounts(k)
    out = np.zeros(n, dtype=np.float64)
    out[order[:k]] = disc
    return out


def _scores_array(scores: Sequence[float], n: int) -> np.ndarray:
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {s.shape}")
    if s.size != n:
        raise LengthMismatchError(
            f"scores has {s.size} entries for a ranking of {n} items"
        )
    return s


def _check_k(k: int, n: int) -> int:
    if not 0 <= k <= n:
        raise ValueError(f"k must be in [0, {n}], got {k}")
    return k
