"""Distance metrics between rankings (Section III-C of the paper).

All functions accept either :class:`~repro.rankings.permutation.Ranking`
objects or raw permutation arrays.  Distances are computed between the
*position* views: two rankings agree on a pair ``(i, j)`` when both place
item ``i`` before item ``j``.

The Kendall tau implementation runs in ``O(n log n)`` via a merge-sort
inversion count; a quadratic reference implementation is kept for testing
and micro-benchmarking.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.rankings.permutation import Ranking
from repro.utils.validation import as_permutation_array, check_same_length

RankingLike = Union[Ranking, Sequence[int], np.ndarray]


def _positions(ranking: RankingLike) -> np.ndarray:
    """Position view of ``ranking`` (``positions[i]`` = rank of item ``i``).

    Raw arrays are interpreted in *order* view (item at each position), the
    same convention as ``Ranking(order)``, and converted.
    """
    if isinstance(ranking, Ranking):
        return ranking.positions
    order = as_permutation_array(ranking, name="ranking")
    pos = np.empty_like(order)
    pos[order] = np.arange(order.size, dtype=np.int64)
    return pos


def kendall_tau_distance(pi: RankingLike, sigma: RankingLike) -> int:
    """Number of discordant pairs between two rankings, in ``O(n log n)``.

    ``d_KT(π, σ) = |{(i, j) : i < j, (π(i)−π(j))(σ(i)−σ(j)) < 0}|``
    """
    p = _positions(pi)
    s = _positions(sigma)
    check_same_length(p, s, "rankings")
    if p.size < 2:
        return 0
    # Order items by sigma-position; inversions of their pi-positions are
    # exactly the discordant pairs.
    seq = p[np.argsort(s, kind="stable")]
    return _count_inversions(seq)


def _count_inversions(seq: np.ndarray) -> int:
    """Merge-sort inversion count (iterative bottom-up, numpy merges)."""
    n = seq.size
    arr = seq.astype(np.int64, copy=True)
    inversions = 0
    width = 1
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            if mid >= hi:
                continue
            inversions += _merge(arr, lo, mid, hi)
        width *= 2
    return int(inversions)


def _merge(arr: np.ndarray, lo: int, mid: int, hi: int) -> int:
    """Merge sorted runs ``arr[lo:mid]`` and ``arr[mid:hi]`` in place;
    return the number of crossing inversions."""
    left = arr[lo:mid]
    right = arr[mid:hi]
    # For each element of `right`, the number of `left` elements greater
    # than it is a crossing inversion; searchsorted counts the complement.
    idx = np.searchsorted(left, right, side="right")
    inv = int((left.size - idx).sum())
    combined = np.concatenate([left, right])
    # Stable argsort of the concatenation performs the merge in C while
    # keeping left-before-right order on ties.
    arr[lo:hi] = combined[np.argsort(combined, kind="stable")]
    return inv


def kendall_tau_distance_naive(pi: RankingLike, sigma: RankingLike) -> int:
    """Quadratic reference implementation of Kendall tau (for testing)."""
    p = _positions(pi).astype(np.int64)
    s = _positions(sigma).astype(np.int64)
    check_same_length(p, s, "rankings")
    n = p.size
    if n < 2:
        return 0
    dp = p[:, None] - p[None, :]
    ds = s[:, None] - s[None, :]
    discordant = (dp * ds) < 0
    return int(np.triu(discordant, k=1).sum())


def max_kendall_tau(n: int) -> int:
    """Maximum possible Kendall tau distance between rankings of ``n`` items."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return n * (n - 1) // 2


def kendall_tau_coefficient(pi: RankingLike, sigma: RankingLike) -> float:
    """Kendall's tau coefficient ``kτ = 1 − 4·d_KT / (k(k−1)) ∈ [−1, 1]``.

    Equals 1 for identical rankings and −1 for exact reversals.
    """
    p = _positions(pi)
    s = _positions(sigma)
    # Validate before the degenerate-size early return: a length-mismatched
    # sigma must raise, not silently score 1.0.
    check_same_length(p, s, "rankings")
    n = p.size
    if n < 2:
        return 1.0
    d = kendall_tau_distance(pi, sigma)
    return 1.0 - 4.0 * d / (n * (n - 1))


def spearman_distance(pi: RankingLike, sigma: RankingLike) -> int:
    """Spearman distance ``d₂ = Σᵢ (π(i) − σ(i))²`` (total squared displacement)."""
    p = _positions(pi).astype(np.int64)
    s = _positions(sigma).astype(np.int64)
    check_same_length(p, s, "rankings")
    diff = p - s
    return int(np.dot(diff, diff))


def footrule_distance(pi: RankingLike, sigma: RankingLike) -> int:
    """Spearman's footrule ``Σᵢ |π(i) − σ(i)|`` (total absolute displacement).

    This is the efficiency objective optimized exactly by
    ApproxMultiValuedIPF's bipartite matching.
    """
    p = _positions(pi).astype(np.int64)
    s = _positions(sigma).astype(np.int64)
    check_same_length(p, s, "rankings")
    return int(np.abs(p - s).sum())


def ulam_distance(pi: RankingLike, sigma: RankingLike) -> int:
    """Ulam distance: ``n`` minus the longest common subsequence of the two
    orders, i.e. the minimum number of move-one-item operations.

    Computed as ``n − LIS(relative order)`` in ``O(n log n)``.
    """
    p = _positions(pi)
    s = _positions(sigma)
    check_same_length(p, s, "rankings")
    n = p.size
    if n == 0:
        return 0
    # Items in sigma's order; their pi-positions form a sequence whose LIS
    # length is the size of the largest sub-ranking on which they agree.
    if isinstance(sigma, Ranking):
        sigma_order = sigma.order
    else:
        sigma_order = as_permutation_array(sigma)
    seq = p[sigma_order]
    return n - _longest_increasing_subsequence_length(seq)


def _longest_increasing_subsequence_length(seq: np.ndarray) -> int:
    """Patience-sorting LIS length (strictly increasing)."""
    tails: list[int] = []
    for value in seq.tolist():
        lo, hi = 0, len(tails)
        while lo < hi:
            mid = (lo + hi) // 2
            if tails[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(tails):
            tails.append(value)
        else:
            tails[lo] = value
    return len(tails)


def cayley_distance(pi: RankingLike, sigma: RankingLike) -> int:
    """Cayley distance: minimum number of (arbitrary) transpositions turning
    one ranking into the other, ``n`` minus the number of cycles of σπ⁻¹."""
    p = _positions(pi)
    s = _positions(sigma)
    check_same_length(p, s, "rankings")
    n = p.size
    if n == 0:
        return 0
    # Composite permutation mapping pi-positions to sigma-positions.
    comp = np.empty(n, dtype=np.int64)
    comp[p] = s
    seen = np.zeros(n, dtype=bool)
    cycles = 0
    for start in range(n):
        if seen[start]:
            continue
        cycles += 1
        j = start
        while not seen[j]:
            seen[j] = True
            j = int(comp[j])
    return n - cycles


def weighted_kendall_tau(
    pi: RankingLike,
    sigma: RankingLike,
    weights: Sequence[float] | np.ndarray | None = None,
) -> float:
    """Position-weighted Kendall tau distance.

    Each discordant pair ``(i, j)`` contributes ``w[min position]`` — the
    weight of the higher of the two positions the pair occupies in ``pi`` —
    so disagreements near the top cost more.  With ``weights = None`` the
    DCG discounts ``1/log(1+r)`` are used (1-based rank ``r``), the natural
    companion to NDCG-based efficiency; uniform weights recover the plain
    Kendall tau.

    Runs in ``O(n²)`` (the weighting breaks the inversion-count trick);
    intended for the paper's scales (``n ≤ a few hundred``).
    """
    p = _positions(pi).astype(np.int64)
    s = _positions(sigma).astype(np.int64)
    check_same_length(p, s, "rankings")
    n = p.size
    if n < 2:
        return 0.0
    if weights is None:
        w = 1.0 / np.log1p(np.arange(1, n + 1, dtype=np.float64))
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError(
                f"weights must have shape ({n},), got {w.shape}"
            )
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
    dp = p[:, None] - p[None, :]
    ds = s[:, None] - s[None, :]
    discordant = np.triu((dp * ds) < 0, k=1)
    top_pos = np.minimum(p[:, None], p[None, :])
    return float((w[top_pos] * discordant).sum())


def hamming_distance(pi: RankingLike, sigma: RankingLike) -> int:
    """Number of positions at which the two rankings hold different items."""
    p = _positions(pi)
    s = _positions(sigma)
    check_same_length(p, s, "rankings")
    return int((p != s).sum())
