"""Score-based ranking construction.

The paper's quality-optimal ranking ``π*`` lists items in non-increasing
score order.  Ties are broken deterministically by item index unless a seed
is supplied, in which case tied items are shuffled — matching the common
practice of randomizing ties so that repeated experiments do not privilege
low item ids.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator


def rank_by_score(scores: Sequence[float], seed: SeedLike = None) -> Ranking:
    """Ranking of items in non-increasing score order.

    Parameters
    ----------
    scores:
        One relevance score per item.
    seed:
        When given, ties are broken uniformly at random; otherwise by item
        index (stable).
    """
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {s.shape}")
    if seed is None:
        order = np.argsort(-s, kind="stable")
    else:
        rng = as_generator(seed)
        jitter = rng.permutation(s.size)
        # Sort by (-score, jitter): random tie-break, deterministic per seed.
        order = np.lexsort((jitter, -s))
    return Ranking(order)


def scores_in_rank_order(ranking: Ranking, scores: Sequence[float]) -> np.ndarray:
    """The score of the item at each position (top first)."""
    s = np.asarray(scores, dtype=np.float64)
    if s.size != len(ranking):
        raise ValueError(
            f"scores has {s.size} entries for a ranking of {len(ranking)} items"
        )
    return s[ranking.order]


def is_sorted_by_score(ranking: Ranking, scores: Sequence[float]) -> bool:
    """``True`` iff ``ranking`` lists items in non-increasing score order."""
    in_order = scores_in_rank_order(ranking, scores)
    return bool(np.all(np.diff(in_order) <= 0))
