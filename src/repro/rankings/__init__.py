"""Permutation core: the :class:`Ranking` type, rank distances, and quality
measures (NDCG family) used throughout the paper."""

from repro.rankings.permutation import Ranking, identity, random_ranking
from repro.rankings.distances import (
    cayley_distance,
    footrule_distance,
    hamming_distance,
    kendall_tau_coefficient,
    kendall_tau_distance,
    kendall_tau_distance_naive,
    max_kendall_tau,
    spearman_distance,
    ulam_distance,
)
from repro.rankings.quality import (
    cumulative_gain,
    dcg,
    idcg,
    ndcg,
    ndcg_of_order,
    position_discounts,
)
from repro.rankings.sorting import rank_by_score, scores_in_rank_order
from repro.rankings.topk import (
    footrule_topk,
    kendall_tau_topk,
    overlap,
    recall_at_k,
)

__all__ = [
    "footrule_topk",
    "kendall_tau_topk",
    "overlap",
    "recall_at_k",
    "Ranking",
    "identity",
    "random_ranking",
    "kendall_tau_distance",
    "kendall_tau_distance_naive",
    "kendall_tau_coefficient",
    "max_kendall_tau",
    "spearman_distance",
    "footrule_distance",
    "ulam_distance",
    "cayley_distance",
    "hamming_distance",
    "cumulative_gain",
    "dcg",
    "idcg",
    "ndcg",
    "ndcg_of_order",
    "position_discounts",
    "rank_by_score",
    "scores_in_rank_order",
]
