"""Command-line interface: regenerate any paper artefact, or serve a
ranking request, from a terminal.

Examples
--------
::

    repro-fair-ranking fig1
    repro-fair-ranking fig1 --jobs 4
    repro-fair-ranking fig5 --theta 1 --sigma 1 --jobs 4
    repro-fair-ranking all --fast --jobs -1
    repro-fair-ranking rank --algorithm mallows --scores scores.csv \\
        --groups groups.csv --param theta=1.0 --param n_samples=15
    repro-fair-ranking rank --list-algorithms
    repro-fair-ranking lint src/ --format json
    repro-fair-ranking lint src/repro/serve --select REP002,REP003

Every command runs through one :class:`~repro.engine.RankingEngine`
session per invocation: ``--jobs`` sets the session's worker budget
(``-1`` = all cores), the experiments schedule their work units (figure
cells, per-δ trial blocks, panel repeats) through the session pool, and
``all`` flattens *every* experiment into one task graph — the seven
figures, Table I, and all four German Credit panels interleave through a
single pool, so the full pipeline scales with the core count rather than
with its widest inner loop.  Reports are byte-identical for every value.
``rank`` serves the engine's algorithm registry directly: scores/groups
from CSV files (or inline comma-separated values), algorithm parameters
as ``--param key=value`` pairs, no Python required.  ``lint`` runs the
repository's own static-analysis gate (:mod:`repro.analysis`) — the REP
rules that keep the determinism, sans-IO, and cache contracts honest —
with shell-friendly exit codes: 0 clean, 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys

from repro.engine import (
    RankingEngine,
    RankingRequest,
    algorithm_spec,
    iter_algorithm_specs,
)
from repro.experiments.config import (
    Fig1Config,
    Fig2Config,
    Fig34Config,
    GermanCreditConfig,
)
from repro.experiments.fig1_infeasible import run_fig1
from repro.experiments.fig2_central_ii import run_fig2
from repro.experiments.fig34_tradeoff import run_fig34
from repro.experiments.german_credit_exp import run_german_credit, run_table1
from repro.experiments.runner import run_all


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fair-ranking",
        description=(
            "Reproduce the experiments of 'Fairness in Ranking: Robustness "
            "through Randomization without the Protected Attribute' "
            "(ICDE 2024)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_jobs_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help=(
                "worker processes (-1 = all cores); output is byte-identical "
                "for every value.  Each experiment's independent work units "
                "(figure cells, per-delta trial blocks, German Credit panel "
                "repeats) are scheduled onto one shared process pool; 'all' "
                "flattens every experiment into a single task graph so the "
                "whole pipeline scales with the core count.  Workloads too "
                "small to amortize the pool run single-process and warn once"
            ),
        )
        p.add_argument(
            "--inject-fault",
            metavar="SPEC",
            default=None,
            help=(
                "deterministic chaos testing: KEY:ATTEMPT:ACTION[:SECONDS]"
                "[;...] — KEY a unit key ('*' = any), ATTEMPT the 0-based "
                "retry ordinal, ACTION one of exit/raise/stall.  The plan "
                "ships to pool workers through the executor initializer; "
                "crash faults are retried under the supervised scheduler "
                "and output stays byte-identical to a fault-free run.  "
                "Also honored from $REPRO_INJECT_FAULT"
            ),
        )

    _add_jobs_flag(sub.add_parser("fig1", help="Fig.1: Mallows noise vs Infeasible Index"))
    _add_jobs_flag(sub.add_parser("fig2", help="Fig.2: central-ranking II vs delta"))
    _add_jobs_flag(sub.add_parser("fig3", help="Fig.3: sample II vs theta, per delta"))
    _add_jobs_flag(sub.add_parser("fig4", help="Fig.4: sample NDCG vs theta, per delta"))
    sub.add_parser("table1", help="Table I: German Credit group distribution")

    for fig in ("fig5", "fig6", "fig7"):
        p = sub.add_parser(fig, help=f"{fig}: German Credit panel")
        p.add_argument("--theta", type=float, default=0.5, help="Mallows dispersion")
        p.add_argument(
            "--sigma", type=float, default=0.0, help="constraint noise std-dev"
        )
        p.add_argument(
            "--repeats", type=int, default=15, help="noisy-run repetitions"
        )
        p.add_argument(
            "--milp",
            action="store_true",
            help="solve the ILP with HiGHS instead of the exact DP",
        )
        _add_jobs_flag(p)

    p_rank = sub.add_parser(
        "rank",
        help=(
            "serve one ranking request through the engine's algorithm "
            "registry (no Python required)"
        ),
    )
    p_rank.add_argument(
        "--algorithm",
        metavar="NAME",
        default=None,
        help="registry name (see --list-algorithms), e.g. mallows, dp, ipf",
    )
    p_rank.add_argument(
        "--scores",
        metavar="CSV",
        default=None,
        help=(
            "item scores: a CSV file (one float per line, or one "
            "comma-separated line) or an inline comma-separated list"
        ),
    )
    p_rank.add_argument(
        "--groups",
        metavar="CSV",
        default=None,
        help=(
            "protected-attribute labels, aligned with --scores (same "
            "formats); optional for attribute-blind algorithms (mallows, "
            "gmm)"
        ),
    )
    p_rank.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "algorithm constructor parameter (repeatable), e.g. "
            "--param theta=1.0 --param n_samples=15"
        ),
    )
    p_rank.add_argument(
        "--seed", type=int, default=0, help="seed of the request's stream"
    )
    p_rank.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="K",
        help=(
            "serve the request K times (independent seed children) as one "
            "streamed rank_many batch; rankings print in completion order"
        ),
    )
    p_rank.add_argument(
        "--list-algorithms",
        action="store_true",
        help="list the registered algorithms and exit",
    )
    _add_jobs_flag(p_rank)

    def _add_serve_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--requests", type=int, default=64, metavar="N",
            help="synthetic mixed-kind requests to serve (default 64)",
        )
        p.add_argument(
            "--window", type=float, default=0.002, metavar="SECONDS",
            help="micro-batching window: single rank calls arriving within "
                 "it coalesce into one rank_many dispatch (default 0.002)",
        )
        p.add_argument(
            "--max-batch", type=int, default=16, metavar="K",
            help="hard cap per coalesced batch (a full batch dispatches "
                 "before its window expires; default 16)",
        )
        p.add_argument(
            "--budget", type=float, default=1.0, metavar="SECONDS",
            help="in-flight admission budget in predicted seconds "
                 "(default 1.0)",
        )
        p.add_argument(
            "--queue-depth", type=int, default=128, metavar="N",
            help="bounded admission queue; beyond it requests are rejected "
                 "with ServerOverloaded (default 128)",
        )
        p.add_argument(
            "--deadline", type=float, default=None, metavar="SECONDS",
            help="per-request deadline (default: none)",
        )
        p.add_argument(
            "--warm-start", action="append", default=[], metavar="JSON",
            help="BENCH_*.json trajectory file to warm-start the cost "
                 "model from (repeatable); admission is priced by measured "
                 "EWMAs before the first response",
        )
        p.add_argument(
            "--seed", type=int, default=0,
            help="root of the server's seed tree (default 0)",
        )
        _add_jobs_flag(p)

    p_serve = sub.add_parser(
        "serve",
        help=(
            "run the async serving tier over one engine session: an "
            "in-process AsyncRankingServer under a swarm of concurrent "
            "clients, with coalescing micro-batches and cost-priced "
            "admission control"
        ),
    )
    _add_serve_flags(p_serve)
    p_serve.add_argument(
        "--verify-digest", action="store_true",
        help="also run the same submissions through a serial loop and "
             "assert the served responses digest byte-identically",
    )
    p_serve.add_argument(
        "--http", metavar="HOST:PORT", default=None,
        help="instead of the in-process client swarm, expose the server "
             "over HTTP/1.1 JSON (POST /v1/rank, POST /v1/rank_many, "
             "GET /stats, GET /healthz) until SIGTERM/SIGINT, then drain "
             "gracefully.  PORT 0 binds an ephemeral port; the bound "
             "address is printed on stdout",
    )

    p_client = sub.add_parser(
        "bench-client",
        help=(
            "load-generate against an in-process server and report "
            "throughput + per-kind latency percentiles (optionally "
            "comparing coalescing on vs off)"
        ),
    )
    _add_serve_flags(p_client)
    p_client.add_argument(
        "--rate", type=float, default=None, metavar="REQ_PER_S",
        help="open-loop arrival rate (default: one closed-loop burst)",
    )
    p_client.add_argument(
        "--retries", type=int, default=0, metavar="K",
        help="retry budget per request on ServerOverloaded (default 0)",
    )
    p_client.add_argument(
        "--compare-coalescing", action="store_true",
        help="run the same load twice — micro-batching on vs off "
             "(max batch 1) — and print the throughput ratio",
    )
    p_client.add_argument(
        "--http", metavar="URL", default=None,
        help="drive a remote `repro serve --http` frontend at "
             "http://HOST:PORT instead of an in-process server; "
             "per-request seeds are pinned client-side so the served "
             "digest stays comparable to the serial loop",
    )
    p_client.add_argument(
        "--verify-digest", action="store_true",
        help="assert the served responses digest byte-identically "
             "against a serial rank_many over the same request stream",
    )

    p_lint = sub.add_parser(
        "lint",
        help=(
            "run the repo's static-analysis rules (REP001-REP011: seeded "
            "RNG, clock-free sans-IO, non-blocking async, cache/registry "
            "discipline, sorted digest iteration, worker error hygiene, "
            "bounded retries, plus the transitive call-graph rules and "
            "picklable pool payloads); exits 0 when clean, 1 on findings, "
            "2 on usage/parse errors"
        ),
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directory trees to lint (*.py)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format: human text (default) or the CI JSON artefact",
    )
    p_lint.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    p_lint.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    p_lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by `# repro: noqa[...]` markers",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules with their rationale and exit",
    )
    p_lint.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the incremental cache: re-parse and re-analyze "
             "every module from scratch",
    )
    p_lint.add_argument(
        "--cache-file",
        metavar="FILE",
        default=None,
        help="incremental cache location "
             "(default: .repro-lint-cache.json)",
    )
    p_lint.add_argument(
        "--cache-stats",
        metavar="FILE",
        default=None,
        help="also write cache hit/miss counters to FILE as JSON "
             "(the CI artefact)",
    )
    p_lint.add_argument(
        "--explain",
        metavar="REPnnn:PATH:LINE",
        default=None,
        help="print the witness call chain for the transitive finding "
             "of rule REPnnn at PATH:LINE, then exit",
    )

    p_all = sub.add_parser(
        "all",
        help=(
            "run every artefact; with --jobs N the experiments are "
            "flattened into one task graph on a shared worker pool"
        ),
    )
    p_all.add_argument(
        "--fast", action="store_true", help="reduced Monte-Carlo settings"
    )
    _add_jobs_flag(p_all)
    p_all.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="also write each artefact to DIR as a .txt file plus an index",
    )
    return parser


def _parse_values(spec: str, what: str) -> list[str]:
    """Raw string cells of ``spec``: a CSV file path, or an inline
    comma-separated list (the serving path must not require files)."""
    if os.path.exists(spec):
        with open(spec, "r", encoding="utf-8") as fh:
            cells = [
                cell.strip()
                for line in fh
                for cell in line.replace("\t", ",").split(",")
            ]
    else:
        cells = [cell.strip() for cell in spec.split(",")]
    cells = [cell for cell in cells if cell]
    if not cells:
        raise SystemExit(f"--{what}: no values found in {spec!r}")
    return cells


def _parse_params(pairs: list[str]) -> dict:
    """``KEY=VALUE`` pairs → constructor kwargs (literals where possible)."""
    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            params[key] = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            params[key] = value  # plain string (e.g. a label)
    return params


def _cmd_rank(args, engine: RankingEngine) -> int:
    """The ``rank`` subcommand: serve requests from the registry."""
    import numpy as np

    from repro.algorithms.base import FairRankingProblem
    from repro.fairness.infeasible_index import infeasible_index
    from repro.groups.attributes import GroupAssignment
    from repro.rankings.quality import ndcg

    if args.list_algorithms:
        for spec in iter_algorithm_specs():
            attr = "" if spec.requires_protected_attribute else " [attribute-blind]"
            print(f"{spec.name:14s} {spec.summary}{attr}")
        return 0
    if args.algorithm is None or args.scores is None:
        raise SystemExit("rank requires --algorithm and --scores "
                         "(or --list-algorithms)")
    try:
        spec = algorithm_spec(args.algorithm)
    except KeyError as exc:
        raise SystemExit(f"--algorithm: {exc.args[0]}")
    if spec.requires_protected_attribute and args.groups is None:
        raise SystemExit(
            f"--algorithm {spec.name} requires the protected attribute: "
            "pass --groups (attribute-blind algorithms are marked in "
            "--list-algorithms)"
        )
    try:
        scores = np.array([float(c) for c in _parse_values(args.scores, "scores")])
    except ValueError as exc:
        raise SystemExit(f"--scores: {exc}")
    groups = None
    if args.groups is not None:
        labels = _parse_values(args.groups, "groups")
        if len(labels) != scores.size:
            raise SystemExit(
                f"{len(labels)} group labels for {scores.size} scores"
            )
        groups = GroupAssignment(labels)
    if args.repeat < 1:
        raise SystemExit(f"--repeat must be >= 1, got {args.repeat}")

    problem = FairRankingProblem.from_scores(scores, groups)
    params = _parse_params(args.param)
    requests = [
        RankingRequest(
            args.algorithm, problem, params=params, request_id=k
        )
        for k in range(args.repeat)
    ]
    for response in engine.rank_many(requests, seed=args.seed):
        print(f"request {response.request_id}: "
              f"{response.metadata.get('algorithm_label', response.algorithm)}")
        print(" order:", response.ranking.order.tolist())
        print(f" NDCG : {ndcg(response.ranking, scores):.4f}")
        if groups is not None:
            ii = infeasible_index(
                response.ranking, groups, problem.require_constraints()
            )
            print(f" Infeasible Index: {ii}")
    stats = engine.stats()
    print(f"# engine: {stats.summary()}", file=sys.stderr)
    return 0


class _LintUsageError(Exception):
    """A ``lint`` usage problem (reported to stderr, exit code 2)."""


def _parse_rule_list(spec: str | None, what: str) -> tuple[str, ...] | None:
    """``--select``/``--ignore`` comma lists → validated rule-id tuples."""
    from repro.analysis import STALE_RULE_ID, rule_ids

    if spec is None:
        return None
    known = set(rule_ids()) | {STALE_RULE_ID}
    names = tuple(
        name.strip().upper() for name in spec.split(",") if name.strip()
    )
    if not names:
        raise _LintUsageError(f"--{what} names no rules")
    for name in names:
        if name not in known:
            raise _LintUsageError(
                f"unknown rule {name!r} in --{what} "
                f"(known: {', '.join(sorted(known))})"
            )
    return names


def _parse_explain_spec(spec: str) -> tuple[str, str, int]:
    """``REPnnn:path:line`` → its three validated parts.

    The path may itself contain colons only on platforms where that is
    unlikely anyway; splitting rule off the front and line off the back
    keeps ordinary paths working.
    """
    head, _, rest = spec.partition(":")
    body, _, line_text = rest.rpartition(":")
    if not head or not body or not line_text:
        raise _LintUsageError(
            f"--explain wants REPnnn:PATH:LINE, got {spec!r}"
        )
    try:
        line = int(line_text)
    except ValueError:
        raise _LintUsageError(
            f"--explain line must be an integer, got {line_text!r}"
        )
    return head.upper(), body, line


def _cmd_lint(args) -> int:
    """The ``lint`` subcommand — the self-hosted static-analysis gate.

    Exit codes are shell-friendly and CI-stable: ``0`` no unsuppressed
    findings, ``1`` at least one finding (including stale suppressions),
    ``2`` usage or parse errors (bad paths, bad rule ids, unparsable
    Python, malformed noqa markers).
    """
    from repro.analysis import (
        DEFAULT_CACHE_PATH,
        DEFAULT_CONFIG,
        LintCache,
        LintEngine,
        iter_rules,
        render_json,
        render_text,
    )

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id}  {rule.summary}")
            print(f"       {rule.rationale}")
        return 0
    try:
        select = _parse_rule_list(args.select, "select")
        ignore = _parse_rule_list(args.ignore, "ignore") or ()
        explain = (
            None if args.explain is None else _parse_explain_spec(args.explain)
        )
    except _LintUsageError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if not args.paths:
        print("lint: at least one PATH is required", file=sys.stderr)
        return 2
    for path in args.paths:
        if not os.path.exists(path):
            print(f"lint: no such file or directory: {path}", file=sys.stderr)
            return 2
    config = DEFAULT_CONFIG.with_rules(select=select, ignore=ignore)
    engine = LintEngine(config)
    cache = None
    if not args.no_cache:
        cache_path = args.cache_file or DEFAULT_CACHE_PATH
        cache = LintCache(cache_path, config)
    result = engine.lint_paths(args.paths, cache=cache)
    if cache is not None:
        try:
            cache.save()
        except OSError as exc:
            # A read-only checkout must not fail the gate over the cache.
            print(f"lint: could not write cache: {exc}", file=sys.stderr)
    if args.cache_stats is not None:
        stats = cache.stats.as_dict() if cache is not None else {}
        with open(args.cache_stats, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, sort_keys=True)
            fh.write("\n")
    if explain is not None:
        return _explain_finding(result, explain)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    if result.errors:
        return 2
    return 0 if not result.active else 1


def _explain_finding(result, spec: tuple[str, str, int]) -> int:
    """``--explain REPnnn:path:line``: print the matching finding's
    message and witness chain, one hop per line."""
    rule, path, line = spec
    wanted = os.path.abspath(path)
    for finding in result.findings:
        if finding.rule != rule or finding.line != line:
            continue
        if os.path.abspath(finding.path) != wanted:
            continue
        print(f"{finding.location()}: {finding.rule} {finding.message}")
        if finding.witness:
            print("witness chain:")
            indent = 2
            for hop in finding.witness:
                print(f"{' ' * indent}{hop}")
                indent += 2
        else:
            print("(no witness chain: this is a direct, per-module finding)")
        return 0
    print(
        f"lint: no {rule} finding at {path}:{line} "
        "(run without --explain to list findings)",
        file=sys.stderr,
    )
    return 2


def _serve_config(args):
    """Shared ``serve``/``bench-client`` knobs → a ServeConfig."""
    from repro.serve import ServeConfig

    try:
        return ServeConfig(
            batch_window=args.window,
            max_batch_size=args.max_batch,
            max_queue_depth=args.queue_depth,
            cost_budget=args.budget,
            default_deadline=args.deadline,
            seed=args.seed,
            n_jobs=None,  # the engine session's budget (--jobs)
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _print_load_report(report, stats, prefix: str = "") -> None:
    print(f"{prefix}{report.summary()}")
    print(f"{prefix}server: {stats.summary()}")
    for label, summary in stats.latency_percentiles().items():
        rendered = ", ".join(
            f"{name}={value * 1000.0:.2f}ms"
            for name, value in summary.items()
        )
        print(f"{prefix}  {label}: {rendered}")


def _serve_http(args, engine: RankingEngine, config) -> int:
    """``serve --http``: expose the tier over HTTP until SIGTERM/SIGINT."""
    import asyncio

    from repro.net import HttpRankingServer

    host, sep, port_text = args.http.rpartition(":")
    if not sep or not host or not port_text.isdigit():
        raise SystemExit(f"--http expects HOST:PORT, got {args.http!r}")

    async def session():
        server = HttpRankingServer(engine, config, host=host, port=int(port_text))
        await server.start()
        # The bound address goes to stdout so harnesses driving
        # ``--http HOST:0`` can read the ephemeral port back.
        print(f"serving on http://{server.host}:{server.port}", flush=True)
        print("# SIGTERM/SIGINT stops accepting and drains in-flight "
              "requests", file=sys.stderr)
        stats = server.inner.stats()
        await server.serve_forever()
        return stats

    stats = asyncio.run(session())
    print(f"drained: {stats.summary()}")
    return 0


def _cmd_serve(args, engine: RankingEngine) -> int:
    """The ``serve`` subcommand: an in-process serving-tier session, or
    an HTTP frontend over it (``--http``)."""
    import asyncio

    from repro.serve import AsyncRankingServer, run_load, synthetic_requests

    if args.requests < 1:
        raise SystemExit(f"--requests must be >= 1, got {args.requests}")
    config = _serve_config(args)
    for path in args.warm_start:
        imported = engine.warm_start_costs(path)
        print(f"# warm-started {imported} cost kinds from {path}",
              file=sys.stderr)
    if args.http is not None:
        return _serve_http(args, engine, config)
    requests = synthetic_requests(args.requests, seed=args.seed)

    async def session():
        async with AsyncRankingServer(engine, config) as server:
            report = await run_load(server, requests)
            return report, server.stats()

    report, stats = asyncio.run(session())
    _print_load_report(report, stats)
    if args.verify_digest:
        _verify_serial_digest(report, requests, args.seed)
    return 0


def _verify_serial_digest(report, requests, seed) -> None:
    """Assert a load report's digest equals a serial ``rank_many``."""
    from repro.engine import responses_digest

    if report.served != len(requests):
        raise SystemExit(
            "digest verification needs every request served — relax "
            "--budget/--queue-depth/--deadline"
        )
    with RankingEngine(n_jobs=1) as ref:
        serial = responses_digest(ref.rank_many(requests, seed=seed, n_jobs=1))
    if report.digest() != serial:
        raise SystemExit("digest mismatch: served != serial loop")
    print(f"digest ok: {serial[:16]}… matches the serial loop")


def _bench_client_http(args) -> int:
    """``bench-client --http``: drive a remote frontend over the wire."""
    import asyncio

    from repro.net import AsyncHttpClient
    from repro.serve import pin_request_seeds, run_load, synthetic_requests

    if args.compare_coalescing:
        raise SystemExit(
            "--compare-coalescing needs an in-process server; it cannot "
            "reconfigure a remote one"
        )
    requests = synthetic_requests(args.requests, seed=args.seed)
    # Over the wire, arrival order is not submission order: pin each
    # request's SeedSequence child by its client-side ordinal so the
    # served digest stays byte-identical to the serial loop.
    pinned = pin_request_seeds(requests, args.seed)

    async def session():
        async with AsyncHttpClient.from_url(args.http) as client:
            report = await run_load(
                client,
                pinned,
                arrival_rate=args.rate,
                deadline=args.deadline,
                max_retries=args.retries,
            )
            stats = await client.stats()
            return report, stats

    report, stats = asyncio.run(session())
    print(report.summary())
    print(
        f"server: breaker={stats['breaker']} "
        f"completed={stats['counters']['completed']} "
        f"coalescing={stats['coalescing']:.2f} requests/batch"
    )
    for label, summary in report.latency_percentiles().items():
        rendered = ", ".join(
            f"{name}={value * 1000.0:.2f}ms" for name, value in summary.items()
        )
        print(f"  {label}: {rendered}")
    if args.verify_digest:
        _verify_serial_digest(report, requests, args.seed)
    return 0


def _cmd_bench_client(args, engine: RankingEngine) -> int:
    """The ``bench-client`` subcommand: a load generator against an
    in-process server, or a remote HTTP frontend (``--http``)."""
    import asyncio
    from dataclasses import replace as _replace

    from repro.serve import AsyncRankingServer, run_load, synthetic_requests

    if args.requests < 1:
        raise SystemExit(f"--requests must be >= 1, got {args.requests}")
    if args.http is not None:
        return _bench_client_http(args)
    config = _serve_config(args)
    for path in args.warm_start:
        engine.warm_start_costs(path)
    requests = synthetic_requests(args.requests, seed=args.seed)

    def run_once(cfg):
        async def session():
            async with AsyncRankingServer(engine, cfg) as server:
                report = await run_load(
                    server,
                    requests,
                    arrival_rate=args.rate,
                    max_retries=args.retries,
                )
                return report, server.stats()

        return asyncio.run(session())

    report, stats = run_once(config)
    _print_load_report(report, stats)
    if args.verify_digest:
        _verify_serial_digest(report, requests, args.seed)
    if args.compare_coalescing:
        solo = _replace(config, max_batch_size=1, batch_window=0.0)
        solo_report, solo_stats = run_once(solo)
        _print_load_report(solo_report, solo_stats, prefix="[no-coalescing] ")
        if solo_report.throughput > 0.0:
            ratio = report.throughput / solo_report.throughput
            print(f"coalescing speedup: {ratio:.2f}x "
                  f"({stats.coalescing:.2f} requests/batch vs 1.00)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    One :class:`~repro.engine.RankingEngine` session per invocation: its
    pool handle is threaded through every experiment config, its measured
    cost model schedules the task graph, and ``rank`` serves from its
    registry.
    """
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        # Static analysis needs no engine session (and must not pay for
        # one): dispatch before the session spins up.
        return _cmd_lint(args)
    fault_spec = getattr(args, "inject_fault", None) or os.environ.get(
        "REPRO_INJECT_FAULT"
    )
    if fault_spec:
        from repro.faults import install_plan, parse_fault_specs

        try:
            install_plan(parse_fault_specs(fault_spec))
        except ValueError as exc:
            print(f"error: --inject-fault: {exc}", file=sys.stderr)
            return 2
        print(f"# fault injection active: {fault_spec}", file=sys.stderr)
    engine = RankingEngine(n_jobs=getattr(args, "jobs", 1))
    pool = engine.pool

    if args.command == "rank":
        return _cmd_rank(args, engine)
    if args.command == "serve":
        with engine:
            return _cmd_serve(args, engine)
    if args.command == "bench-client":
        with engine:
            return _cmd_bench_client(args, engine)
    if args.command == "fig1":
        print(run_fig1(Fig1Config(n_jobs=pool.n_jobs, pool=pool)).to_text())
    elif args.command == "fig2":
        print(run_fig2(Fig2Config(n_jobs=pool.n_jobs, pool=pool)).to_text())
    elif args.command == "fig3":
        print(run_fig34(Fig34Config(n_jobs=pool.n_jobs, pool=pool)).to_text_fig3())
    elif args.command == "fig4":
        print(run_fig34(Fig34Config(n_jobs=pool.n_jobs, pool=pool)).to_text_fig4())
    elif args.command == "table1":
        print(run_table1())
    elif args.command in ("fig5", "fig6", "fig7"):
        config = GermanCreditConfig(
            theta=args.theta,
            noise_sigma=args.sigma,
            n_repeats=args.repeats,
            use_milp=args.milp,
            n_jobs=pool.n_jobs,
            pool=pool,
        )
        result = run_german_credit(config)
        text = {
            "fig5": result.to_text_fig5,
            "fig6": result.to_text_fig6,
            "fig7": result.to_text_fig7,
        }[args.command]()
        print(text)
    elif args.command == "all":
        reports = run_all(
            fast=args.fast,
            progress=lambda m: print(f"# {m}", file=sys.stderr),
            engine=engine,
        )
        for key, text in reports.items():
            print(f"\n===== {key} =====")
            print(text)
        if args.output:
            from repro.experiments.reporting import write_reports

            paths = write_reports(reports, args.output)
            print(f"\nwrote {len(paths)} files under {args.output}", file=sys.stderr)
    if engine.fault_counters:
        # Truthful telemetry: surface crash recoveries (chaos lanes and
        # real worker deaths alike) without touching the report stream.
        print(
            f"# faults recovered: {engine.fault_counters.snapshot()}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
