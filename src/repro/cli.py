"""Command-line interface: regenerate any paper artefact from a terminal.

Examples
--------
::

    repro-fair-ranking fig1
    repro-fair-ranking fig1 --jobs 4
    repro-fair-ranking fig5 --theta 1 --sigma 1 --jobs 4
    repro-fair-ranking all --fast --jobs -1

``--jobs`` fans the experiments out across worker processes (``-1`` = all
cores).  Each figure command schedules that experiment's own work units
(figure cells, per-δ trial blocks, panel repeats) onto the shared pool;
``all`` goes further and flattens *every* experiment into one task graph —
the seven figures, Table I, and all four German Credit panels interleave
through a single pool, so the full pipeline scales with the core count
rather than with its widest inner loop.  Reports are byte-identical for
every value.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import (
    Fig1Config,
    Fig2Config,
    Fig34Config,
    GermanCreditConfig,
)
from repro.experiments.fig1_infeasible import run_fig1
from repro.experiments.fig2_central_ii import run_fig2
from repro.experiments.fig34_tradeoff import run_fig34
from repro.experiments.german_credit_exp import run_german_credit, run_table1
from repro.experiments.runner import run_all


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fair-ranking",
        description=(
            "Reproduce the experiments of 'Fairness in Ranking: Robustness "
            "through Randomization without the Protected Attribute' "
            "(ICDE 2024)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_jobs_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help=(
                "worker processes (-1 = all cores); output is byte-identical "
                "for every value.  Each experiment's independent work units "
                "(figure cells, per-delta trial blocks, German Credit panel "
                "repeats) are scheduled onto one shared process pool; 'all' "
                "flattens every experiment into a single task graph so the "
                "whole pipeline scales with the core count.  Workloads too "
                "small to amortize the pool run single-process and warn once"
            ),
        )

    _add_jobs_flag(sub.add_parser("fig1", help="Fig.1: Mallows noise vs Infeasible Index"))
    _add_jobs_flag(sub.add_parser("fig2", help="Fig.2: central-ranking II vs delta"))
    _add_jobs_flag(sub.add_parser("fig3", help="Fig.3: sample II vs theta, per delta"))
    _add_jobs_flag(sub.add_parser("fig4", help="Fig.4: sample NDCG vs theta, per delta"))
    sub.add_parser("table1", help="Table I: German Credit group distribution")

    for fig in ("fig5", "fig6", "fig7"):
        p = sub.add_parser(fig, help=f"{fig}: German Credit panel")
        p.add_argument("--theta", type=float, default=0.5, help="Mallows dispersion")
        p.add_argument(
            "--sigma", type=float, default=0.0, help="constraint noise std-dev"
        )
        p.add_argument(
            "--repeats", type=int, default=15, help="noisy-run repetitions"
        )
        p.add_argument(
            "--milp",
            action="store_true",
            help="solve the ILP with HiGHS instead of the exact DP",
        )
        _add_jobs_flag(p)

    p_all = sub.add_parser(
        "all",
        help=(
            "run every artefact; with --jobs N the experiments are "
            "flattened into one task graph on a shared worker pool"
        ),
    )
    p_all.add_argument(
        "--fast", action="store_true", help="reduced Monte-Carlo settings"
    )
    _add_jobs_flag(p_all)
    p_all.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="also write each artefact to DIR as a .txt file plus an index",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "fig1":
        print(run_fig1(Fig1Config(n_jobs=args.jobs)).to_text())
    elif args.command == "fig2":
        print(run_fig2(Fig2Config(n_jobs=args.jobs)).to_text())
    elif args.command == "fig3":
        print(run_fig34(Fig34Config(n_jobs=args.jobs)).to_text_fig3())
    elif args.command == "fig4":
        print(run_fig34(Fig34Config(n_jobs=args.jobs)).to_text_fig4())
    elif args.command == "table1":
        print(run_table1())
    elif args.command in ("fig5", "fig6", "fig7"):
        config = GermanCreditConfig(
            theta=args.theta,
            noise_sigma=args.sigma,
            n_repeats=args.repeats,
            use_milp=args.milp,
            n_jobs=args.jobs,
        )
        result = run_german_credit(config)
        text = {
            "fig5": result.to_text_fig5,
            "fig6": result.to_text_fig6,
            "fig7": result.to_text_fig7,
        }[args.command]()
        print(text)
    elif args.command == "all":
        reports = run_all(
            fast=args.fast,
            progress=lambda m: print(f"# {m}", file=sys.stderr),
            n_jobs=args.jobs,
        )
        for key, text in reports.items():
            print(f"\n===== {key} =====")
            print(text)
        if args.output:
            from repro.experiments.reporting import write_reports

            paths = write_reports(reports, args.output)
            print(f"\nwrote {len(paths)} files under {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
