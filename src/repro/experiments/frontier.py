"""Fairness/efficiency trade-off frontiers.

The paper's Figs. 3–4 show the two halves of the trade-off separately; this
module computes them jointly: for a grid of dispersions θ it estimates
``(E[II], E[NDCG])`` of Mallows randomization around a centre and extracts
the Pareto-efficient points — the menu of operating points a deployment can
choose from, with the θ that realizes each.

Also supports the exposure variant: ``(exposure parity gap, NDCG)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.batch import batch_infeasible_index
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.exposure import group_exposures
from repro.groups.attributes import GroupAssignment
from repro.mallows.sampling import sample_mallows_batch
from repro.rankings.permutation import Ranking
from repro.rankings.quality import idcg, position_discounts
from repro.utils.rng import SeedLike, as_generator
from repro.utils.tables import format_table


@dataclass(frozen=True)
class FrontierPoint:
    """One operating point of the randomization trade-off.

    Attributes
    ----------
    theta:
        Dispersion realizing the point.
    unfairness:
        Mean Infeasible Index (or exposure parity gap) of samples.
    ndcg:
        Mean NDCG of samples.
    pareto:
        Whether no other grid point is at least as good on both axes and
        strictly better on one.
    """

    theta: float
    unfairness: float
    ndcg: float
    pareto: bool


@dataclass(frozen=True)
class TradeoffFrontier:
    """A sweep of :class:`FrontierPoint` over a θ grid."""

    points: tuple[FrontierPoint, ...]
    metric: str

    def pareto_points(self) -> list[FrontierPoint]:
        """The Pareto-efficient subset, sorted by θ."""
        return [p for p in self.points if p.pareto]

    def best_theta(self, max_unfairness: float) -> float | None:
        """Largest θ (most efficiency) whose unfairness meets the budget,
        or ``None`` if no grid point qualifies."""
        feasible = [p for p in self.points if p.unfairness <= max_unfairness]
        if not feasible:
            return None
        return max(feasible, key=lambda p: p.theta).theta

    def to_text(self) -> str:
        """Render the frontier as an aligned table."""
        rows = [
            [
                f"{p.theta:g}",
                float(p.unfairness),
                float(p.ndcg),
                "*" if p.pareto else "",
            ]
            for p in self.points
        ]
        return format_table(
            ["theta", self.metric, "mean NDCG", "pareto"],
            rows,
            title=f"Fairness/efficiency frontier ({self.metric} vs NDCG)",
        )


def _mark_pareto(unfairness: np.ndarray, ndcg: np.ndarray) -> np.ndarray:
    """Pareto mask for (minimize unfairness, maximize NDCG)."""
    n = unfairness.size
    pareto = np.ones(n, dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            dominates = (
                unfairness[j] <= unfairness[i]
                and ndcg[j] >= ndcg[i]
                and (unfairness[j] < unfairness[i] or ndcg[j] > ndcg[i])
            )
            if dominates:
                pareto[i] = False
                break
    return pareto


def compute_tradeoff_frontier(
    center: Ranking,
    scores: Sequence[float],
    groups: GroupAssignment,
    constraints: FairnessConstraints | None = None,
    thetas: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0),
    m: int = 400,
    metric: str = "infeasible-index",
    seed: SeedLike = None,
) -> TradeoffFrontier:
    """Sweep θ and estimate the (unfairness, NDCG) frontier.

    Parameters
    ----------
    metric:
        ``"infeasible-index"`` (mean Two-Sided II of samples) or
        ``"exposure-gap"`` (mean max−min group exposure).
    """
    if metric not in ("infeasible-index", "exposure-gap"):
        raise ValueError(f"unknown metric {metric!r}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    rng = as_generator(seed)
    s = np.asarray(scores, dtype=np.float64)
    n = len(center)
    if constraints is None:
        constraints = FairnessConstraints.proportional(groups)
    disc = position_discounts(n)
    ideal = idcg(s, n)

    unfairness = np.empty(len(thetas))
    mean_ndcg = np.empty(len(thetas))
    for t, theta in enumerate(thetas):
        orders = sample_mallows_batch(center, theta, m, seed=rng)
        if metric == "infeasible-index":
            unfairness[t] = float(
                batch_infeasible_index(orders, groups, constraints).mean()
            )
        else:
            gaps = np.empty(m)
            for i, row in enumerate(orders):
                e = group_exposures(Ranking(row), groups)
                nonempty = groups.group_sizes > 0
                gaps[i] = e[nonempty].max() - e[nonempty].min()
            unfairness[t] = float(gaps.mean())
        if ideal == 0.0:
            mean_ndcg[t] = 1.0
        else:
            mean_ndcg[t] = float(
                ((s[orders] * disc[None, :]).sum(axis=1) / ideal).mean()
            )

    pareto = _mark_pareto(unfairness, mean_ndcg)
    points = tuple(
        FrontierPoint(
            theta=float(theta),
            unfairness=float(unfairness[t]),
            ndcg=float(mean_ndcg[t]),
            pareto=bool(pareto[t]),
        )
        for t, theta in enumerate(thetas)
    )
    return TradeoffFrontier(points=points, metric=metric)
