"""Experiment harness: one module per paper artefact (Figs. 1–7, Table I).

Each ``run_*`` function returns a result dataclass carrying the raw series
plus a ``to_text()`` rendering of the same rows/series the paper reports.
"""

from repro.experiments.config import (
    Fig1Config,
    Fig2Config,
    Fig34Config,
    GermanCreditConfig,
)
from repro.experiments.fig1_infeasible import Fig1Result, run_fig1
from repro.experiments.fig2_central_ii import Fig2Result, run_fig2
from repro.experiments.fig34_tradeoff import Fig34Result, run_fig34
from repro.experiments.german_credit_exp import (
    GermanCreditResult,
    run_german_credit,
    run_table1,
)
from repro.experiments.frontier import (
    FrontierPoint,
    TradeoffFrontier,
    compute_tradeoff_frontier,
)
from repro.experiments.reporting import write_reports
from repro.experiments.runner import run_all

__all__ = [
    "FrontierPoint",
    "TradeoffFrontier",
    "compute_tradeoff_frontier",
    "write_reports",
    "run_all",
    "Fig1Config",
    "Fig2Config",
    "Fig34Config",
    "GermanCreditConfig",
    "Fig1Result",
    "run_fig1",
    "Fig2Result",
    "run_fig2",
    "Fig34Result",
    "run_fig34",
    "GermanCreditResult",
    "run_german_credit",
    "run_table1",
]
