"""Figure 1: Mallows randomization vs the Infeasible Index of the centre.

For each engineered central ranking (a target Infeasible Index on ten items
in two equal groups) and each dispersion θ, draw Mallows samples and report
the bootstrap mean II of the samples.  The paper's qualitative findings:

* as θ → ∞ the sample II converges to the central ranking's II;
* for a *high*-II centre, small θ produces a **large II drop**;
* for a *low*-II centre, small θ raises II only mildly (toward the uniform
  average).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batch import mallows_sample_and_score
from repro.datasets.synthetic import engineered_ranking_with_ii
from repro.experiments.config import Fig1Config
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.utils.bootstrap import BootstrapResult, bootstrap_ci
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_series


@dataclass(frozen=True)
class Fig1Result:
    """Series for Figure 1.

    ``mean_sample_ii[central_ii][theta]`` is the bootstrap mean Infeasible
    Index of Mallows samples centred on a ranking whose own II is
    ``central_ii``.
    """

    config: Fig1Config
    central_iis: tuple[int, ...]
    mean_sample_ii: dict[int, dict[float, BootstrapResult]]

    def to_text(self) -> str:
        """Render each subplot (one per central II) as a series table."""
        blocks = []
        for central_ii in self.central_iis:
            per_theta = self.mean_sample_ii[central_ii]
            series = {
                "mean sample II [CI]": [
                    (r.estimate, r.low, r.high) for r in per_theta.values()
                ]
            }
            blocks.append(
                format_series(
                    [f"{t:g}" for t in per_theta],
                    series,
                    x_label="theta",
                    title=(
                        f"Fig.1 subplot: central ranking II = {central_ii} "
                        f"(red line in the paper)"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run_fig1(config: Fig1Config = Fig1Config()) -> Fig1Result:
    """Run the Figure 1 experiment under ``config``."""
    rngs = spawn_generators(
        config.seed, len(config.target_iis) * len(config.thetas) + 1
    )
    rng_idx = 0

    central_iis: list[int] = []
    mean_sample_ii: dict[int, dict[float, BootstrapResult]] = {}
    for target in config.target_iis:
        center, groups = engineered_ranking_with_ii(target, n=config.n_items)
        constraints = FairnessConstraints.proportional(groups)
        actual_ii = infeasible_index(center, groups, constraints)
        central_iis.append(actual_ii)
        per_theta: dict[float, BootstrapResult] = {}
        for theta in config.thetas:
            rng = rngs[rng_idx]
            rng_idx += 1
            # Sampling + scoring fans out across config.n_jobs workers;
            # the result (and the rng stream handed to the bootstrap) is
            # byte-identical for every n_jobs value.
            scored = mallows_sample_and_score(
                center,
                theta,
                config.n_samples,
                groups=groups,
                constraints=constraints,
                seed=rng,
                n_jobs=config.n_jobs,
            )
            iis = scored.infeasible_index
            per_theta[theta] = bootstrap_ci(
                iis.astype(float),
                n_resamples=config.n_bootstrap,
                seed=rng,
            )
        mean_sample_ii[actual_ii] = per_theta

    return Fig1Result(
        config=config,
        central_iis=tuple(central_iis),
        mean_sample_ii=mean_sample_ii,
    )
