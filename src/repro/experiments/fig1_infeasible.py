"""Figure 1: Mallows randomization vs the Infeasible Index of the centre.

For each engineered central ranking (a target Infeasible Index on ten items
in two equal groups) and each dispersion θ, draw Mallows samples and report
the bootstrap mean II of the samples.  The paper's qualitative findings:

* as θ → ∞ the sample II converges to the central ranking's II;
* for a *high*-II centre, small θ produces a **large II drop**;
* for a *low*-II centre, small θ raises II only mildly (toward the uniform
  average).

Each ``(target II, θ)`` cell is one independent
:class:`~repro.batch.schedule.WorkUnit` — its seed is the same
``SeedSequence`` child the serial loop would hand it — so the whole figure
interleaves with other experiments through the shared pool and the result
is byte-identical for every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch import WorkUnit, mallows_sample_and_score, pool_for
from repro.datasets.synthetic import engineered_ranking_with_ii
from repro.experiments.config import Fig1Config
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.utils.bootstrap import BootstrapResult, bootstrap_ci
from repro.utils.rng import spawn_seed_sequences
from repro.utils.tables import format_series


@dataclass(frozen=True)
class Fig1Result:
    """Series for Figure 1.

    ``mean_sample_ii[central_ii][theta]`` is the bootstrap mean Infeasible
    Index of Mallows samples centred on a ranking whose own II is
    ``central_ii``.
    """

    config: Fig1Config
    central_iis: tuple[int, ...]
    mean_sample_ii: dict[int, dict[float, BootstrapResult]]

    def to_text(self) -> str:
        """Render each subplot (one per central II) as a series table."""
        blocks = []
        for central_ii in self.central_iis:
            per_theta = self.mean_sample_ii[central_ii]
            series = {
                "mean sample II [CI]": [
                    (r.estimate, r.low, r.high) for r in per_theta.values()
                ]
            }
            blocks.append(
                format_series(
                    [f"{t:g}" for t in per_theta],
                    series,
                    x_label="theta",
                    title=(
                        f"Fig.1 subplot: central ranking II = {central_ii} "
                        f"(red line in the paper)"
                    ),
                )
            )
        return "\n\n".join(blocks)


def _cell_unit(
    seed: np.random.SeedSequence,
    target: int,
    theta: float,
    config: Fig1Config,
) -> tuple[int, BootstrapResult]:
    """One (target II, θ) cell: engineer the centre, sample+score, bootstrap.

    The generator built from ``seed`` is threaded through sampling and then
    the bootstrap, exactly as the serial loop threads its per-cell rng.
    """
    rng = np.random.default_rng(seed)
    center, groups = engineered_ranking_with_ii(target, n=config.n_items)
    constraints = FairnessConstraints.proportional(groups)
    actual_ii = infeasible_index(center, groups, constraints)
    scored = mallows_sample_and_score(
        center,
        theta,
        config.n_samples,
        groups=groups,
        constraints=constraints,
        seed=rng,
        n_jobs=config.n_jobs,
    )
    ci = bootstrap_ci(
        scored.infeasible_index.astype(float),
        n_resamples=config.n_bootstrap,
        seed=rng,
    )
    return actual_ii, ci


def fig1_units(config: Fig1Config) -> list[WorkUnit]:
    """One work unit per ``(target II, θ)`` cell, seeded by the same
    ``SeedSequence`` children the serial loop hands each cell."""
    seqs = spawn_seed_sequences(
        config.seed, len(config.target_iis) * len(config.thetas)
    )
    units: list[WorkUnit] = []
    idx = 0
    for target in config.target_iis:
        for theta in config.thetas:
            units.append(
                WorkUnit(
                    key=("fig1", target, theta),
                    fn=_cell_unit,
                    seed=seqs[idx],
                    payload=(target, theta, config),
                    weight=float(config.n_samples),
                    kind=("fig1", "cell"),
                )
            )
            idx += 1
    return units


def collect_fig1(config: Fig1Config, results: dict) -> Fig1Result:
    """Assemble the figure from the scheduled cell results."""
    central_iis: list[int] = []
    mean_sample_ii: dict[int, dict[float, BootstrapResult]] = {}
    for target in config.target_iis:
        per_theta: dict[float, BootstrapResult] = {}
        actual_ii = 0
        for theta in config.thetas:
            actual_ii, ci = results[("fig1", target, theta)]
            per_theta[theta] = ci
        central_iis.append(actual_ii)
        mean_sample_ii[actual_ii] = per_theta
    return Fig1Result(
        config=config,
        central_iis=tuple(central_iis),
        mean_sample_ii=mean_sample_ii,
    )


def run_fig1(config: Fig1Config = Fig1Config()) -> Fig1Result:
    """Run the Figure 1 experiment under ``config``.

    The ``(target, θ)`` cells are scheduled through ``config.pool`` (or a
    private view on the ``config.n_jobs``-sized shared pool); output is
    byte-identical for every worker count.
    """
    pool = pool_for(config.pool, config.n_jobs)
    return collect_fig1(config, pool.run(fig1_units(config)))
