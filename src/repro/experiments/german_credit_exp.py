"""Section V-C: the German Credit comparison (Table I, Figs. 5, 6, 7).

Protocol (per the paper):

1. Rank candidates by ``Credit Amount``.  The combined ``Age−Sex`` attribute
   (four values) is *known*; ``Housing`` (three values) is *unknown* and
   used only for evaluation.
2. For each ranking size ``k ∈ {10, …, 100}``: subsample ``k`` applicants,
   build a weakly-p-fair ranking w.r.t. ``Age−Sex`` as the common input.
3. Run DetConstSort, ApproxMultiValuedIPF and the ILP — vanilla or with
   Gaussian noise ``N(0, σ)`` injected into their fairness constraints —
   repeating the noisy runs 15 times; run Mallows (θ ∈ {0.5, 1}) taking 1 or
   the best of 15 samples.
4. Report the median percentage of P-fair positions w.r.t. ``Age−Sex``
   (Fig. 5) and w.r.t. ``Housing`` (Fig. 6), and the mean NDCG ±1σ (Fig. 7),
   with bootstrap CIs (n = 1000).

The ILP is solved by the exact DP engine by default (identical optimum,
orders of magnitude faster); set ``use_milp=True`` to audit with HiGHS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.base import FairRankingProblem
from repro.batch import (
    BatchRankings,
    WorkUnit,
    batch_ndcg,
    batch_percent_fair,
    pool_for,
)
from repro.engine.registry import make_algorithm
from repro.datasets.german_credit import (
    GermanCreditData,
    load_german_credit,
)
from repro.exceptions import InfeasibleProblemError
from repro.experiments.config import GermanCreditConfig
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.construction import weakly_fair_ranking
from repro.utils.bootstrap import BootstrapResult, bootstrap_ci
from repro.utils.rng import spawn_seed_sequences
from repro.utils.tables import format_series, format_table

#: Algorithm display order in the reported series.
ALGORITHMS = (
    "DetConstSort",
    "ApproxMultiValuedIPF",
    "ILP",
    "Mallows (1 sample)",
    "Mallows (best of m)",
)


@dataclass(frozen=True)
class GermanCreditResult:
    """All series of one (θ, σ) panel.

    Each mapping is ``algorithm -> size -> BootstrapResult``:

    * ``ppfair_known``   — median PPfair w.r.t. Age−Sex (Fig. 5);
    * ``ppfair_unknown`` — median PPfair w.r.t. Housing (Fig. 6);
    * ``ndcg``           — mean NDCG (Fig. 7; the CI doubles as the ±σ band).
    """

    config: GermanCreditConfig
    sizes: tuple[int, ...]
    ppfair_known: dict[str, dict[int, BootstrapResult]]
    ppfair_unknown: dict[str, dict[int, BootstrapResult]]
    ndcg: dict[str, dict[int, BootstrapResult]]

    def _series_text(
        self,
        data: dict[str, dict[int, BootstrapResult]],
        what: str,
        fig: str,
    ) -> str:
        series = {
            alg: [
                (r.estimate, r.low, r.high)
                for r in data[alg].values()
            ]
            for alg in ALGORITHMS
            if alg in data
        }
        return format_series(
            list(self.sizes),
            series,
            x_label="k",
            title=f"{fig} ({self.config.panel_name()}): {what}",
        )

    def to_text_fig5(self) -> str:
        """Figure 5 panel: median PPfair w.r.t. the known Age−Sex attribute."""
        return self._series_text(
            self.ppfair_known, "median % P-fair positions w.r.t. Age-Sex", "Fig.5"
        )

    def to_text_fig6(self) -> str:
        """Figure 6 panel: median PPfair w.r.t. the unknown Housing attribute."""
        return self._series_text(
            self.ppfair_unknown, "median % P-fair positions w.r.t. Housing", "Fig.6"
        )

    def to_text_fig7(self) -> str:
        """Figure 7 panel: mean NDCG of the output rankings."""
        return self._series_text(self.ndcg, "mean NDCG", "Fig.7")


def run_table1(data: GermanCreditData | None = None) -> str:
    """Regenerate Table I (the joint Age-Sex × Housing distribution)."""
    if data is None:
        data = load_german_credit()
    counts = data.joint_counts()
    age_sex_labels = sorted({a for a, _ in counts})
    housing_labels = sorted({h for _, h in counts})
    rows = []
    for a in age_sex_labels:
        row: list[object] = [a]
        total = 0
        for h in housing_labels:
            c = counts[(a, h)]
            row.append(c)
            total += c
        row.append(total)
        rows.append(row)
    col_totals = [
        sum(counts[(a, h)] for a in age_sex_labels) for h in housing_labels
    ]
    rows.append(["Total"] + col_totals + [sum(col_totals)])
    return format_table(
        ["Age-Sex"] + housing_labels + ["Total"],
        rows,
        title=f"Table I: German Credit group distribution (source: {data.source})",
    )


def _panel_key(config: GermanCreditConfig, size: int, repeat: int) -> tuple:
    """Task-graph key of one panel repeat, unique across the four panels."""
    return ("gc", config.theta, config.noise_sigma, size, repeat)


def german_credit_units(
    config: GermanCreditConfig, data: GermanCreditData
) -> list[WorkUnit]:
    """One work unit per ``(size, repeat)`` cell of the panel.

    Each repeat's seed is the same ``SeedSequence`` child the serial
    ``(size, repeat)`` double loop (via the per-size trial pool) would hand
    it, so scheduling granularity never shows in the output.  Units are
    weighted by subsample size — the solvers dominate and their cost grows
    with ``k`` — so the longest repeats enter the pool first.

    ``data`` rides in every unit's payload (~25 KiB pickled): microseconds
    per submit, noise against a solver repeat, so per-repeat granularity is
    the better trade than the trial pool's once-per-shard shipping.
    """
    size_seqs = spawn_seed_sequences(config.seed, len(config.sizes))
    units: list[WorkUnit] = []
    for size, size_seq in zip(config.sizes, size_seqs):
        repeat_seq, _bootstrap_seq = size_seq.spawn(2)
        for repeat, seq in enumerate(
            spawn_seed_sequences(repeat_seq, config.n_repeats)
        ):
            units.append(
                WorkUnit(
                    key=_panel_key(config, size, repeat),
                    fn=_repeat_unit,
                    seed=seq,
                    payload=(data, size, config),
                    weight=float(size),
                    kind=("gc", size),
                )
            )
    return units


def collect_german_credit(
    config: GermanCreditConfig, results: dict
) -> GermanCreditResult:
    """Aggregate scheduled repeat outcomes into the panel's series.

    Rebuilds the per-size bootstrap seeds from the config's seed tree (the
    children are addressed by index, so re-spawning yields the same
    sequences the serial loop uses) and aggregates repeats in trial order.
    """
    size_seqs = spawn_seed_sequences(config.seed, len(config.sizes))

    ppfair_known: dict[str, dict[int, BootstrapResult]] = {a: {} for a in ALGORITHMS}
    ppfair_unknown: dict[str, dict[int, BootstrapResult]] = {a: {} for a in ALGORITHMS}
    ndcg_out: dict[str, dict[int, BootstrapResult]] = {a: {} for a in ALGORITHMS}

    for size, size_seq in zip(config.sizes, size_seqs):
        _repeat_seq, bootstrap_seq = size_seq.spawn(2)
        outcomes = [
            results[_panel_key(config, size, repeat)]
            for repeat in range(config.n_repeats)
        ]

        per_alg_known: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
        per_alg_unknown: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
        per_alg_ndcg: dict[str, list[float]] = {a: [] for a in ALGORITHMS}
        for outcome in outcomes:
            if outcome is None:
                continue
            for alg, (pk, pu, nd) in outcome.items():
                per_alg_known[alg].append(pk)
                per_alg_unknown[alg].append(pu)
                per_alg_ndcg[alg].append(nd)

        bootstrap_rng = np.random.default_rng(bootstrap_seq)
        for alg in ALGORITHMS:
            if not per_alg_known[alg]:
                continue
            ppfair_known[alg][size] = bootstrap_ci(
                np.array(per_alg_known[alg]),
                statistic=np.median,
                n_resamples=config.n_bootstrap,
                seed=bootstrap_rng,
            )
            ppfair_unknown[alg][size] = bootstrap_ci(
                np.array(per_alg_unknown[alg]),
                statistic=np.median,
                n_resamples=config.n_bootstrap,
                seed=bootstrap_rng,
            )
            ndcg_out[alg][size] = bootstrap_ci(
                np.array(per_alg_ndcg[alg]),
                n_resamples=config.n_bootstrap,
                seed=bootstrap_rng,
            )

    return GermanCreditResult(
        config=config,
        sizes=config.sizes,
        ppfair_known=ppfair_known,
        ppfair_unknown=ppfair_unknown,
        ndcg=ndcg_out,
    )


def run_german_credit(
    config: GermanCreditConfig = GermanCreditConfig(),
    data: GermanCreditData | None = None,
) -> GermanCreditResult:
    """Run one (θ, σ) panel of the Section V-C comparison.

    The ``(size, repeat)`` double loop flattens into one work unit per
    repeat, scheduled through ``config.pool`` (or a private view on the
    ``config.n_jobs``-sized shared pool): every repeat draws its stream
    from its own seed child, so the panel is byte-identical for every
    worker count under a fixed seed.  In a composite pipeline
    (:func:`~repro.experiments.runner.run_all`) the same units interleave
    with the other panels and figure experiments on one pool.
    """
    if data is None:
        data = load_german_credit(seed=config.seed)
    pool = pool_for(config.pool, config.n_jobs)
    results = pool.run(german_credit_units(config, data))
    return collect_german_credit(config, results)


def _repeat_unit(
    seed: np.random.SeedSequence,
    data: GermanCreditData,
    size: int,
    config: GermanCreditConfig,
) -> dict[str, tuple[float, float, float]] | None:
    """Work-unit adapter: one repeat of one panel size (pickled to workers)."""
    return _one_repeat(data, size, config, np.random.default_rng(seed))


def _one_repeat(
    data: GermanCreditData,
    size: int,
    config: GermanCreditConfig,
    rng: np.random.Generator,
) -> dict[str, tuple[float, float, float]] | None:
    """One subsample + all algorithms.  Returns per-algorithm
    ``(ppfair_known, ppfair_unknown, ndcg)`` or ``None`` when the subsample
    admits no weakly fair input ranking."""
    sub = data.subsample(size, seed=rng)
    scores = sub.credit_amount
    known = sub.age_sex
    unknown = sub.housing
    constraints_known = FairnessConstraints.proportional(known)
    constraints_unknown = FairnessConstraints.proportional(unknown)

    try:
        base = weakly_fair_ranking(scores, known, constraints_known)
    except InfeasibleProblemError:
        base = weakly_fair_ranking(
            scores, known, constraints_known, strong=False
        )

    problem = FairRankingProblem(
        base_ranking=base,
        scores=scores,
        groups=known,
        constraints=constraints_known,
    )

    sigma = config.noise_sigma
    ilp_name = "ilp" if config.use_milp else "dp"
    algorithms = {
        "DetConstSort": make_algorithm("detconstsort", noise_sigma=sigma),
        "ApproxMultiValuedIPF": make_algorithm("ipf", noise_sigma=sigma),
        "ILP": make_algorithm(ilp_name, noise_sigma=sigma),
        "Mallows (1 sample)": make_algorithm(
            "mallows", theta=config.theta, n_samples=1
        ),
        "Mallows (best of m)": make_algorithm(
            "mallows", theta=config.theta, n_samples=config.mallows_best_of
        ),
    }

    rankings: dict[str, object] = {}
    for name, alg in algorithms.items():
        try:
            result = alg.rank(problem, seed=rng)
        except InfeasibleProblemError:
            # Noisy constraints can make an instance infeasible; the paper's
            # one-sided noise makes this rare — skip the repeat for this
            # algorithm.
            continue
        rankings[name] = result.ranking

    out: dict[str, tuple[float, float, float]] = {}
    if not rankings:
        return out
    # All algorithm outputs rank the same `size` items, so every metric of
    # the repeat is three batched kernel calls instead of a scalar call per
    # (algorithm, metric) pair.
    batch = BatchRankings.from_rankings(rankings.values())
    pfair_known = batch_percent_fair(batch, known, constraints_known)
    pfair_unknown = batch_percent_fair(batch, unknown, constraints_unknown)
    ndcgs = batch_ndcg(batch, scores)
    for i, name in enumerate(rankings):
        out[name] = (
            float(pfair_known[i]),
            float(pfair_unknown[i]),
            float(ndcgs[i]),
        )
    return out
