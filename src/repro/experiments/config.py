"""Configuration dataclasses for the paper's experiments.

Defaults mirror the paper's settings; benchmarks shrink the Monte-Carlo
knobs (sample counts, bootstrap resamples) where the full protocol would
take minutes, without changing the workload shape.

Every config carries the same parallelism pair: ``n_jobs`` (worker budget,
``-1`` = all cores) and ``pool`` (an optional shared
:class:`~repro.batch.schedule.WorkerPool` handle).  A composite pipeline
like :func:`~repro.experiments.runner.run_all` builds one handle and
threads it through every config, so all experiments schedule their work
units onto the same process pool instead of each spinning up its own
fan-out; a config without a handle gets a private view on the
``n_jobs``-sized shared pool.  Either way the output is byte-identical for
every worker count under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.batch.schedule import WorkerPool


def _default_thetas() -> tuple[float, ...]:
    return (0.1, 0.25, 0.5, 1.0, 2.0, 4.0)


def _default_deltas() -> tuple[float, ...]:
    return tuple(round(0.1 * i, 1) for i in range(11))


@dataclass(frozen=True)
class Fig1Config:
    """Section V-A: Mallows noise vs the Infeasible Index of the centre.

    Ten individuals in two equal groups; central rankings engineered to a
    range of Infeasible Index values; sweep θ and measure the sample II.
    """

    n_items: int = 10
    target_iis: tuple[int, ...] = (0, 4, 8, 12)
    thetas: tuple[float, ...] = field(default_factory=_default_thetas)
    n_samples: int = 200
    n_bootstrap: int = 1000
    seed: int = 2024
    #: Worker processes for the sampling+scoring pipeline (-1 = all cores).
    #: Output is byte-identical for every value under a fixed seed.
    n_jobs: int = 1
    #: Shared scheduler handle (overrides ``n_jobs`` when set); see the
    #: module docstring.
    pool: WorkerPool | None = None


@dataclass(frozen=True)
class Fig2Config:
    """Section V-B setup: Infeasible Index of the score-sorted central
    ranking as the group score shift δ grows."""

    group_size: int = 5
    deltas: tuple[float, ...] = field(default_factory=_default_deltas)
    n_trials: int = 200
    n_bootstrap: int = 1000
    seed: int = 2024
    #: Worker processes for the per-trial fan-out (-1 = all cores).
    #: Output is byte-identical for every value under a fixed seed.
    n_jobs: int = 1
    #: Shared scheduler handle (overrides ``n_jobs`` when set); see the
    #: module docstring.
    pool: WorkerPool | None = None


@dataclass(frozen=True)
class Fig34Config:
    """Sections V-B Figs. 3 & 4: II and NDCG of Mallows samples vs θ, per δ."""

    group_size: int = 5
    deltas: tuple[float, ...] = (0.0, 0.3, 0.6, 1.0)
    thetas: tuple[float, ...] = field(default_factory=_default_thetas)
    n_trials: int = 50
    samples_per_trial: int = 20
    n_bootstrap: int = 1000
    seed: int = 2024
    #: Worker processes for the sampling+scoring pipeline (-1 = all cores).
    #: Output is byte-identical for every value under a fixed seed.
    n_jobs: int = 1
    #: Shared scheduler handle (overrides ``n_jobs`` when set); see the
    #: module docstring.
    pool: WorkerPool | None = None


@dataclass(frozen=True)
class GermanCreditConfig:
    """Section V-C: the German Credit comparison (Figs. 5, 6, 7).

    One config corresponds to one panel: a (θ, σ) pair.  The paper's four
    panels are (0.5, 0), (1, 0), (0.5, 1), (1, 1).
    """

    theta: float = 0.5
    noise_sigma: float = 0.0
    sizes: tuple[int, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
    n_repeats: int = 15
    mallows_best_of: int = 15
    n_bootstrap: int = 1000
    use_milp: bool = False  # exact DP by default; MILP available for audit
    seed: int = 2024
    #: Worker processes for the per-repeat fan-out (-1 = all cores).
    #: Output is byte-identical for every value under a fixed seed.
    n_jobs: int = 1
    #: Shared scheduler handle (overrides ``n_jobs`` when set); see the
    #: module docstring.
    pool: WorkerPool | None = None

    def panel_name(self) -> str:
        """Panel label matching the paper's subfigure captions."""
        noise = "no noise" if self.noise_sigma == 0 else f"sigma={self.noise_sigma:g}"
        return f"theta={self.theta:g}, {noise}"
