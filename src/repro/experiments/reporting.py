"""Persisting experiment reports.

The experiment result objects render themselves as text; this module writes
a collection of reports to disk as individual ``.txt`` artefacts plus a
combined markdown index — the format used for the repository's
``EXPERIMENTS.md`` bookkeeping and by the CLI's ``--output`` option.
"""

from __future__ import annotations

import os
from typing import Mapping


def write_reports(
    reports: Mapping[str, str],
    output_dir: str,
    index_name: str = "INDEX.md",
) -> list[str]:
    """Write each report to ``<output_dir>/<key>.txt`` plus a markdown index.

    Returns the list of file paths written (index last).  The directory is
    created if needed; existing files are overwritten.
    """
    os.makedirs(output_dir, exist_ok=True)
    written: list[str] = []
    # Insertion order IS the artefact order (fig1..table1, as run_all
    # composed them); sorting here would reorder the index and the digest.
    for key, text in reports.items():  # repro: noqa[REP006] canonical order
        safe = _safe_filename(key)
        path = os.path.join(output_dir, f"{safe}.txt")
        with open(path, "w") as f:
            f.write(text.rstrip("\n") + "\n")
        written.append(path)

    index_path = os.path.join(output_dir, index_name)
    with open(index_path, "w") as f:
        f.write("# Reproduced artefacts\n\n")
        for key in reports:
            f.write(f"- [`{key}`]({_safe_filename(key)}.txt)\n")
    written.append(index_path)
    return written


def _safe_filename(key: str) -> str:
    """Sanitize a report key into a portable file name."""
    out = []
    for ch in key:
        out.append(ch if ch.isalnum() or ch in "-_." else "_")
    name = "".join(out).strip("._")
    return name or "report"
