"""Run every paper artefact end-to-end and collect the text reports.

This is the engine behind the CLI (``repro-fair-ranking``) and a convenient
one-call entry point for notebooks: :func:`run_all` returns an ordered
mapping from artefact id to its rendered report.

``run_all`` is scheduled, not sequential: every experiment contributes its
work units — Fig. 1 cells, Fig. 2/Figs. 3–4 per-δ blocks, Table I, and one
unit per German Credit ``(panel, size, repeat)`` — to a single task graph
that is interleaved through one shared process pool
(:mod:`repro.batch.schedule`).  The pipeline therefore scales with the
core count rather than with its widest inner loop, while per-unit
``SeedSequence`` children keep every report byte-identical to the serial
run for any ``n_jobs`` (:func:`reports_digest` is the one-line check).
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import TYPE_CHECKING, Callable, Mapping

from repro.batch import WorkUnit, pool_for
from repro.batch.schedule import WorkerPool
from repro.engine.costs import DEFAULT_COSTS, CostModel

if TYPE_CHECKING:
    from repro.engine import RankingEngine
from repro.experiments.config import (
    Fig1Config,
    Fig2Config,
    Fig34Config,
    GermanCreditConfig,
)
from repro.experiments.fig1_infeasible import collect_fig1, fig1_units
from repro.experiments.fig2_central_ii import collect_fig2, fig2_units
from repro.experiments.fig34_tradeoff import collect_fig34, fig34_units
from repro.experiments.german_credit_exp import (
    collect_german_credit,
    german_credit_units,
    run_table1,
)

#: The paper's four German Credit panels: (theta, sigma).
PANELS: tuple[tuple[float, float], ...] = (
    (0.5, 0.0),
    (1.0, 0.0),
    (0.5, 1.0),
    (1.0, 1.0),
)


def _table1_unit(seed: None, data) -> str:
    """Work-unit adapter for Table I (deterministic: no seed consumed)."""
    del seed
    return run_table1(data)


def reports_digest(reports: Mapping[str, str]) -> str:
    """SHA-256 digest of a ``run_all`` report mapping (keys and texts, in
    order) — the byte-equality fingerprint used by the scheduler smoke
    checks: digests for any two ``n_jobs`` values must match."""
    h = hashlib.sha256()
    for key, text in reports.items():
        h.update(key.encode("utf-8"))
        h.update(b"\x00")
        h.update(text.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def run_all(
    fast: bool = False,
    progress: Callable[[str], None] | None = None,
    n_jobs: int = 1,
    pool: WorkerPool | None = None,
    engine: "RankingEngine | None" = None,
    costs: CostModel | None = None,
) -> dict[str, str]:
    """Run every experiment; returns ``{artefact id: text report}``.

    Parameters
    ----------
    fast:
        Shrink Monte-Carlo knobs (repeats, sizes, bootstrap) for a quick
        end-to-end pass; the workload shapes are unchanged.
    progress:
        Optional callback receiving a line per artefact group, fired live
        as the group's last work unit finishes (completion order when
        pooled, pipeline order when serial).
    n_jobs:
        Worker processes (``-1`` = all cores).  Every experiment's work
        units — figure cells, per-δ blocks, German Credit panel repeats —
        are flattened into one task graph and interleaved through a single
        shared pool, so the whole pipeline (not just each inner loop)
        scales with the worker count.  Reports are byte-identical for
        every value.
    pool:
        Optional pre-built :class:`~repro.batch.schedule.WorkerPool` handle
        (overrides ``n_jobs``); the same handle is threaded through every
        experiment config.
    engine:
        Optional :class:`~repro.engine.RankingEngine` session: its pool
        handle and cost model take the place of ``pool``/``costs`` — the
        CLI builds one engine per invocation and runs everything through
        it.
    costs:
        The measured-cost table to schedule from and feed (defaults to the
        process-wide :data:`~repro.engine.costs.DEFAULT_COSTS`).  Units
        whose ``kind`` has been observed before — an earlier ``run_all``
        in this process, or previous requests on the ``engine`` — are
        dispatched by measured seconds instead of their static weight
        guesses; every completed unit's wall-time is folded back in.
        Weights shape only the dispatch order, never the reports.
    """
    say = progress or (lambda _msg: None)
    if engine is not None:
        pool = pool if pool is not None else engine.pool
        costs = costs if costs is not None else engine.costs
    pool = pool_for(pool, n_jobs)
    costs = costs if costs is not None else DEFAULT_COSTS

    fig1_cfg = (
        Fig1Config(n_samples=50, n_bootstrap=200, n_jobs=pool.n_jobs, pool=pool)
        if fast
        else Fig1Config(n_jobs=pool.n_jobs, pool=pool)
    )
    fig2_cfg = (
        Fig2Config(n_trials=50, n_bootstrap=200, n_jobs=pool.n_jobs, pool=pool)
        if fast
        else Fig2Config(n_jobs=pool.n_jobs, pool=pool)
    )
    fig34_cfg = (
        Fig34Config(
            n_trials=10, samples_per_trial=10, n_bootstrap=200,
            n_jobs=pool.n_jobs, pool=pool,
        )
        if fast
        else Fig34Config(n_jobs=pool.n_jobs, pool=pool)
    )
    panel_cfgs = []
    for theta, sigma in PANELS:
        cfg = GermanCreditConfig(
            theta=theta, noise_sigma=sigma, n_jobs=pool.n_jobs, pool=pool
        )
        if fast:
            cfg = GermanCreditConfig(
                theta=theta,
                noise_sigma=sigma,
                sizes=(10, 30, 50),
                n_repeats=5,
                n_bootstrap=200,
                n_jobs=pool.n_jobs,
                pool=pool,
            )
        panel_cfgs.append(cfg)

    # Table I and all four panels resolve to the same dataset replica
    # (panel seeds agree, and the default-seed load is identical); load it
    # once here instead of once per consumer.
    from repro.datasets.german_credit import load_german_credit

    gc_data = load_german_credit(seed=panel_cfgs[0].seed)

    # The whole pipeline as one flat task graph through one shared pool.
    # Each unit is tagged with the artefact group it computes, so the
    # progress callback still reports groups live — as their last unit
    # completes — instead of only after the whole graph drains.
    units: list[WorkUnit] = []
    group_of: dict = {}

    def _add(new_units: list[WorkUnit], group: str) -> None:
        units.extend(new_units)
        for unit in new_units:
            group_of[unit.key] = group

    _add(fig1_units(fig1_cfg), "fig1")
    _add(fig2_units(fig2_cfg), "fig2")
    _add(fig34_units(fig34_cfg), "fig3+fig4")
    _add(
        [
            WorkUnit(
                key=("table1",),
                fn=_table1_unit,
                payload=(gc_data,),
                kind=("table1",),
            )
        ],
        "table1",
    )
    for (theta, sigma), cfg in zip(PANELS, panel_cfgs):
        _add(
            german_credit_units(cfg, gc_data),
            f"german credit panel ({theta:g}, {sigma:g})",
        )

    pending = Counter(group_of.values())

    def _on_unit_done(key, seconds: float) -> None:
        costs.observe(kind_of[key], seconds)
        group = group_of[key]
        pending[group] -= 1
        if pending[group] == 0:
            say(f"{group} done")

    # Measured-cost dispatch: kinds observed before (an earlier run in this
    # process, or the engine session's history) replace their static weight
    # guesses with learned seconds.
    kind_of = {unit.key: unit.kind for unit in units}
    results = pool.run(costs.reweight(units), on_unit_done=_on_unit_done)

    reports: dict[str, str] = {}
    reports["fig1"] = collect_fig1(fig1_cfg, results).to_text()
    reports["fig2"] = collect_fig2(fig2_cfg, results).to_text()
    result34 = collect_fig34(fig34_cfg, results)
    reports["fig3"] = result34.to_text_fig3()
    reports["fig4"] = result34.to_text_fig4()
    reports["table1"] = results[("table1",)]
    for (theta, sigma), cfg in zip(PANELS, panel_cfgs):
        panel = collect_german_credit(cfg, results)
        key = f"theta{theta:g}_sigma{sigma:g}"
        reports[f"fig5_{key}"] = panel.to_text_fig5()
        reports[f"fig6_{key}"] = panel.to_text_fig6()
        reports[f"fig7_{key}"] = panel.to_text_fig7()

    return reports
