"""Run every paper artefact end-to-end and collect the text reports.

This is the engine behind the CLI (``repro-fair-ranking``) and a convenient
one-call entry point for notebooks: :func:`run_all` returns an ordered
mapping from artefact id to its rendered report.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.config import (
    Fig1Config,
    Fig2Config,
    Fig34Config,
    GermanCreditConfig,
)
from repro.experiments.fig1_infeasible import run_fig1
from repro.experiments.fig2_central_ii import run_fig2
from repro.experiments.fig34_tradeoff import run_fig34
from repro.experiments.german_credit_exp import run_german_credit, run_table1

#: The paper's four German Credit panels: (theta, sigma).
PANELS: tuple[tuple[float, float], ...] = (
    (0.5, 0.0),
    (1.0, 0.0),
    (0.5, 1.0),
    (1.0, 1.0),
)


def run_all(
    fast: bool = False,
    progress: Callable[[str], None] | None = None,
    n_jobs: int = 1,
) -> dict[str, str]:
    """Run every experiment; returns ``{artefact id: text report}``.

    Parameters
    ----------
    fast:
        Shrink Monte-Carlo knobs (repeats, sizes, bootstrap) for a quick
        end-to-end pass; the workload shapes are unchanged.
    progress:
        Optional callback receiving a line per completed artefact.
    n_jobs:
        Worker processes, applied to every parallelizable experiment:
        row-sharded Mallows sampling+scoring for Figs. 1, 3, 4 and
        trial-sharded fan-out for Fig. 2 and the German Credit panels;
        ``-1`` uses every core.  Reports are byte-identical for every value.
    """
    say = progress or (lambda _msg: None)
    reports: dict[str, str] = {}

    fig1_cfg = (
        Fig1Config(n_samples=50, n_bootstrap=200, n_jobs=n_jobs)
        if fast
        else Fig1Config(n_jobs=n_jobs)
    )
    result1 = run_fig1(fig1_cfg)
    reports["fig1"] = result1.to_text()
    say("fig1 done")

    fig2_cfg = (
        Fig2Config(n_trials=50, n_bootstrap=200, n_jobs=n_jobs)
        if fast
        else Fig2Config(n_jobs=n_jobs)
    )
    result2 = run_fig2(fig2_cfg)
    reports["fig2"] = result2.to_text()
    say("fig2 done")

    fig34_cfg = (
        Fig34Config(n_trials=10, samples_per_trial=10, n_bootstrap=200, n_jobs=n_jobs)
        if fast
        else Fig34Config(n_jobs=n_jobs)
    )
    result34 = run_fig34(fig34_cfg)
    reports["fig3"] = result34.to_text_fig3()
    reports["fig4"] = result34.to_text_fig4()
    say("fig3+fig4 done")

    reports["table1"] = run_table1()
    say("table1 done")

    for theta, sigma in PANELS:
        cfg = GermanCreditConfig(theta=theta, noise_sigma=sigma, n_jobs=n_jobs)
        if fast:
            cfg = GermanCreditConfig(
                theta=theta,
                noise_sigma=sigma,
                sizes=(10, 30, 50),
                n_repeats=5,
                n_bootstrap=200,
                n_jobs=n_jobs,
            )
        panel = run_german_credit(cfg)
        key = f"theta{theta:g}_sigma{sigma:g}"
        reports[f"fig5_{key}"] = panel.to_text_fig5()
        reports[f"fig6_{key}"] = panel.to_text_fig6()
        reports[f"fig7_{key}"] = panel.to_text_fig7()
        say(f"german credit panel ({theta:g}, {sigma:g}) done")

    return reports
