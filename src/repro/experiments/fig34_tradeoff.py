"""Figures 3 & 4: the fairness/efficiency trade-off of Mallows sampling.

Same workload as Figure 2; for each δ the score-sorted ranking is the
Mallows centre and we sweep θ, measuring both the Infeasible Index (Fig. 3)
and the NDCG (Fig. 4) of the samples.  As θ grows the samples converge to
the centre, so the II converges to the centre's II and the NDCG to 1 —
exposing the trade-off: more noise repairs fairness but costs NDCG.

Each δ is one independent :class:`~repro.batch.schedule.WorkUnit` — its
trial loop threads a single generator built from that δ's ``SeedSequence``
child, exactly as the serial sweep does — so the figure interleaves with
other experiments through the shared pool and the result is byte-identical
for every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch import WorkUnit, mallows_sample_and_score, pool_for
from repro.datasets.synthetic import two_group_shifted_scores
from repro.experiments.config import Fig34Config
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.utils.bootstrap import BootstrapResult, bootstrap_ci
from repro.utils.rng import spawn_seed_sequences
from repro.utils.tables import format_series


@dataclass(frozen=True)
class Fig34Result:
    """Per-δ, per-θ bootstrap means of sample II (Fig. 3) and NDCG (Fig. 4).

    ``central_ii[delta]`` is the mean II of the central rankings themselves
    (the red-line reference of the paper's subplots).
    """

    config: Fig34Config
    central_ii: dict[float, float]
    sample_ii: dict[float, dict[float, BootstrapResult]]
    sample_ndcg: dict[float, dict[float, BootstrapResult]]

    def to_text_fig3(self) -> str:
        """Figure 3 (Infeasible Index) series, one block per δ."""
        return self._to_text(self.sample_ii, "mean sample II [CI]", "Fig.3")

    def to_text_fig4(self) -> str:
        """Figure 4 (NDCG) series, one block per δ."""
        return self._to_text(self.sample_ndcg, "mean sample NDCG [CI]", "Fig.4")

    def _to_text(
        self,
        data: dict[float, dict[float, BootstrapResult]],
        label: str,
        fig: str,
    ) -> str:
        blocks = []
        for delta, per_theta in data.items():
            series = {
                label: [(r.estimate, r.low, r.high) for r in per_theta.values()]
            }
            blocks.append(
                format_series(
                    [f"{t:g}" for t in per_theta],
                    series,
                    x_label="theta",
                    title=(
                        f"{fig} subplot: delta = {delta:g} "
                        f"(central II = {self.central_ii[delta]:.2f})"
                    ),
                )
            )
        return "\n\n".join(blocks)


def _delta_unit(
    seed: np.random.SeedSequence,
    delta: float,
    config: Fig34Config,
) -> tuple[float, dict[float, BootstrapResult], dict[float, BootstrapResult]]:
    """One δ: its full trial sweep over θ plus the per-θ bootstraps.

    One generator is built from ``seed`` and threaded through every draw,
    sampling call, and bootstrap in the same order as the serial sweep.
    """
    rng = np.random.default_rng(seed)
    ii_per_theta: dict[float, list[float]] = {t: [] for t in config.thetas}
    ndcg_per_theta: dict[float, list[float]] = {t: [] for t in config.thetas}
    central_iis: list[float] = []

    for _ in range(config.n_trials):
        sample = two_group_shifted_scores(
            delta, group_size=config.group_size, seed=rng
        )
        constraints = FairnessConstraints.proportional(sample.groups)
        central_iis.append(
            infeasible_index(sample.ranking, sample.groups, constraints)
        )
        for theta in config.thetas:
            # One sampling+scoring pipeline call per theta; inside a pooled
            # unit it runs inline (pool children never nest pools), and the
            # output is byte-identical across n_jobs either way.
            scored = mallows_sample_and_score(
                sample.ranking,
                theta,
                config.samples_per_trial,
                groups=sample.groups,
                constraints=constraints,
                scores=sample.scores,
                seed=rng,
                n_jobs=config.n_jobs,
            )
            ii_per_theta[theta].append(float(scored.infeasible_index.mean()))
            ndcg_per_theta[theta].append(float(scored.ndcg.mean()))

    sample_ii = {
        t: bootstrap_ci(np.array(v), n_resamples=config.n_bootstrap, seed=rng)
        for t, v in ii_per_theta.items()
    }
    sample_ndcg = {
        t: bootstrap_ci(np.array(v), n_resamples=config.n_bootstrap, seed=rng)
        for t, v in ndcg_per_theta.items()
    }
    return float(np.mean(central_iis)), sample_ii, sample_ndcg


def fig34_units(config: Fig34Config) -> list[WorkUnit]:
    """One work unit per δ, seeded by that δ's ``SeedSequence`` child."""
    seqs = spawn_seed_sequences(config.seed, len(config.deltas))
    weight = float(
        config.n_trials * config.samples_per_trial * len(config.thetas)
    )
    return [
        WorkUnit(
            key=("fig34", delta),
            fn=_delta_unit,
            seed=seq,
            payload=(delta, config),
            weight=weight,
            kind=("fig34", "delta"),
        )
        for delta, seq in zip(config.deltas, seqs)
    ]


def collect_fig34(config: Fig34Config, results: dict) -> Fig34Result:
    """Assemble Figures 3 & 4 from the scheduled per-δ results."""
    central_ii: dict[float, float] = {}
    sample_ii: dict[float, dict[float, BootstrapResult]] = {}
    sample_ndcg: dict[float, dict[float, BootstrapResult]] = {}
    for delta in config.deltas:
        central, ii, ndcg = results[("fig34", delta)]
        central_ii[delta] = central
        sample_ii[delta] = ii
        sample_ndcg[delta] = ndcg
    return Fig34Result(
        config=config,
        central_ii=central_ii,
        sample_ii=sample_ii,
        sample_ndcg=sample_ndcg,
    )


def run_fig34(config: Fig34Config = Fig34Config()) -> Fig34Result:
    """Run the Figures 3–4 experiment under ``config``.

    The per-δ units are scheduled through ``config.pool`` (or a private
    view on the ``config.n_jobs``-sized shared pool); output is
    byte-identical for every worker count.
    """
    pool = pool_for(config.pool, config.n_jobs)
    return collect_fig34(config, pool.run(fig34_units(config)))
