"""Figures 3 & 4: the fairness/efficiency trade-off of Mallows sampling.

Same workload as Figure 2; for each δ the score-sorted ranking is the
Mallows centre and we sweep θ, measuring both the Infeasible Index (Fig. 3)
and the NDCG (Fig. 4) of the samples.  As θ grows the samples converge to
the centre, so the II converges to the centre's II and the NDCG to 1 —
exposing the trade-off: more noise repairs fairness but costs NDCG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch import mallows_sample_and_score
from repro.datasets.synthetic import two_group_shifted_scores
from repro.experiments.config import Fig34Config
from repro.fairness.constraints import FairnessConstraints
from repro.fairness.infeasible_index import infeasible_index
from repro.utils.bootstrap import BootstrapResult, bootstrap_ci
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_series


@dataclass(frozen=True)
class Fig34Result:
    """Per-δ, per-θ bootstrap means of sample II (Fig. 3) and NDCG (Fig. 4).

    ``central_ii[delta]`` is the mean II of the central rankings themselves
    (the red-line reference of the paper's subplots).
    """

    config: Fig34Config
    central_ii: dict[float, float]
    sample_ii: dict[float, dict[float, BootstrapResult]]
    sample_ndcg: dict[float, dict[float, BootstrapResult]]

    def to_text_fig3(self) -> str:
        """Figure 3 (Infeasible Index) series, one block per δ."""
        return self._to_text(self.sample_ii, "mean sample II [CI]", "Fig.3")

    def to_text_fig4(self) -> str:
        """Figure 4 (NDCG) series, one block per δ."""
        return self._to_text(self.sample_ndcg, "mean sample NDCG [CI]", "Fig.4")

    def _to_text(
        self,
        data: dict[float, dict[float, BootstrapResult]],
        label: str,
        fig: str,
    ) -> str:
        blocks = []
        for delta, per_theta in data.items():
            series = {
                label: [(r.estimate, r.low, r.high) for r in per_theta.values()]
            }
            blocks.append(
                format_series(
                    [f"{t:g}" for t in per_theta],
                    series,
                    x_label="theta",
                    title=(
                        f"{fig} subplot: delta = {delta:g} "
                        f"(central II = {self.central_ii[delta]:.2f})"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run_fig34(config: Fig34Config = Fig34Config()) -> Fig34Result:
    """Run the Figures 3–4 experiment under ``config``."""
    rngs = spawn_generators(config.seed, len(config.deltas))
    central_ii: dict[float, float] = {}
    sample_ii: dict[float, dict[float, BootstrapResult]] = {}
    sample_ndcg: dict[float, dict[float, BootstrapResult]] = {}

    for delta, rng in zip(config.deltas, rngs):
        ii_per_theta: dict[float, list[float]] = {t: [] for t in config.thetas}
        ndcg_per_theta: dict[float, list[float]] = {t: [] for t in config.thetas}
        central_iis: list[float] = []

        for _ in range(config.n_trials):
            sample = two_group_shifted_scores(
                delta, group_size=config.group_size, seed=rng
            )
            constraints = FairnessConstraints.proportional(sample.groups)
            central_iis.append(
                infeasible_index(sample.ranking, sample.groups, constraints)
            )
            for theta in config.thetas:
                # One sharded sampling+scoring pipeline call per theta;
                # byte-identical across n_jobs values under the fixed seed.
                scored = mallows_sample_and_score(
                    sample.ranking,
                    theta,
                    config.samples_per_trial,
                    groups=sample.groups,
                    constraints=constraints,
                    scores=sample.scores,
                    seed=rng,
                    n_jobs=config.n_jobs,
                )
                ii_per_theta[theta].append(float(scored.infeasible_index.mean()))
                ndcg_per_theta[theta].append(float(scored.ndcg.mean()))

        central_ii[delta] = float(np.mean(central_iis))
        sample_ii[delta] = {
            t: bootstrap_ci(
                np.array(v), n_resamples=config.n_bootstrap, seed=rng
            )
            for t, v in ii_per_theta.items()
        }
        sample_ndcg[delta] = {
            t: bootstrap_ci(
                np.array(v), n_resamples=config.n_bootstrap, seed=rng
            )
            for t, v in ndcg_per_theta.items()
        }

    return Fig34Result(
        config=config,
        central_ii=central_ii,
        sample_ii=sample_ii,
        sample_ndcg=sample_ndcg,
    )
