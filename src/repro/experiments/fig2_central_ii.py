"""Figure 2: Infeasible Index of the score-sorted central ranking vs δ.

Two groups of five candidates with scores ``U(0,1)`` and ``U(δ, 1+δ)``:
as the shift δ grows the score-sorted ranking segregates the groups, so its
Infeasible Index rises toward the maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch import batch_infeasible_index, run_trials
from repro.datasets.synthetic import two_group_shifted_scores
from repro.experiments.config import Fig2Config
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.utils.bootstrap import BootstrapResult, bootstrap_ci
from repro.utils.rng import spawn_seed_sequences
from repro.utils.tables import format_series


@dataclass(frozen=True)
class Fig2Result:
    """Bootstrap mean central-ranking II per δ."""

    config: Fig2Config
    central_ii: dict[float, BootstrapResult]

    def to_text(self) -> str:
        """Render the single series of Figure 2."""
        series = {
            "central ranking II [CI]": [
                (r.estimate, r.low, r.high) for r in self.central_ii.values()
            ]
        }
        return format_series(
            [f"{d:g}" for d in self.central_ii],
            series,
            x_label="delta",
            title="Fig.2: Infeasible Index of the score-sorted central ranking",
        )


def _central_ranking_trial(
    trial_index: int,
    rng: np.random.Generator,
    delta: float,
    group_size: int,
) -> np.ndarray:
    """Trial-pool unit: one score draw's central-ranking order view."""
    del trial_index  # the trial's stream comes entirely from ``rng``
    return two_group_shifted_scores(delta, group_size=group_size, seed=rng).ranking.order


def run_fig2(config: Fig2Config = Fig2Config()) -> Fig2Result:
    """Run the Figure 2 experiment under ``config``.

    The ``(delta, trial)`` loop fans out across ``config.n_jobs`` worker
    processes at the trial granularity via :func:`repro.batch.run_trials`;
    per-trial seed children keep the result byte-identical for every
    ``n_jobs`` value under a fixed seed.
    """
    if config.n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {config.n_trials}")
    delta_seqs = spawn_seed_sequences(config.seed, len(config.deltas))
    # The group structure is the same for every draw (two fixed index
    # blocks, as two_group_shifted_scores lays them out), so it is built
    # once and the per-trial central rankings are stacked and scored with
    # one batched Infeasible-Index kernel call per delta.
    groups = GroupAssignment.from_indices(
        np.repeat(np.arange(2, dtype=np.int64), config.group_size)
    )
    constraints = FairnessConstraints.proportional(groups)
    central_ii: dict[float, BootstrapResult] = {}
    for delta, delta_seq in zip(config.deltas, delta_seqs):
        trial_seq, bootstrap_seq = delta_seq.spawn(2)
        trial_orders = np.stack(
            run_trials(
                _central_ranking_trial,
                config.n_trials,
                seed=trial_seq,
                n_jobs=config.n_jobs,
                payload=(delta, config.group_size),
            )
        )
        iis = batch_infeasible_index(trial_orders, groups, constraints).astype(
            np.float64
        )
        central_ii[delta] = bootstrap_ci(
            iis, n_resamples=config.n_bootstrap, seed=np.random.default_rng(bootstrap_seq)
        )
    return Fig2Result(config=config, central_ii=central_ii)
