"""Figure 2: Infeasible Index of the score-sorted central ranking vs δ.

Two groups of five candidates with scores ``U(0,1)`` and ``U(δ, 1+δ)``:
as the shift δ grows the score-sorted ranking segregates the groups, so its
Infeasible Index rises toward the maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch import batch_infeasible_index
from repro.datasets.synthetic import two_group_shifted_scores
from repro.experiments.config import Fig2Config
from repro.fairness.constraints import FairnessConstraints
from repro.utils.bootstrap import BootstrapResult, bootstrap_ci
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_series


@dataclass(frozen=True)
class Fig2Result:
    """Bootstrap mean central-ranking II per δ."""

    config: Fig2Config
    central_ii: dict[float, BootstrapResult]

    def to_text(self) -> str:
        """Render the single series of Figure 2."""
        series = {
            "central ranking II [CI]": [
                (r.estimate, r.low, r.high) for r in self.central_ii.values()
            ]
        }
        return format_series(
            [f"{d:g}" for d in self.central_ii],
            series,
            x_label="delta",
            title="Fig.2: Infeasible Index of the score-sorted central ranking",
        )


def run_fig2(config: Fig2Config = Fig2Config()) -> Fig2Result:
    """Run the Figure 2 experiment under ``config``."""
    if config.n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {config.n_trials}")
    rngs = spawn_generators(config.seed, len(config.deltas))
    central_ii: dict[float, BootstrapResult] = {}
    for delta, rng in zip(config.deltas, rngs):
        # The group structure is the same for every trial (two fixed blocks),
        # so the per-trial central rankings can be stacked and scored with
        # one batched Infeasible-Index kernel call.
        trial_orders = np.empty(
            (config.n_trials, 2 * config.group_size), dtype=np.int64
        )
        groups = None
        for t in range(config.n_trials):
            sample = two_group_shifted_scores(
                delta, group_size=config.group_size, seed=rng
            )
            trial_orders[t] = sample.ranking.order
            groups = sample.groups
        constraints = FairnessConstraints.proportional(groups)
        iis = batch_infeasible_index(trial_orders, groups, constraints).astype(
            np.float64
        )
        central_ii[delta] = bootstrap_ci(
            iis, n_resamples=config.n_bootstrap, seed=rng
        )
    return Fig2Result(config=config, central_ii=central_ii)
