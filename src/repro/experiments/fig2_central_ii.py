"""Figure 2: Infeasible Index of the score-sorted central ranking vs δ.

Two groups of five candidates with scores ``U(0,1)`` and ``U(δ, 1+δ)``:
as the shift δ grows the score-sorted ranking segregates the groups, so its
Infeasible Index rises toward the maximum.

Each δ is one independent :class:`~repro.batch.schedule.WorkUnit` (its
trial block and bootstrap both derive from that δ's own ``SeedSequence``
child), so the figure interleaves with other experiments through the shared
pool; inside a pooled unit the per-trial fan-out runs inline (pool children
never nest pools).  Output is byte-identical for every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch import WorkUnit, batch_infeasible_index, pool_for
from repro.datasets.synthetic import two_group_shifted_scores
from repro.experiments.config import Fig2Config
from repro.fairness.constraints import FairnessConstraints
from repro.groups.attributes import GroupAssignment
from repro.utils.bootstrap import BootstrapResult, bootstrap_ci
from repro.utils.rng import spawn_seed_sequences
from repro.utils.tables import format_series


@dataclass(frozen=True)
class Fig2Result:
    """Bootstrap mean central-ranking II per δ."""

    config: Fig2Config
    central_ii: dict[float, BootstrapResult]

    def to_text(self) -> str:
        """Render the single series of Figure 2."""
        series = {
            "central ranking II [CI]": [
                (r.estimate, r.low, r.high) for r in self.central_ii.values()
            ]
        }
        return format_series(
            [f"{d:g}" for d in self.central_ii],
            series,
            x_label="delta",
            title="Fig.2: Infeasible Index of the score-sorted central ranking",
        )


def _central_ranking_trial(
    trial_index: int,
    rng: np.random.Generator,
    delta: float,
    group_size: int,
) -> np.ndarray:
    """Trial-pool unit: one score draw's central-ranking order view."""
    del trial_index  # the trial's stream comes entirely from ``rng``
    return two_group_shifted_scores(delta, group_size=group_size, seed=rng).ranking.order


def _delta_unit(
    seed: np.random.SeedSequence,
    delta: float,
    config: Fig2Config,
    groups: GroupAssignment,
    constraints: FairnessConstraints,
) -> BootstrapResult:
    """One δ: its trial block, batched II scoring, and bootstrap."""
    trial_seq, bootstrap_seq = seed.spawn(2)
    # The trial block fans out through the same shared pool handle the unit
    # was scheduled by; inside a pool child it runs inline (no nesting).
    pool = pool_for(config.pool, config.n_jobs)
    trial_orders = np.stack(
        pool.run_trials(
            _central_ranking_trial,
            config.n_trials,
            seed=trial_seq,
            payload=(delta, config.group_size),
        )
    )
    iis = batch_infeasible_index(trial_orders, groups, constraints).astype(
        np.float64
    )
    return bootstrap_ci(
        iis, n_resamples=config.n_bootstrap, seed=np.random.default_rng(bootstrap_seq)
    )


def fig2_units(config: Fig2Config) -> list[WorkUnit]:
    """One work unit per δ, seeded by that δ's ``SeedSequence`` child."""
    if config.n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {config.n_trials}")
    delta_seqs = spawn_seed_sequences(config.seed, len(config.deltas))
    # The group structure is the same for every draw (two fixed index
    # blocks, as two_group_shifted_scores lays them out), so it is built
    # once and shipped with each unit; each δ's trials are stacked and
    # scored with one batched Infeasible-Index kernel call.
    groups = GroupAssignment.from_indices(
        np.repeat(np.arange(2, dtype=np.int64), config.group_size)
    )
    constraints = FairnessConstraints.proportional(groups)
    return [
        WorkUnit(
            key=("fig2", delta),
            fn=_delta_unit,
            seed=delta_seq,
            payload=(delta, config, groups, constraints),
            weight=float(config.n_trials),
            kind=("fig2", "delta"),
        )
        for delta, delta_seq in zip(config.deltas, delta_seqs)
    ]


def collect_fig2(config: Fig2Config, results: dict) -> Fig2Result:
    """Assemble the figure from the scheduled per-δ results."""
    return Fig2Result(
        config=config,
        central_ii={d: results[("fig2", d)] for d in config.deltas},
    )


def run_fig2(config: Fig2Config = Fig2Config()) -> Fig2Result:
    """Run the Figure 2 experiment under ``config``.

    The per-δ units are scheduled through ``config.pool`` (or a private
    view on the ``config.n_jobs``-sized shared pool); per-δ seed children
    keep the result byte-identical for every worker count under a fixed
    seed.
    """
    pool = pool_for(config.pool, config.n_jobs)
    return collect_fig2(config, pool.run(fig2_units(config)))
