"""Retry policy for supervised pool recovery.

A :class:`RetryPolicy` bounds how hard the scheduler fights a dying
worker pool: per-unit attempt budget, per-run rebuild budget, and an
exponential backoff between rebuilds.  The sleep callable is a policy
field so tests (and the deterministic serve harness) can substitute a
recording fake and stay sleep-free — backoff *amounts* are still
computed and counted, they just never block.

Only *crash* faults (worker process death, surfacing as
``BrokenProcessPool``) consume budget.  Application faults — the unit's
own function raising — are never retried; they keep their historical
fail-fast semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

#: ``on_exhausted`` mode: finish the unserved units inline in the parent
#: process (batch pipelines want the answer, however slowly).
DEGRADE_INLINE = "inline"
#: ``on_exhausted`` mode: raise :class:`~repro.exceptions.PoolRecoveryExhausted`
#: (serving tiers want to shed load and trip a circuit breaker instead of
#: dragging every request through one inline thread).
DEGRADE_RAISE = "raise"

_MODES = (DEGRADE_INLINE, DEGRADE_RAISE)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded recovery budget for crash faults.

    ``max_attempts`` is the number of *pooled* tries each unit gets: a
    unit caught in its ``max_attempts``-th pool collapse is exhausted.
    ``max_rebuilds`` caps executor rebuilds per supervised run; once
    spent, every still-pending unit is exhausted at once.  Exhausted
    units are handled per ``on_exhausted``: ``"inline"`` degrades to
    serial execution in the parent (digest-neutral — same ``(fn, seed,
    payload)``), ``"raise"`` raises
    :class:`~repro.exceptions.PoolRecoveryExhausted`.

    ``backoff(rebuild)`` returns the pre-rebuild delay for the given
    1-based rebuild ordinal: ``backoff_base * backoff_multiplier**(n-1)``
    clamped to ``backoff_cap``.

    >>> policy = RetryPolicy(backoff_base=0.05, backoff_multiplier=2.0)
    >>> [round(policy.backoff(n), 3) for n in (1, 2, 3)]
    [0.05, 0.1, 0.2]
    """

    max_attempts: int = 3
    max_rebuilds: int = 2
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap: float = 1.0
    on_exhausted: str = DEGRADE_INLINE
    #: Injectable so tests never really sleep; must be picklable if the
    #: policy travels to workers (the default, :func:`time.sleep`, is).
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_rebuilds < 0:
            raise ValueError(
                f"max_rebuilds must be >= 0, got {self.max_rebuilds}"
            )
        if self.backoff_base < 0.0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                "backoff_multiplier must be >= 1, "
                f"got {self.backoff_multiplier}"
            )
        if self.backoff_cap < 0.0:
            raise ValueError(
                f"backoff_cap must be >= 0, got {self.backoff_cap}"
            )
        if self.on_exhausted not in _MODES:
            raise ValueError(
                f"on_exhausted must be one of {_MODES}, "
                f"got {self.on_exhausted!r}"
            )

    def backoff(self, rebuild: int) -> float:
        """Delay (seconds) before the ``rebuild``-th pool rebuild (1-based)."""
        if rebuild < 1:
            raise ValueError(f"rebuild ordinal must be >= 1, got {rebuild}")
        raw = self.backoff_base * self.backoff_multiplier ** (rebuild - 1)
        return min(raw, self.backoff_cap)


#: The scheduler's default budget: three pooled tries per unit, two
#: rebuilds per run, degrade inline when spent.
DEFAULT_RETRY_POLICY = RetryPolicy()
