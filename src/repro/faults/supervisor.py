"""Supervised pool recovery: crash-fault retries under a bounded budget.

:func:`supervise_units` is the pooled dispatch loop behind
:func:`repro.batch.schedule.iter_units`.  It submits work units to the
shared per-``n_jobs`` executor exactly as the unsupervised path did
(longest-processing-time order, as-completed harvesting) — but when the
pool collapses (``BrokenProcessPool``: a worker was OOM-killed,
segfaulted, or hard-exited by the fault-injection harness) it rebuilds
the executor and resubmits the unserved units *with their original
seeds* under a :class:`~repro.faults.policy.RetryPolicy`.

Because every unit's output is a pure function of ``(fn, seed,
payload)``, a retried unit reproduces its original bytes exactly: crash
recovery is invisible in ``reports_digest``/``responses_digest``, it
only costs wall-time.  *Application* faults — the unit function raising —
keep their historical fail-fast semantics: the error propagates at the
point of iteration and still-queued futures are cancelled; no budget is
spent on them.

The degradation ladder, in order:

1. retry crashed units on a rebuilt pool (up to ``max_attempts`` pooled
   tries per unit, ``max_rebuilds`` rebuilds per run, exponential
   backoff between rebuilds);
2. budget spent and ``on_exhausted="inline"`` (batch default): finish
   the stragglers serially in the parent — slower, same bytes — with a
   one-time :class:`RuntimeWarning` through the resettable warn-once
   registry;
3. budget spent and ``on_exhausted="raise"`` (serving default): raise
   :class:`~repro.exceptions.PoolRecoveryExhausted` so the serve tier
   can trip its circuit breaker and shed load instead of dragging all
   traffic through one inline thread.

Every recovery action is tallied in :class:`FaultCounters` — the
process-wide :data:`GLOBAL_FAULTS` plus any caller-supplied counters
(engine sessions pass their own, so ``engine.stats()`` stays truthful).
"""

from __future__ import annotations

import time
from concurrent.futures import Future, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator, Protocol, Sequence

from repro.batch.parallel import _EXECUTORS, _get_executor, _warn_once
from repro.exceptions import PoolRecoveryExhausted
from repro.faults.injection import maybe_inject
from repro.faults.policy import (
    DEFAULT_RETRY_POLICY,
    DEGRADE_RAISE,
    RetryPolicy,
)


class SupervisedUnit(Protocol):
    """The slice of :class:`~repro.batch.schedule.WorkUnit` the supervisor
    reads (structural, so this module never imports the scheduler)."""

    @property
    def key(self) -> Hashable: ...

    @property
    def fn(self) -> Callable[..., Any]: ...

    @property
    def seed(self) -> Any: ...

    @property
    def payload(self) -> tuple[Any, ...]: ...

    @property
    def weight(self) -> float: ...


@dataclass
class FaultCounters:
    """Mutable tally of recovery activity (one per engine session, plus
    the process-wide :data:`GLOBAL_FAULTS`).

    ``crash_faults`` counts pool collapses observed; ``rebuilds`` counts
    executor rebuilds actually performed; ``retried_units`` /
    ``degraded_units`` / ``exhausted_units`` count units resubmitted,
    finished inline after budget exhaustion, and surfaced as
    :class:`~repro.exceptions.PoolRecoveryExhausted` respectively;
    ``backoff_seconds`` sums the computed backoff delays (as computed —
    a fake policy sleep still accrues them).
    """

    crash_faults: int = 0
    rebuilds: int = 0
    retried_units: int = 0
    degraded_units: int = 0
    exhausted_units: int = 0
    backoff_seconds: float = 0.0

    def record(
        self,
        *,
        crash_faults: int = 0,
        rebuilds: int = 0,
        retried_units: int = 0,
        degraded_units: int = 0,
        exhausted_units: int = 0,
        backoff_seconds: float = 0.0,
    ) -> None:
        """Accumulate one recovery event into the tally."""
        self.crash_faults += crash_faults
        self.rebuilds += rebuilds
        self.retried_units += retried_units
        self.degraded_units += degraded_units
        self.exhausted_units += exhausted_units
        self.backoff_seconds += backoff_seconds

    def reset(self) -> None:
        """Zero every counter (test hygiene; see the shared fixture)."""
        self.crash_faults = 0
        self.rebuilds = 0
        self.retried_units = 0
        self.degraded_units = 0
        self.exhausted_units = 0
        self.backoff_seconds = 0.0

    def snapshot(self) -> dict[str, int | float]:
        """A plain-dict copy (stats surfaces embed this)."""
        return {
            "crash_faults": self.crash_faults,
            "rebuilds": self.rebuilds,
            "retried_units": self.retried_units,
            "degraded_units": self.degraded_units,
            "exhausted_units": self.exhausted_units,
            "backoff_seconds": self.backoff_seconds,
        }

    def __bool__(self) -> bool:
        return any(value != 0 for value in self.snapshot().values())


#: Process-wide tally: every supervised run records here (in addition to
#: any caller-supplied counters), so CLI runs and chaos lanes can assert
#: that recovery actually happened.
GLOBAL_FAULTS = FaultCounters()


def reset_fault_counters() -> None:
    """Zero :data:`GLOBAL_FAULTS` (used by the shared pytest fixture)."""
    GLOBAL_FAULTS.reset()


def evict_broken_pool(
    n_jobs: int,
    executor: Any,
    futures: Iterable[Future[Any]] = (),
) -> None:
    """The one shared broken-pool cleanup: cancel still-queued ``futures``,
    drop the executor from the per-``n_jobs`` registry, and shut it down
    without waiting.

    Cancelling explicitly (not just via ``cancel_futures=True``) keeps
    behaviour uniform across executor implementations and marks the
    futures cancelled *before* any caller inspects them.
    """
    for future in futures:
        future.cancel()
    _EXECUTORS.pop(n_jobs, None)
    executor.shutdown(wait=False, cancel_futures=True)


def _execute_unit(
    fn: Callable[..., Any],
    seed: Any,
    payload: tuple[Any, ...],
    key: Hashable,
    attempt: int,
) -> tuple[Any, float]:
    """Run one supervised unit in the executing process and clock it.

    The injection probe sees the deterministic ``(key, attempt)`` pair, so
    a chaos plan fires on exactly the same unit/attempt every run.  The
    timer excludes pool queueing and pickling, matching the unsupervised
    scheduler's cost measurements.
    """
    maybe_inject(key, attempt)
    t0 = time.perf_counter()
    result = fn(seed, *payload)
    return result, time.perf_counter() - t0


def supervise_units(
    units: Sequence[SupervisedUnit],
    *,
    n_jobs: int,
    policy: RetryPolicy | None = None,
    counters: FaultCounters | None = None,
) -> Iterator[tuple[int, Any, float]]:
    """Pooled dispatch with crash-fault recovery: yield ``(index, result,
    seconds)`` for every unit, in completion order.

    ``n_jobs`` must already be resolved (> 1); the inline path belongs to
    the caller.  See the module docstring for the recovery semantics.
    """
    policy = DEFAULT_RETRY_POLICY if policy is None else policy
    tallies = [GLOBAL_FAULTS]
    if counters is not None:
        tallies.append(counters)
    pending = set(range(len(units)))
    attempts = [0] * len(units)
    rebuilds = 0
    while pending:
        executor = _get_executor(n_jobs)
        # Longest-processing-time dispatch, ties in input order (the sort
        # is stable over the ascending index list).
        order = sorted(pending)
        order.sort(key=lambda i: -units[i].weight)
        futures: dict[Future[tuple[Any, float]], int] = {}
        crash: BrokenProcessPool | None = None
        try:
            for i in order:
                unit = units[i]
                futures[
                    executor.submit(
                        _execute_unit,
                        unit.fn,
                        unit.seed,
                        unit.payload,
                        unit.key,
                        attempts[i],
                    )
                ] = i
            for future in as_completed(futures):
                try:
                    result, seconds = future.result()
                except BrokenProcessPool as exc:
                    crash = exc
                    break
                index = futures[future]
                pending.discard(index)
                yield index, result, seconds
        except BrokenProcessPool as exc:
            # submit() itself can observe the collapse.
            crash = exc
        except BaseException:
            # Application fault, interrupt, or an abandoned consumer:
            # cancel whatever has not started so the shared pool doesn't
            # grind on for results nobody will see, then propagate —
            # current fail-fast semantics, no retry budget spent.
            for future in futures:
                future.cancel()
            raise
        if crash is None:
            return

        # -- crash fault: recover --------------------------------------
        # Units that finished before the collapse still hold results —
        # harvest them instead of recomputing.  A unit that failed with
        # an *application* error before the crash keeps fail-fast
        # semantics: propagate it, never retry it.
        for future, index in sorted(futures.items(), key=lambda kv: kv[1]):
            if index not in pending or not future.done() or future.cancelled():
                continue
            error = future.exception()
            if error is None:
                result, seconds = future.result()
                pending.discard(index)
                yield index, result, seconds
            elif not isinstance(error, BrokenProcessPool):
                evict_broken_pool(n_jobs, executor, futures)
                raise error
        evict_broken_pool(n_jobs, executor, futures)
        for tally in tallies:
            tally.record(crash_faults=1)
        # Every unit still unserved was caught in this collapse: charge
        # each one attempt (the killer cannot be identified, and charging
        # all keeps the bound deterministic).
        for index in pending:
            attempts[index] += 1
        if rebuilds >= policy.max_rebuilds:
            survivors: list[int] = []
            casualties = sorted(pending)
        else:
            survivors = sorted(
                i for i in pending if attempts[i] < policy.max_attempts
            )
            casualties = sorted(
                i for i in pending if attempts[i] >= policy.max_attempts
            )
        if casualties:
            if policy.on_exhausted == DEGRADE_RAISE:
                for tally in tallies:
                    tally.record(exhausted_units=len(casualties))
                raise PoolRecoveryExhausted(
                    keys=tuple(units[i].key for i in casualties),
                    rebuilds=rebuilds,
                    max_rebuilds=policy.max_rebuilds,
                    max_attempts=policy.max_attempts,
                ) from crash
            _warn_once(
                "pool_degraded",
                "worker-pool recovery budget exhausted "
                f"(max_attempts={policy.max_attempts}, "
                f"max_rebuilds={policy.max_rebuilds}); finishing "
                f"{len(casualties)} unit(s) inline in the parent process. "
                "Results are unchanged — every unit is a pure function of "
                "(fn, seed, payload) — only slower.  This warning is shown "
                "once per reset_warnings().",
            )
            for tally in tallies:
                tally.record(degraded_units=len(casualties))
            for index in casualties:
                unit = units[index]
                t0 = time.perf_counter()
                result = unit.fn(unit.seed, *unit.payload)
                seconds = time.perf_counter() - t0
                pending.discard(index)
                yield index, result, seconds
        if survivors:
            rebuilds += 1
            delay = policy.backoff(rebuilds)
            for tally in tallies:
                tally.record(
                    rebuilds=1,
                    retried_units=len(survivors),
                    backoff_seconds=delay,
                )
            if delay > 0.0:
                policy.sleep(delay)
