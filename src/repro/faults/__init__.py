"""Fault tolerance for the shared worker pool: bounded retries,
deterministic chaos, and a supervised scheduler.

The package splits into three small layers:

:mod:`repro.faults.policy`
    :class:`RetryPolicy` — the recovery budget (attempts per unit,
    rebuilds per run, exponential backoff with an injectable sleep) and
    the degradation mode when it runs out (``"inline"`` or ``"raise"``).
:mod:`repro.faults.supervisor`
    :func:`supervise_units` — the pooled dispatch loop that survives
    ``BrokenProcessPool`` by rebuilding the executor and resubmitting
    unserved units with their *original* seeds (digest-neutral by the
    purity contract), plus :class:`FaultCounters` telemetry and the
    shared :func:`evict_broken_pool` cleanup.
:mod:`repro.faults.injection`
    :class:`InjectionPlan` / :class:`FaultSpec` — deterministic chaos,
    keyed by ``(unit key, attempt)`` and shipped to workers through the
    executor initializer, so crash paths are exercised reproducibly in
    tests and the CI chaos lane.

Quickstart::

    from repro.faults import RetryPolicy, inject_faults, parse_fault_specs
    from repro.experiments.runner import run_all, reports_digest

    with inject_faults(parse_fault_specs("*:0:exit")):
        reports = run_all(fast=True, n_jobs=2)   # first worker try dies…
    reports_digest(reports)  # …and the digest still matches the serial run
"""

from repro.exceptions import (
    InjectedFault,
    PoolRecoveryExhausted,
    WorkerCrashError,
)
from repro.faults.injection import (
    ANY_KEY,
    FAULT_ENV_VAR,
    FaultSpec,
    InjectionPlan,
    active_plan,
    clear_plan,
    configured_plan,
    inject_faults,
    install_plan,
    maybe_inject,
    parse_fault_specs,
    plan_from_env,
)
from repro.faults.policy import (
    DEFAULT_RETRY_POLICY,
    DEGRADE_INLINE,
    DEGRADE_RAISE,
    RetryPolicy,
)
from repro.faults.supervisor import (
    GLOBAL_FAULTS,
    FaultCounters,
    evict_broken_pool,
    reset_fault_counters,
    supervise_units,
)

__all__ = [
    "ANY_KEY",
    "DEFAULT_RETRY_POLICY",
    "DEGRADE_INLINE",
    "DEGRADE_RAISE",
    "FAULT_ENV_VAR",
    "FaultCounters",
    "FaultSpec",
    "GLOBAL_FAULTS",
    "InjectedFault",
    "InjectionPlan",
    "PoolRecoveryExhausted",
    "RetryPolicy",
    "WorkerCrashError",
    "active_plan",
    "clear_plan",
    "configured_plan",
    "evict_broken_pool",
    "inject_faults",
    "install_plan",
    "maybe_inject",
    "parse_fault_specs",
    "plan_from_env",
    "reset_fault_counters",
    "supervise_units",
]
