"""Deterministic fault injection for pool workers.

An :class:`InjectionPlan` is a picklable table of :class:`FaultSpec`
rules keyed by ``(unit key, attempt)``.  The parent installs a plan with
:func:`install_plan` (or the ``REPRO_INJECT_FAULT`` environment
variable / CLI ``--inject-fault``); the pool plumbing ships it to every
worker through the executor *initializer*, and workers consult
:func:`maybe_inject` immediately before running each unit.  Because the
plan matches on the deterministic ``(key, attempt)`` pair, a chaos run
is exactly reproducible: the same unit dies on the same attempt every
time, and the digest contract can be asserted byte-for-byte against the
fault-free run.

The plan is *worker-side only*: the parent process never activates one,
so inline execution (``n_jobs=1``) and the degraded serial fallback are
immune — a hard-exit injection can kill a worker, never the session.

Actions:

``"exit"``
    ``os._exit(exit_code)`` — a crash fault; the parent sees
    ``BrokenProcessPool`` and the supervisor retries.
``"raise"``
    raise :class:`~repro.exceptions.InjectedFault` — an application
    fault; propagates, never retried.
``"stall"``
    sleep ``seconds`` then run normally — transient slowness.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import InjectedFault

#: Wildcard unit key: matches every unit.
ANY_KEY = "*"

#: Environment variable read by :func:`plan_from_env` (and honored by the
#: CLI): same ``KEY:ATTEMPT:ACTION[:SECONDS][;...]`` syntax as
#: :func:`parse_fault_specs`.
FAULT_ENV_VAR = "REPRO_INJECT_FAULT"

ACTION_EXIT = "exit"
ACTION_RAISE = "raise"
ACTION_STALL = "stall"

_ACTIONS = (ACTION_EXIT, ACTION_RAISE, ACTION_STALL)


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *what* happens to *which* unit on *which*
    attempt.

    ``key`` matches a unit when it equals the unit key, equals
    ``str(unit key)`` (so specs parsed from text match integer keys), or
    is the wildcard ``"*"``.  ``attempt`` is the 0-based retry ordinal
    (0 = first try).
    """

    key: object
    attempt: int
    action: str
    seconds: float = 0.05
    exit_code: int = 23

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")
        if self.seconds < 0.0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def matches(self, key: object, attempt: int) -> bool:
        """Whether this rule fires for ``(key, attempt)``."""
        if self.attempt != attempt:
            return False
        if self.key == ANY_KEY:
            return True
        if self.key == key:
            return True
        return isinstance(self.key, str) and self.key == str(key)


@dataclass(frozen=True)
class InjectionPlan:
    """An ordered, picklable collection of :class:`FaultSpec` rules.

    First match wins; an empty plan injects nothing.
    """

    specs: tuple[FaultSpec, ...] = ()

    def spec_for(self, key: object, attempt: int) -> FaultSpec | None:
        """The first rule matching ``(key, attempt)``, or ``None``."""
        for spec in self.specs:
            if spec.matches(key, attempt):
                return spec
        return None

    def __bool__(self) -> bool:
        return bool(self.specs)


def parse_fault_specs(text: str) -> InjectionPlan:
    """Parse ``KEY:ATTEMPT:ACTION[:SECONDS][;...]`` into a plan.

    ``KEY`` is kept as a string (``"*"`` is the wildcard; string keys
    also match units whose ``str(key)`` equals them).  ``ATTEMPT`` is the
    0-based attempt ordinal.  ``ACTION`` is ``exit``, ``raise`` or
    ``stall``; the optional fourth field is the stall duration.

    >>> plan = parse_fault_specs("*:0:exit; fig2:1:stall:0.25")
    >>> plan.spec_for("anything", 0).action
    'exit'
    >>> plan.spec_for("fig2", 1).seconds
    0.25
    """
    specs: list[FaultSpec] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = [part.strip() for part in chunk.split(":")]
        if len(parts) not in (3, 4):
            raise ValueError(
                "fault spec must be KEY:ATTEMPT:ACTION[:SECONDS], "
                f"got {chunk!r}"
            )
        key, attempt_text, action = parts[0], parts[1], parts[2]
        try:
            attempt = int(attempt_text)
        except ValueError:
            raise ValueError(
                f"fault spec attempt must be an integer, got {attempt_text!r}"
            ) from None
        if len(parts) == 4:
            try:
                seconds = float(parts[3])
            except ValueError:
                raise ValueError(
                    f"fault spec seconds must be a number, got {parts[3]!r}"
                ) from None
            specs.append(
                FaultSpec(
                    key=key, attempt=attempt, action=action, seconds=seconds
                )
            )
        else:
            specs.append(FaultSpec(key=key, attempt=attempt, action=action))
    if not specs:
        raise ValueError(f"fault spec text is empty: {text!r}")
    return InjectionPlan(specs=tuple(specs))


def plan_from_env() -> InjectionPlan | None:
    """The plan described by ``$REPRO_INJECT_FAULT``, or ``None``."""
    text = os.environ.get(FAULT_ENV_VAR, "").strip()
    if not text:
        return None
    return parse_fault_specs(text)


# -- parent side: configuring the plan shipped to new workers ----------------

_CONFIGURED: InjectionPlan | None = None


def configured_plan() -> InjectionPlan | None:
    """The plan new executors will ship to their workers (parent side)."""
    return _CONFIGURED


def install_plan(plan: InjectionPlan | None) -> None:
    """Install ``plan`` for all *future* pool workers.

    Existing executors were initialized without it, so they are evicted;
    the next pooled dispatch builds a fresh pool whose initializer
    carries the plan.  ``None`` uninstalls (same eviction — unless no
    plan was configured, in which case the live executors are already
    plan-free and survive: uninstalling is then a no-op, so test hygiene
    can call :func:`clear_plan` freely without churning warm pools).
    """
    global _CONFIGURED
    if plan is None and _CONFIGURED is None:
        return
    _CONFIGURED = plan
    # Imported lazily: repro.batch.parallel ships plans into workers, so a
    # module-level import here would be circular.
    from repro.batch.parallel import shutdown_workers

    shutdown_workers()


def clear_plan() -> None:
    """Remove any configured plan and evict plan-carrying executors."""
    install_plan(None)


@contextmanager
def inject_faults(plan: InjectionPlan) -> Iterator[InjectionPlan]:
    """Scoped :func:`install_plan` — always clears on exit.

    The workhorse for chaos tests::

        with inject_faults(parse_fault_specs("*:0:exit")):
            reports = run_all(fast=True, n_jobs=2)
    """
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()


# -- worker side: the active plan and the injection point --------------------

_WORKER_PLAN: InjectionPlan | None = None


def _install_worker_plan(plan: InjectionPlan | None) -> None:
    """Executor-initializer hook: activate ``plan`` in this worker."""
    global _WORKER_PLAN
    _WORKER_PLAN = plan if plan else None


def active_plan() -> InjectionPlan | None:
    """The plan active in *this* process (only ever set in workers)."""
    return _WORKER_PLAN


def maybe_inject(key: object, attempt: int) -> None:
    """Fire the configured fault for ``(key, attempt)``, if any.

    Called by the supervised unit wrapper in the worker immediately
    before the unit function runs.  No-op without an active plan.
    """
    plan = _WORKER_PLAN
    if plan is None:
        return
    spec = plan.spec_for(key, attempt)
    if spec is None:
        return
    if spec.action == ACTION_EXIT:
        # A hard exit, not an exception: simulates OOM-kill/segfault.  The
        # parent observes BrokenProcessPool, i.e. a crash fault.
        os._exit(spec.exit_code)
    if spec.action == ACTION_RAISE:
        raise InjectedFault(
            f"injected application fault for unit {key!r} attempt {attempt}"
        )
    time.sleep(spec.seconds)
