"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidPermutationError(ReproError, ValueError):
    """A sequence that was supposed to be a permutation of ``0..n-1`` is not."""


class LengthMismatchError(ReproError, ValueError):
    """Two rankings (or a ranking and a score/group vector) differ in length."""


class InvalidConstraintError(ReproError, ValueError):
    """Fairness constraint vectors are malformed (wrong size, out of range,
    or lower bounds exceed upper bounds)."""


class InfeasibleProblemError(ReproError, RuntimeError):
    """No ranking satisfies the requested fairness constraints."""


class GroupAssignmentError(ReproError, ValueError):
    """A group assignment is malformed (e.g. empty, or labels of mixed
    incompatible types)."""


class SolverError(ReproError, RuntimeError):
    """An optimization backend (MILP / matching / DP) failed unexpectedly."""


class EstimationError(ReproError, RuntimeError):
    """Parameter estimation (e.g. Mallows MLE) could not converge."""


class DatasetError(ReproError, RuntimeError):
    """A dataset could not be loaded or synthesized consistently."""


class WorkerCrashError(ReproError, RuntimeError):
    """A pool worker process died mid-unit (a *crash* fault).

    Crash faults are infrastructure failures — the worker was OOM-killed,
    segfaulted, or hard-exited — and are retryable: every
    :class:`~repro.batch.schedule.WorkUnit` is a pure function of
    ``(fn, seed, payload)``, so resubmitting it with its original seed
    reproduces the exact same output bytes.  They are distinct from
    *application* faults (the unit's function raised), which are never
    retried.
    """


class PoolRecoveryExhausted(WorkerCrashError):
    """Supervised pool recovery ran out of retry budget.

    Raised (policy ``on_exhausted="raise"``) when units still owe results
    after the :class:`~repro.faults.RetryPolicy`'s per-unit attempt budget
    or the per-run rebuild budget is spent.  ``keys`` names the unserved
    units; the triggering ``BrokenProcessPool`` is chained as
    ``__cause__``.
    """

    def __init__(
        self,
        *,
        keys: tuple[object, ...],
        rebuilds: int,
        max_rebuilds: int,
        max_attempts: int,
    ) -> None:
        self.keys = tuple(keys)
        self.rebuilds = int(rebuilds)
        self.max_rebuilds = int(max_rebuilds)
        self.max_attempts = int(max_attempts)
        super().__init__(
            f"worker-pool recovery exhausted after {self.rebuilds} "
            f"rebuild(s): {len(self.keys)} unit(s) still unserved "
            f"(max_attempts={self.max_attempts}, "
            f"max_rebuilds={self.max_rebuilds})"
        )

    def __reduce__(
        self,
    ) -> tuple[object, ...]:  # pragma: no cover - pickle plumbing
        return (
            _rebuild_pool_recovery_exhausted,
            (self.keys, self.rebuilds, self.max_rebuilds, self.max_attempts),
        )


def _rebuild_pool_recovery_exhausted(
    keys: tuple[object, ...],
    rebuilds: int,
    max_rebuilds: int,
    max_attempts: int,
) -> PoolRecoveryExhausted:
    """Pickle helper: rebuild the keyword-only exception."""
    return PoolRecoveryExhausted(
        keys=keys,
        rebuilds=rebuilds,
        max_rebuilds=max_rebuilds,
        max_attempts=max_attempts,
    )


class InjectedFault(ReproError, RuntimeError):
    """An application fault raised on purpose by the fault-injection
    harness (:mod:`repro.faults.injection`, action ``"raise"``)."""
