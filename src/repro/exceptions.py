"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidPermutationError(ReproError, ValueError):
    """A sequence that was supposed to be a permutation of ``0..n-1`` is not."""


class LengthMismatchError(ReproError, ValueError):
    """Two rankings (or a ranking and a score/group vector) differ in length."""


class InvalidConstraintError(ReproError, ValueError):
    """Fairness constraint vectors are malformed (wrong size, out of range,
    or lower bounds exceed upper bounds)."""


class InfeasibleProblemError(ReproError, RuntimeError):
    """No ranking satisfies the requested fairness constraints."""


class GroupAssignmentError(ReproError, ValueError):
    """A group assignment is malformed (e.g. empty, or labels of mixed
    incompatible types)."""


class SolverError(ReproError, RuntimeError):
    """An optimization backend (MILP / matching / DP) failed unexpectedly."""


class EstimationError(ReproError, RuntimeError):
    """Parameter estimation (e.g. Mallows MLE) could not converge."""


class DatasetError(ReproError, RuntimeError):
    """A dataset could not be loaded or synthesized consistently."""
