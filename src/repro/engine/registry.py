"""The string-keyed algorithm registry behind the serving facade.

Every fair-ranking algorithm in the package registers here under a short
stable name, so serving surfaces — :class:`repro.engine.RankingEngine`,
the ``repro-fair-ranking rank`` CLI, request payloads — can name algorithms
as data instead of importing classes:

>>> from repro.engine import algorithm_names, make_algorithm
>>> sorted(algorithm_names())
['binary-ipf', 'detconstsort', 'dp', 'gmm', 'ilp', 'ipf', 'mallows']
>>> make_algorithm("mallows", theta=1.0, n_samples=15).name
'mallows(theta=1, m=15)'

:func:`make_algorithm` is the sanctioned construction path: it builds the
same implementation classes as the legacy constructors (rankings are
byte-identical) but without their one-time :class:`DeprecationWarning`.
Downstream code can extend the zoo with :func:`register_algorithm`, usable
as a decorator on a factory or passed a class directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.algorithms.base import (
    FairRankingAlgorithm,
    suppress_legacy_warnings,
)


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registry entry.

    Attributes
    ----------
    name:
        Canonical registry key (aliases resolve to it).
    factory:
        Callable returning a :class:`FairRankingAlgorithm`; usually the
        implementation class itself.
    summary:
        One-line description, surfaced by the CLI's algorithm listing.
    requires_protected_attribute:
        Whether problems served to this algorithm need ``groups``.
    """

    name: str
    factory: Callable[..., FairRankingAlgorithm]
    summary: str = ""
    requires_protected_attribute: bool = True


_REGISTRY: dict[str, AlgorithmSpec] = {}
_ALIASES: dict[str, str] = {}


def register_algorithm(
    name: str,
    factory: Callable[..., FairRankingAlgorithm] | None = None,
    *,
    summary: str = "",
    requires_protected_attribute: bool = True,
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
) -> (
    Callable[..., FairRankingAlgorithm]
    | Callable[
        [Callable[..., FairRankingAlgorithm]],
        Callable[..., FairRankingAlgorithm],
    ]
):
    """Register ``factory`` under ``name`` (usable as a decorator).

    Parameters
    ----------
    name:
        Registry key; lower-case by convention.
    factory:
        Class or callable producing a :class:`FairRankingAlgorithm`.  When
        omitted, the call returns a decorator expecting it.
    aliases:
        Extra names resolving to the same entry.
    overwrite:
        Allow replacing an existing entry; without it a collision raises
        (two libraries silently fighting over a name would be a debugging
        tarpit).
    """

    def _register(
        fn: Callable[..., FairRankingAlgorithm],
    ) -> Callable[..., FairRankingAlgorithm]:
        key = name.lower()
        alias_keys = [alias.lower() for alias in aliases]
        if not overwrite:
            # Validate every name before writing anything: a collision must
            # not leave a half-registered entry behind.
            for candidate in [key, *alias_keys]:
                if candidate in _REGISTRY or candidate in _ALIASES:
                    raise ValueError(
                        f"algorithm {candidate!r} is already registered"
                    )
        _REGISTRY[key] = AlgorithmSpec(
            name=key,
            factory=fn,
            summary=summary,
            requires_protected_attribute=requires_protected_attribute,
        )
        for alias_key in alias_keys:
            _ALIASES[alias_key] = key
        return fn

    if factory is None:
        return _register
    return _register(factory)


def unregister_algorithm(name: str) -> None:
    """Remove an entry and its aliases (primarily for tests)."""
    key = _ALIASES.pop(name.lower(), name.lower())
    _REGISTRY.pop(key, None)
    for alias in sorted(a for a, target in _ALIASES.items() if target == key):
        del _ALIASES[alias]


def algorithm_spec(name: str) -> AlgorithmSpec:
    """The registry entry for ``name`` (or an alias of it)."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    spec = _REGISTRY.get(key)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown algorithm {name!r}; registered algorithms: {known}"
        )
    return spec


def algorithm_names() -> tuple[str, ...]:
    """Canonical names of every registered algorithm (sorted)."""
    return tuple(sorted(_REGISTRY))


def iter_algorithm_specs() -> Iterator[AlgorithmSpec]:
    """Every registry entry, in name order."""
    for name in algorithm_names():
        yield _REGISTRY[name]


def make_algorithm(name: str, /, **params: object) -> FairRankingAlgorithm:
    """Construct algorithm ``name`` with ``params`` — the registry path.

    Unlike the legacy class constructors this never emits a
    :class:`DeprecationWarning`; the instances (and their rankings) are
    otherwise identical.
    """
    spec = algorithm_spec(name)
    with suppress_legacy_warnings():
        return spec.factory(**params)


def _register_builtins() -> None:
    """Register the paper's algorithm zoo.

    Imports are local to keep the module's top-level namespace to the
    registry machinery and make the builtin registrations self-contained.
    """
    from repro.algorithms.binary_ipf import GrBinaryIPF
    from repro.algorithms.detconstsort import DetConstSort
    from repro.algorithms.dp import DpFairRanking
    from repro.algorithms.gmm_postprocess import GeneralizedMallowsFairRanking
    from repro.algorithms.ilp import IlpFairRanking
    from repro.algorithms.ipf import ApproxMultiValuedIPF
    from repro.algorithms.mallows_postprocess import MallowsFairRanking

    register_algorithm(
        "mallows",
        MallowsFairRanking,
        summary=(
            "the paper's Algorithm 1: attribute-blind Mallows noise, best "
            "of m samples"
        ),
        requires_protected_attribute=False,
    )
    register_algorithm(
        "gmm",
        GeneralizedMallowsFairRanking,
        summary="Algorithm 1 with a per-insertion dispersion profile",
        requires_protected_attribute=False,
        aliases=("generalized-mallows",),
    )
    register_algorithm(
        "detconstsort",
        DetConstSort,
        summary="DetConstSort baseline (Geyik et al.), optional noisy counts",
    )
    register_algorithm(
        "ipf",
        ApproxMultiValuedIPF,
        summary=(
            "ApproxMultiValuedIPF (Wei et al.): footrule-optimal matching "
            "under prefix bounds"
        ),
        aliases=("multi-valued-ipf",),
    )
    register_algorithm(
        "binary-ipf",
        GrBinaryIPF,
        summary="GrBinaryIPF (Wei et al.): exact KT-optimal for two groups",
    )
    register_algorithm(
        "ilp",
        IlpFairRanking,
        summary="the paper's ILP solved with HiGHS (scipy.optimize.milp)",
    )
    register_algorithm(
        "dp",
        DpFairRanking,
        summary="exact DCG-optimal DP (same optimum as the ILP, far faster)",
    )


_register_builtins()
