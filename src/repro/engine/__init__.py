"""repro.engine — the unified serving facade.

One session object, :class:`RankingEngine`, owns the process pool, the
kernel caches, the decode-crossover configuration and a measured-cost
scheduler model for its lifetime, and serves the whole algorithm zoo
through a string-keyed registry:

>>> import numpy as np
>>> from repro.engine import RankingEngine
>>> from repro import FairRankingProblem, GroupAssignment
>>> groups = GroupAssignment(["a", "a", "a", "b", "b", "b"])
>>> problem = FairRankingProblem.from_scores(
...     np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4]), groups
... )
>>> from repro.engine import RankingRequest
>>> with RankingEngine(n_jobs=1) as engine:
...     single = engine.rank("mallows", problem, seed=0, theta=1.0)
...     streamed = sorted(
...         engine.rank_many(
...             [
...                 ("dp", problem),
...                 RankingRequest("mallows", problem, params={"theta": 1.0}),
...             ],
...             seed=1,
...         ),
...         key=lambda r: r.index,
...     )
>>> len(single.ranking), [r.algorithm for r in streamed]
(6, ['dp', 'mallows'])

Module map
----------
* :mod:`repro.engine.registry` — ``register_algorithm`` /
  ``make_algorithm`` and the built-in zoo (``mallows``, ``gmm``,
  ``detconstsort``, ``ipf``, ``binary-ipf``, ``ilp``, ``dp``);
* :mod:`repro.engine.core` — :class:`RankingEngine`,
  :class:`EngineConfig`, the request/response dataclasses,
  :func:`responses_digest`;
* :mod:`repro.engine.costs` — :class:`CostModel`, the measured-wall-time
  feedback that replaces static dispatch-weight guesses.

``rank_many`` yields responses **as-completed** while staying
byte-identical to the serial loop for every ``n_jobs`` — see the
determinism contract in :mod:`repro.engine.core`.
"""

from repro.engine.core import (
    EngineConfig,
    EngineStats,
    RankingEngine,
    RankingRequest,
    RankingResponse,
    responses_digest,
)
from repro.engine.costs import (
    DEFAULT_COSTS,
    CostModel,
    kind_from_label,
    kind_label,
    load_bench_cost_tables,
)
from repro.engine.registry import (
    AlgorithmSpec,
    algorithm_names,
    algorithm_spec,
    iter_algorithm_specs,
    make_algorithm,
    register_algorithm,
    unregister_algorithm,
)

__all__ = [
    "AlgorithmSpec",
    "CostModel",
    "DEFAULT_COSTS",
    "EngineConfig",
    "EngineStats",
    "RankingEngine",
    "RankingRequest",
    "RankingResponse",
    "algorithm_names",
    "algorithm_spec",
    "iter_algorithm_specs",
    "kind_from_label",
    "kind_label",
    "load_bench_cost_tables",
    "make_algorithm",
    "register_algorithm",
    "responses_digest",
    "unregister_algorithm",
]
