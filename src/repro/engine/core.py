"""The serving session: :class:`RankingEngine` and its request/response types.

Design
------
The experiments harness grew all the throughput machinery — batched
kernels, a shared process pool, LRU kernel caches, a work scheduler — but
reached it only through experiment configs.  ``RankingEngine`` is the
library-user surface over the same machinery: a session object that owns

* a :class:`~repro.batch.schedule.WorkerPool` handle (its ``n_jobs``
  budget resolves onto the shared per-count executors),
* a private :class:`~repro.batch.cache.KernelCache` (installed as the
  active cache around every request, so memoized bound matrices and
  position marginals — and their hit/miss counters — are session-scoped),
* the Fenwick/chunked decode-crossover override for large-``n`` sampling,
* a :class:`~repro.engine.costs.CostModel` that learns measured per-kind
  unit wall-times and feeds them back as dispatch weights

for its lifetime, and exposes the whole algorithm zoo through the
string-keyed registry (:mod:`repro.engine.registry`).

Determinism contract
--------------------
:meth:`RankingEngine.rank_many` flattens heterogeneous requests into
:class:`~repro.batch.schedule.WorkUnit`\\ s on the shared scheduler and
yields :class:`RankingResponse`\\ s **as they complete**.  Each request's
randomness derives from its own :class:`~numpy.random.SeedSequence` child
(spawned by submission index from the call's ``seed``, or taken from the
request), so request ``i``'s ranking is a pure function of
``(algorithm, params, problem, seed_i)`` — byte-identical for every
``n_jobs``, in whatever order the responses arrive.  Only arrival *order*
may differ; :func:`responses_digest` (which sorts by submission index) is
the one-line check.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.algorithms.base import FairRankingAlgorithm, FairRankingProblem
from repro.batch.cache import CacheStats, KernelCache, use_cache
from repro.batch.parallel import resolve_n_jobs
from repro.batch.schedule import WorkerPool, WorkUnit, iter_units
from repro.engine.costs import CostModel, load_bench_cost_tables
from repro.faults.policy import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.faults.supervisor import FaultCounters
from repro.engine.registry import algorithm_spec, make_algorithm
from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, spawn_seed_sequences


@dataclass(frozen=True)
class EngineConfig:
    """Every session knob in one place.

    Consolidates what used to be scattered: ``n_jobs`` on four experiment
    configs, bare ``pool`` handles, process-global cache invalidation, and
    :func:`~repro.mallows.sampling.set_decode_crossover`.

    Attributes
    ----------
    n_jobs:
        Worker processes for :meth:`RankingEngine.rank_many` and the
        experiment pipeline (``-1`` = all cores).  Output is byte-identical
        for every value.
    cache_max_entries:
        LRU budget of the session's :class:`~repro.batch.cache.KernelCache`
        (per table: bound matrices / position marginals).
    decode_crossover:
        Override for the Fenwick decode dispatch threshold applied around
        the session's requests (``None`` keeps the library default).  Speed
        only — the decodes agree bit for bit.
    cost_smoothing:
        EWMA smoothing of the session's measured-cost model.
    retry:
        Crash-recovery budget for the session's pooled work (``None`` =
        :data:`~repro.faults.policy.DEFAULT_RETRY_POLICY`: bounded
        retries, then degrade inline).  Retries resubmit units with
        their original seeds, so recovery never changes a digest.
    """

    n_jobs: int = 1
    cache_max_entries: int = 128
    decode_crossover: int | None = None
    cost_smoothing: float = 0.5
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        resolve_n_jobs(self.n_jobs)  # validate early (raises on 0, -2, …)
        if self.cache_max_entries < 1:
            raise ValueError(
                f"cache_max_entries must be >= 1, got {self.cache_max_entries}"
            )
        if self.decode_crossover is not None and self.decode_crossover < 1:
            raise ValueError(
                f"decode_crossover must be >= 1, got {self.decode_crossover}"
            )


@dataclass(frozen=True)
class RankingRequest:
    """One ranking request: an algorithm name plus its problem.

    Attributes
    ----------
    algorithm:
        Registry name (or alias), e.g. ``"mallows"``, ``"dp"``.
    problem:
        The :class:`~repro.algorithms.base.FairRankingProblem` to serve.
    params:
        Constructor parameters for the algorithm (e.g. ``theta``,
        ``n_samples``, ``noise_sigma``); must be picklable.
    seed:
        Per-request seed override.  ``None`` (default) derives the
        request's :class:`~numpy.random.SeedSequence` child from the
        ``rank_many`` call's seed by submission index.  An ``int`` or
        ``SeedSequence`` pins the request's stream regardless of batch
        composition; a ``Generator`` is consumed for one child at
        submission time (in submission order, so determinism is preserved
        for every ``n_jobs``).
    request_id:
        Caller's correlation id, echoed on the response (defaults to the
        submission index).
    """

    algorithm: str
    problem: FairRankingProblem
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: SeedLike = None
    request_id: Any = None


@dataclass(frozen=True)
class RankingResponse:
    """One served ranking.

    Attributes
    ----------
    request_id:
        The request's correlation id (submission index unless overridden).
    index:
        Submission index within the ``rank_many`` batch (0 for
        :meth:`RankingEngine.rank`).
    algorithm:
        Canonical registry name that served the request.
    ranking:
        The produced :class:`~repro.rankings.permutation.Ranking`.
    metadata:
        The algorithm's diagnostics (plus ``algorithm_label``, the
        instance's display name).
    seconds:
        Measured compute wall-time of this request, clocked in the process
        that executed it.
    """

    request_id: Any
    index: int
    algorithm: str
    ranking: Ranking
    metadata: dict[str, Any]
    seconds: float


@dataclass(frozen=True)
class EngineStats:
    """Counters of one engine session (see :meth:`RankingEngine.stats`).

    ``utilization`` is busy-seconds over wall-seconds × workers for the
    session's ``rank_many`` streams: 1.0 means every worker computed the
    whole time, values near ``1 / n_jobs`` mean the pool mostly idled.
    ``cache`` counts parent-process kernel-cache traffic (pool children
    keep their own process-wide caches).
    """

    requests_total: int
    batches_total: int
    busy_seconds: float
    wall_seconds: float
    n_jobs: int
    cache: CacheStats
    cost_table: dict[str, dict[str, float]]
    #: Crash-recovery tallies for the session's pooled work (see
    #: :meth:`repro.faults.FaultCounters.snapshot`) — all zero on a
    #: fault-free run.
    faults: dict[str, int | float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Pool busy fraction over the session's streamed batches."""
        denominator = self.wall_seconds * max(1, self.n_jobs)
        if denominator <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / denominator)

    def summary(self) -> str:
        """One-line human-readable rendering (used in benchmark reports)."""
        text = (
            f"{self.requests_total} requests in {self.batches_total} "
            f"batches, busy {self.busy_seconds:.2f}s / wall "
            f"{self.wall_seconds:.2f}s on {self.n_jobs} worker(s) "
            f"(utilization {self.utilization:.0%}); cache: "
            f"{self.cache.summary()}"
        )
        if any(value for value in self.faults.values()):
            recovered = (
                f"{self.faults.get('crash_faults', 0)} crash fault(s), "
                f"{self.faults.get('rebuilds', 0)} rebuild(s), "
                f"{self.faults.get('retried_units', 0)} retried / "
                f"{self.faults.get('degraded_units', 0)} degraded / "
                f"{self.faults.get('exhausted_units', 0)} exhausted unit(s)"
            )
            text += f"; faults: {recovered}"
        return text


def _as_request(obj: object, index: int) -> RankingRequest:
    """Coerce a ``rank_many`` element: a request, or ``(name, problem)``."""
    if isinstance(obj, RankingRequest):
        return obj
    if (
        isinstance(obj, tuple)
        and len(obj) == 2
        and isinstance(obj[0], str)
        and isinstance(obj[1], FairRankingProblem)
    ):
        return RankingRequest(algorithm=obj[0], problem=obj[1])
    raise TypeError(
        f"request {index} must be a RankingRequest or a "
        f"(algorithm_name, problem) tuple, got {type(obj).__name__}"
    )


def _request_seed(
    request: RankingRequest, fallback: np.random.SeedSequence
) -> np.random.SeedSequence:
    """The request's SeedSequence child (see :class:`RankingRequest`)."""
    seed = request.seed
    if seed is None:
        return fallback
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return spawn_seed_sequences(seed, 1)[0]
    return np.random.SeedSequence(int(seed))


def _rank_unit(
    seed: np.random.SeedSequence | None,
    name: str,
    params: tuple[tuple[str, Any], ...],
    problem: FairRankingProblem,
    crossover: int | None,
) -> tuple[Ranking, dict[str, Any]]:
    """Work-unit adapter for one request (pickled to pool workers).

    The output is a pure function of ``(name, params, problem, seed)`` —
    the decode-crossover override only moves work between two bit-identical
    decode paths — which is what lets the scheduler run requests anywhere.
    """
    from repro.mallows.sampling import decode_override

    algorithm = make_algorithm(name, **dict(params))
    with decode_override(crossover):
        result = algorithm.rank(problem, seed=seed)
    metadata = dict(result.metadata)
    metadata.setdefault("algorithm_label", result.algorithm)
    return result.ranking, metadata


def _rank_unit_guarded(
    seed: np.random.SeedSequence | None,
    name: str,
    params: tuple[tuple[str, Any], ...],
    problem: FairRankingProblem,
    crossover: int | None,
) -> tuple[bool, Any]:
    """:func:`_rank_unit` with per-request error capture.

    Returns ``(True, (ranking, metadata))`` on success and
    ``(False, exception)`` on failure, so one poisoned request in a
    coalesced batch surfaces to *its* waiter instead of tearing down the
    whole stream (the serving tier's isolation requirement — see
    :meth:`RankingEngine.rank_many_submit`).  Exceptions that cannot
    survive the trip back through the pool's pickler are downgraded to a
    picklable ``RuntimeError`` carrying their repr.
    """
    try:
        return True, _rank_unit(seed, name, params, problem, crossover)
    except Exception as exc:
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return False, exc


def responses_digest(responses: Iterable[RankingResponse]) -> str:
    """SHA-256 fingerprint of a response set, *independent of arrival
    order* (responses are hashed by submission index).

    Two ``rank_many`` runs over the same requests must digest identically
    for every ``n_jobs`` — the engine's byte-equality contract, asserted by
    the CI smoke lane and ``benchmarks/bench_engine.py``.
    """
    h = hashlib.sha256()
    for response in sorted(responses, key=lambda r: r.index):
        h.update(str(response.index).encode("utf-8"))
        h.update(b"\x00")
        h.update(response.algorithm.encode("utf-8"))
        h.update(b"\x00")
        h.update(np.ascontiguousarray(response.ranking.order, dtype=np.int64).tobytes())
        h.update(b"\x00")
    return h.hexdigest()


class RankingEngine:
    """A serving session over the fair-ranking algorithm zoo.

    Parameters
    ----------
    config:
        An :class:`EngineConfig`; keyword overrides may be passed instead
        of (or on top of) it, e.g. ``RankingEngine(n_jobs=4)``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import FairRankingProblem, GroupAssignment, RankingEngine
    >>> groups = GroupAssignment(["a", "a", "a", "b", "b", "b"])
    >>> problem = FairRankingProblem.from_scores(
    ...     np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4]), groups
    ... )
    >>> engine = RankingEngine(n_jobs=1)
    >>> response = engine.rank(
    ...     "mallows", problem, seed=0, theta=1.0, n_samples=15
    ... )
    >>> len(response.ranking)
    6
    >>> responses = list(
    ...     engine.rank_many(
    ...         [
    ...             RankingRequest("mallows", problem, params={"theta": 1.0}),
    ...             ("detconstsort", problem),
    ...         ],
    ...         seed=7,
    ...     )
    ... )
    >>> sorted(r.algorithm for r in responses)
    ['detconstsort', 'mallows']

    The engine is usable as a context manager; :meth:`close` drops the
    session cache and cost model (the shared worker processes stay up for
    other sessions — :func:`repro.batch.shutdown_workers` tears those
    down).
    """

    def __init__(
        self, config: EngineConfig | None = None, **overrides: Any
    ) -> None:
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self._config = config
        self._faults = FaultCounters()
        # The session's pool handle carries its retry policy and aims
        # recovery telemetry at the session tally, so pipelines scheduled
        # through `engine.pool` surface their recoveries in stats() too.
        self._pool = WorkerPool(
            config.n_jobs, policy=config.retry, counters=self._faults
        )
        self._cache = KernelCache(config.cache_max_entries)
        self._costs = CostModel(config.cost_smoothing)
        self._requests_total = 0
        self._batches_total = 0
        self._busy_seconds = 0.0
        self._wall_seconds = 0.0
        self._closed = False

    # -- session plumbing -----------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        """The session's immutable configuration."""
        return self._config

    @property
    def pool(self) -> WorkerPool:
        """The session's scheduler handle — thread it into experiment
        configs to funnel their work units through this session's pool."""
        return self._pool

    @property
    def cache(self) -> KernelCache:
        """The session-owned kernel cache."""
        return self._cache

    @property
    def costs(self) -> CostModel:
        """The session's measured-cost model (dispatch-weight feedback)."""
        return self._costs

    @property
    def n_jobs(self) -> int:
        """The session's worker budget (as configured; ``-1`` = all cores)."""
        return self._config.n_jobs

    @property
    def retry_policy(self) -> RetryPolicy:
        """The session's effective crash-recovery budget (the configured
        one, or the scheduler default)."""
        retry = self._config.retry
        return DEFAULT_RETRY_POLICY if retry is None else retry

    @property
    def fault_counters(self) -> FaultCounters:
        """The session's live crash-recovery tally (snapshot in
        :meth:`stats`)."""
        return self._faults

    def __enter__(self) -> "RankingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """End the session: drop its cache and cost model.

        Further requests raise.  The shared worker processes are *not*
        killed — they are pooled across sessions; call
        :func:`repro.batch.shutdown_workers` to tear them down.
        """
        self._closed = True
        self._cache.clear()
        self._costs.clear()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("this RankingEngine session is closed")

    def warm_up(self) -> "RankingEngine":
        """Spin up the session's worker processes ahead of traffic (they
        are otherwise forked lazily on the first pooled batch); returns
        ``self`` for chaining."""
        self._require_open()
        n_jobs = resolve_n_jobs(self._config.n_jobs)
        if n_jobs > 1:
            from repro.batch.parallel import _get_executor

            executor = _get_executor(n_jobs)
            # One no-op per worker, submitted together: every process forks
            # and imports before real requests arrive.
            list(executor.map(_noop, range(n_jobs)))
        return self

    # -- the serving surface --------------------------------------------------

    def algorithm(self, name: str, /, **params: Any) -> FairRankingAlgorithm:
        """Construct algorithm ``name`` from the registry (no deprecation
        warning — this is the sanctioned path; see
        :func:`repro.engine.make_algorithm`)."""
        self._require_open()
        return make_algorithm(name, **params)

    def rank(
        self,
        request: "RankingRequest | str",
        problem: FairRankingProblem | None = None,
        *,
        seed: SeedLike = None,
        **params: Any,
    ) -> RankingResponse:
        """Serve one request in-process.

        Accepts either a prebuilt :class:`RankingRequest`, or the inline
        form ``engine.rank("mallows", problem, seed=0, theta=1.0)``.  The
        seed is passed to the algorithm exactly as given, so the ranking is
        byte-identical to the legacy
        ``MallowsFairRanking(theta=1.0).rank(problem, seed=0)`` path.
        """
        self._require_open()
        if isinstance(request, RankingRequest):
            if problem is not None or params:
                raise TypeError(
                    "pass either a RankingRequest or "
                    "(name, problem, **params), not both"
                )
            name, problem, request_params, request_seed, request_id = (
                request.algorithm,
                request.problem,
                dict(request.params),
                request.seed if request.seed is not None else seed,
                request.request_id,
            )
        else:
            if problem is None:
                raise TypeError("rank(name, problem, ...) requires a problem")
            name, request_params, request_seed, request_id = (
                request,
                params,
                seed,
                None,
            )
        spec = algorithm_spec(name)
        t0 = time.perf_counter()
        with self._session_context():
            algorithm = make_algorithm(spec.name, **request_params)
            result = algorithm.rank(problem, seed=request_seed)
        seconds = time.perf_counter() - t0
        self._requests_total += 1
        self._costs.observe(("rank", spec.name, problem.n_items), seconds)
        metadata = dict(result.metadata)
        metadata.setdefault("algorithm_label", result.algorithm)
        return RankingResponse(
            request_id=request_id if request_id is not None else 0,
            index=0,
            algorithm=spec.name,
            ranking=result.ranking,
            metadata=metadata,
            seconds=seconds,
        )

    def rank_many(
        self,
        requests: Sequence["RankingRequest | tuple[str, FairRankingProblem]"],
        *,
        seed: SeedLike = None,
        n_jobs: int | None = None,
    ) -> Iterator[RankingResponse]:
        """Serve a heterogeneous batch, yielding responses **as-completed**.

        The batch flattens into one :class:`~repro.batch.schedule.WorkUnit`
        per request on the shared scheduler, dispatched by the session's
        measured per-kind costs (falling back to uniform weights for kinds
        never seen).  Responses stream back the moment each request
        finishes, so a consumer can deliver result ``17`` while request
        ``3`` is still solving; sort by ``response.index`` (or use
        :func:`responses_digest`) for submission order.

        Parameters
        ----------
        requests:
            :class:`RankingRequest` objects or ``(name, problem)`` tuples.
        seed:
            Root of the batch's seed tree: request ``i`` gets child ``i``
            of ``SeedSequence(seed)`` unless it carries its own seed.
            Identical ``(requests, seed)`` → identical responses for every
            ``n_jobs``.
        n_jobs:
            Per-call worker override (defaults to the session's budget).
        """
        self._require_open()
        resolved = [_as_request(obj, i) for i, obj in enumerate(requests)]
        units = self._build_units(resolved, seed, fn=_rank_unit)
        return self._stream(resolved, units, n_jobs)

    def _build_units(
        self,
        resolved: list[RankingRequest],
        seed: SeedLike,
        *,
        fn: Callable[..., Any],
    ) -> list[WorkUnit]:
        """One :class:`WorkUnit` per resolved request: seed child by
        submission index, dispatch weight from the session's cost model
        (so a warm-started table shapes the very first batch)."""
        children = spawn_seed_sequences(seed, len(resolved))
        units: list[WorkUnit] = []
        for i, request in enumerate(resolved):
            spec = algorithm_spec(request.algorithm)
            kind = ("rank", spec.name, request.problem.n_items)
            units.append(
                WorkUnit(
                    key=i,
                    fn=fn,
                    seed=_request_seed(request, children[i]),
                    payload=(
                        spec.name,
                        tuple(sorted(request.params.items())),
                        request.problem,
                        self._config.decode_crossover,
                    ),
                    weight=self._costs.weight(kind, default=1.0),
                    kind=kind,
                )
            )
        return units

    def rank_many_submit(
        self,
        requests: Sequence["RankingRequest | tuple[str, FairRankingProblem]"],
        *,
        seed: SeedLike = None,
        n_jobs: int | None = None,
        on_response: Callable[[RankingResponse], None],
        on_error: Callable[[int, RankingRequest, Exception], None] | None = None,
        retry: RetryPolicy | None = None,
    ) -> int:
        """Blocking callback drain of a batch — the async-friendly twin of
        :meth:`rank_many`, built for a serving tier that runs the drain in
        a worker thread and marshals each delivery onto its event loop.

        Two differences from iterating :meth:`rank_many`:

        * delivery is *pushed*: ``on_response(response)`` fires in this
          thread as each request completes (never with the session cache
          installed, so a callback's own kernel work stays out of the
          session's counters);
        * failures are *per-request*: each unit runs guarded in whichever
          process executes it, so an algorithm raising poisons only its
          own request — ``on_error(index, request, exception)`` fires for
          exactly the affected submission and the rest of the batch keeps
          streaming.  Without an ``on_error`` handler the first failure
          re-raises (cancelling still-queued units), matching
          :meth:`rank_many`.

        Worker *crashes* are recovered under ``retry`` (default: the
        session's policy) before they ever surface; only a recovery that
        exhausts its budget under ``on_exhausted="raise"`` becomes a
        scheduler-level :class:`~repro.exceptions.PoolRecoveryExhausted`.
        Scheduler-level failures (an exhausted pool, a corrupted stream)
        are not per-request and always raise.  Returns the number of
        deliveries (responses plus errors).  Seeds, weights and the
        byte-equality contract are identical to :meth:`rank_many` —
        responses carry the same rankings in whatever order they finish.
        """
        self._require_open()
        resolved = [_as_request(obj, i) for i, obj in enumerate(requests)]
        units = self._build_units(resolved, seed, fn=_rank_unit_guarded)
        jobs = self._config.n_jobs if n_jobs is None else n_jobs
        self._batches_total += 1
        delivered = 0
        t0 = time.perf_counter()
        stream = iter_units(
            units,
            n_jobs=jobs,
            policy=self._config.retry if retry is None else retry,
            counters=self._faults,
        )
        try:
            while True:
                with use_cache(self._cache):
                    try:
                        done = next(stream)
                    except StopIteration:
                        break
                index = done.key
                request = resolved[index]
                ok, payload = done.result
                self._busy_seconds += done.seconds
                delivered += 1
                if ok:
                    ranking, metadata = payload
                    self._requests_total += 1
                    self._costs.observe(done.kind, done.seconds)
                    on_response(
                        RankingResponse(
                            request_id=(
                                request.request_id
                                if request.request_id is not None
                                else index
                            ),
                            index=index,
                            algorithm=done.kind[1],
                            ranking=ranking,
                            metadata=metadata,
                            seconds=done.seconds,
                        )
                    )
                else:
                    if on_error is None:
                        raise payload
                    on_error(index, request, payload)
        finally:
            stream.close()  # cancel still-queued units on early abandon
            self._wall_seconds += time.perf_counter() - t0
        return delivered

    def warm_start_costs(
        self,
        source: "Mapping[str, Mapping[str, float]] | str | Iterable[str]",
    ) -> int:
        """Seed the session's cost model from a persisted table; returns
        the number of kinds imported.

        ``source`` may be a jsonable cost table (the
        :meth:`~repro.engine.costs.CostModel.to_jsonable` rendering), one
        ``BENCH_*.json`` trajectory path, or an iterable of such paths
        (see :func:`~repro.engine.costs.load_bench_cost_tables`).  Kinds
        this session has already measured are never clobbered.  With a
        warm table, the *first* ``rank_many`` batch dispatches by
        measured seconds instead of uniform guesses, and the serving
        tier's admission control prices requests realistically before a
        single response has been observed.
        """
        self._require_open()
        if isinstance(source, Mapping):
            table = source
        elif isinstance(source, (str, bytes)) or hasattr(source, "__fspath__"):
            table = load_bench_cost_tables(source)
        else:
            table = load_bench_cost_tables(*source)
        return self._costs.merge_jsonable(table)

    def _stream(
        self,
        requests: list[RankingRequest],
        units: list[WorkUnit],
        n_jobs: int | None,
    ) -> Iterator[RankingResponse]:
        """Generator body of :meth:`rank_many` (split out so argument
        validation in ``rank_many`` happens eagerly at call time)."""
        self._batches_total += 1
        jobs = self._config.n_jobs if n_jobs is None else n_jobs
        t0 = time.perf_counter()
        stream = iter_units(
            units,
            n_jobs=jobs,
            policy=self._config.retry,
            counters=self._faults,
        )
        try:
            while True:
                # The session cache is installed only while the scheduler
                # actually computes (inline units run inside next()); it
                # must NOT stay installed across the yield — the consumer's
                # own kernel work between responses belongs to whatever
                # cache *it* has active, and interleaved streams from two
                # engines would otherwise restore in non-LIFO order.  The
                # decode-crossover override is likewise applied inside each
                # _rank_unit, in whichever process executes it (a
                # parent-side override would be invisible to pool workers).
                with use_cache(self._cache):
                    try:
                        done = next(stream)
                    except StopIteration:
                        break
                index = done.key
                request = requests[index]
                ranking, metadata = done.result
                self._requests_total += 1
                self._busy_seconds += done.seconds
                self._costs.observe(done.kind, done.seconds)
                yield RankingResponse(
                    request_id=(
                        request.request_id
                        if request.request_id is not None
                        else index
                    ),
                    index=index,
                    algorithm=done.kind[1],
                    ranking=ranking,
                    metadata=metadata,
                    seconds=done.seconds,
                )
        finally:
            stream.close()  # cancel still-queued units on early abandon
            self._wall_seconds += time.perf_counter() - t0

    # -- introspection --------------------------------------------------------

    def stats(self) -> EngineStats:
        """Counters of the session so far: request/batch totals, busy vs
        wall time (pool utilization), the session cache's hit/miss
        counters, and the learned cost table."""
        return EngineStats(
            requests_total=self._requests_total,
            batches_total=self._batches_total,
            busy_seconds=self._busy_seconds,
            wall_seconds=self._wall_seconds,
            n_jobs=resolve_n_jobs(self._config.n_jobs),
            cache=self._cache.stats(),
            cost_table=self._costs.to_jsonable(),
            faults=self._faults.snapshot(),
        )

    @contextmanager
    def _session_context(self) -> Iterator[None]:
        """The in-process installation of the session's owned state: its
        kernel cache, and the decode-crossover override (both restored on
        exit).  Used by :meth:`rank`; the streamed path installs the cache
        per scheduler resumption instead (see :meth:`_stream`)."""
        from repro.mallows.sampling import decode_override

        with use_cache(self._cache), decode_override(
            self._config.decode_crossover
        ):
            yield

    def __repr__(self) -> str:
        return (
            f"RankingEngine(n_jobs={self._config.n_jobs}, "
            f"requests={self._requests_total}, "
            f"closed={self._closed})"
        )


def _noop(index: int) -> int:
    """Warm-up probe shipped to each worker (module-level: picklable)."""
    return index
