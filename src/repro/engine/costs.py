"""Measured-cost feedback for the work scheduler.

The scheduler dispatches :class:`~repro.batch.schedule.WorkUnit`\\ s
longest-processing-time-first, but until a unit kind has actually run, its
``weight`` is a static guess (``n_samples`` here, subsample size there).
:class:`CostModel` closes the loop: every completed unit reports its
measured compute wall-time (clocked in the executing process by
:func:`~repro.batch.schedule.iter_units`), the model folds it into an
exponentially-weighted moving average per ``unit.kind``, and the next
schedule of the same kinds is dispatched by *seconds observed* instead of
by guesswork.

Three consumers:

* :class:`repro.engine.RankingEngine` owns one model per session —
  repeated ``rank_many`` calls over similar request mixes converge onto
  measured dispatch order;
* :func:`repro.experiments.runner.run_all` observes into a process-wide
  :data:`DEFAULT_COSTS` table, so a second pipeline run in the same process
  schedules from the first run's measurements, and benchmark runs persist
  the table into the ``BENCH_*.json`` perf trajectory;
* the async serving tier (:mod:`repro.serve`) *prices admission* by the
  same table: a request's predicted cost is its kind's EWMA seconds, so a
  warm-started model (see :func:`load_bench_cost_tables` and
  :meth:`CostModel.merge_jsonable`) shapes both dispatch order and
  admit/queue/reject decisions from the very first batch.

Weights only shape the dispatch order, never the results: whatever the
model has (or has not) learned, output stays byte-identical.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import replace
from typing import Hashable, Iterable, Mapping

from repro.batch.schedule import WorkUnit


class CostModel:
    """EWMA of measured per-kind unit wall-times (thread-safe).

    Parameters
    ----------
    smoothing:
        Weight of the newest observation in the moving average,
        ``0 < smoothing <= 1``; ``1`` keeps only the latest measurement.
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.smoothing = float(smoothing)
        self._lock = threading.Lock()
        self._seconds: dict[Hashable, float] = {}
        self._observations: dict[Hashable, int] = {}

    def observe(self, kind: Hashable, seconds: float) -> None:
        """Fold one measured unit wall-time into ``kind``'s average.

        ``kind=None`` (a unit that opted out of learning) is ignored.
        """
        if kind is None:
            return
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        with self._lock:
            previous = self._seconds.get(kind)
            if previous is None:
                self._seconds[kind] = seconds
            else:
                self._seconds[kind] = (
                    self.smoothing * seconds + (1.0 - self.smoothing) * previous
                )
            self._observations[kind] = self._observations.get(kind, 0) + 1

    def weight(self, kind: Hashable, default: float = 1.0) -> float:
        """The measured dispatch weight for ``kind`` — its EWMA seconds —
        or ``default`` (the caller's static guess) when never observed."""
        if kind is None:
            return default
        with self._lock:
            seconds = self._seconds.get(kind)
        return default if seconds is None else seconds

    def known(self, kind: Hashable) -> bool:
        """Whether ``kind`` has at least one observation."""
        with self._lock:
            return kind in self._seconds

    def reweight(self, units: Iterable[WorkUnit]) -> list[WorkUnit]:
        """Copies of ``units`` with every *observed* kind's weight replaced
        by its measured seconds (unobserved kinds keep their static guess).

        Dispatch order is the only thing that changes — results are a pure
        function of each unit's ``(fn, seed, payload)``.
        """
        out: list[WorkUnit] = []
        for unit in units:
            if unit.kind is not None and self.known(unit.kind):
                out.append(replace(unit, weight=self.weight(unit.kind)))
            else:
                out.append(unit)
        return out

    def snapshot(self) -> dict[Hashable, tuple[float, int]]:
        """``{kind: (ewma_seconds, n_observations)}`` at this instant."""
        with self._lock:
            return {
                kind: (self._seconds[kind], self._observations[kind])
                for kind in self._seconds
            }

    def to_jsonable(self) -> dict[str, dict[str, float]]:
        """The cost table with stringified kinds, for ``BENCH_*.json``
        persistence (kinds are tuples; JSON keys must be strings)."""
        return {
            kind_label(kind): {
                "ewma_seconds": seconds,
                "observations": count,
            }
            for kind, (seconds, count) in sorted(
                self.snapshot().items(), key=lambda item: kind_label(item[0])
            )
        }

    def merge(self, table: Mapping[Hashable, tuple[float, int]]) -> int:
        """Seed the model from a prior :meth:`snapshot` (e.g. a persisted
        trajectory); returns the number of kinds imported.

        A *learned* entry always wins over an import: merging never
        clobbers an EWMA this model has measured itself.  Entries that
        carry no usable measurement are skipped rather than imported —
        a non-positive observation count (a zero-count entry is a row
        without a single measurement behind it, so averaging against it
        would be a divide-by-zero in disguise), or a negative/non-finite
        EWMA.
        """
        imported = 0
        with self._lock:
            # Sorted by label so the table's insertion order (visible in
            # snapshot/to_jsonable renderings) is input-order independent.
            for kind, (seconds, count) in sorted(
                table.items(), key=lambda item: kind_label(item[0])
            ):
                seconds = float(seconds)
                count = int(count)
                if count <= 0 or not math.isfinite(seconds) or seconds < 0.0:
                    continue
                if kind in self._seconds:
                    continue
                self._seconds[kind] = seconds
                self._observations[kind] = count
                imported += 1
        return imported

    def merge_jsonable(self, table: Mapping[str, Mapping[str, float]]) -> int:
        """Seed the model from a :meth:`to_jsonable` rendering (the format
        persisted into ``BENCH_*.json``); returns the kinds imported.

        String keys are parsed back into tuple kinds via
        :func:`kind_from_label`, so a table round-trips:
        ``model.merge_jsonable(model.to_jsonable())`` restores every tuple
        kind exactly.  Rows missing ``ewma_seconds``/``observations`` (or
        carrying junk) are skipped by the same rules as :meth:`merge`.
        """
        parsed: dict[Hashable, tuple[float, int]] = {}
        for label, entry in sorted(table.items()):
            try:
                seconds = float(entry["ewma_seconds"])
                count = int(entry["observations"])
            except (KeyError, TypeError, ValueError):
                continue
            parsed[kind_from_label(label)] = (seconds, count)
        return self.merge(parsed)

    def clear(self) -> None:
        """Forget every observation."""
        with self._lock:
            self._seconds.clear()
            self._observations.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._seconds)


def kind_label(kind: Hashable) -> str:
    """Human/JSON-friendly rendering of a unit kind (tuples join on
    ``":"``: ``("rank", "dp", 150)`` → ``"rank:dp:150"``)."""
    if isinstance(kind, tuple):
        return ":".join(str(part) for part in kind)
    return str(kind)


def kind_from_label(label: str) -> Hashable:
    """Inverse of :func:`kind_label` for tuple kinds: ``"rank:dp:150"`` →
    ``("rank", "dp", 150)``.

    Every label parses to a tuple (a single token becomes a 1-tuple),
    because all the kinds the engine and the experiment pipeline emit are
    tuples; all-digit parts come back as ``int`` so the engine's
    ``("rank", name, n_items)`` kinds round-trip exactly.  Non-tuple
    string kinds do not round-trip — they were never emitted by this
    package.
    """
    return tuple(
        int(part) if part.isdigit() else part for part in label.split(":")
    )


def load_bench_cost_tables(*paths: "str | os.PathLike[str]") -> dict[str, dict[str, float]]:
    """Collect every persisted ``cost_table`` from ``BENCH_*.json``
    trajectory files into one jsonable table.

    The trajectory files are the ``--json`` dumps of the benchmark suite:
    a list of ``reports`` whose ``metrics`` mappings may carry a
    ``cost_table`` (the :meth:`CostModel.to_jsonable` rendering recorded
    by the engine/scheduler benchmarks).  When several files (or several
    reports) price the same kind, the entry with the most observations
    wins — the better-estimated EWMA.  Missing files raise
    ``FileNotFoundError``; files without any cost table contribute
    nothing.  Feed the result to :meth:`CostModel.merge_jsonable` (or
    :meth:`repro.engine.RankingEngine.warm_start_costs`) to warm-start a
    model before its first batch.
    """
    merged: dict[str, dict[str, float]] = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        for report in payload.get("reports", []) or []:
            metrics = report.get("metrics") or {}
            table = metrics.get("cost_table")
            if not isinstance(table, Mapping):
                continue
            for label, entry in sorted(table.items()):
                if not isinstance(entry, Mapping):
                    continue
                current = merged.get(label)
                if (
                    current is None
                    or entry.get("observations", 0)
                    > current.get("observations", 0)
                ):
                    merged[label] = dict(entry)
    return merged


#: Process-wide cost table the experiment pipeline feeds (engine sessions
#: own private models instead).
DEFAULT_COSTS = CostModel()
