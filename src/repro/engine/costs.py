"""Measured-cost feedback for the work scheduler.

The scheduler dispatches :class:`~repro.batch.schedule.WorkUnit`\\ s
longest-processing-time-first, but until a unit kind has actually run, its
``weight`` is a static guess (``n_samples`` here, subsample size there).
:class:`CostModel` closes the loop: every completed unit reports its
measured compute wall-time (clocked in the executing process by
:func:`~repro.batch.schedule.iter_units`), the model folds it into an
exponentially-weighted moving average per ``unit.kind``, and the next
schedule of the same kinds is dispatched by *seconds observed* instead of
by guesswork.

Two consumers:

* :class:`repro.engine.RankingEngine` owns one model per session —
  repeated ``rank_many`` calls over similar request mixes converge onto
  measured dispatch order;
* :func:`repro.experiments.runner.run_all` observes into a process-wide
  :data:`DEFAULT_COSTS` table, so a second pipeline run in the same process
  schedules from the first run's measurements, and benchmark runs persist
  the table into the ``BENCH_*.json`` perf trajectory.

Weights only shape the dispatch order, never the results: whatever the
model has (or has not) learned, output stays byte-identical.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Hashable, Iterable, Mapping

from repro.batch.schedule import WorkUnit


class CostModel:
    """EWMA of measured per-kind unit wall-times (thread-safe).

    Parameters
    ----------
    smoothing:
        Weight of the newest observation in the moving average,
        ``0 < smoothing <= 1``; ``1`` keeps only the latest measurement.
    """

    def __init__(self, smoothing: float = 0.5):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.smoothing = float(smoothing)
        self._lock = threading.Lock()
        self._seconds: dict[Hashable, float] = {}
        self._observations: dict[Hashable, int] = {}

    def observe(self, kind: Hashable, seconds: float) -> None:
        """Fold one measured unit wall-time into ``kind``'s average.

        ``kind=None`` (a unit that opted out of learning) is ignored.
        """
        if kind is None:
            return
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        with self._lock:
            previous = self._seconds.get(kind)
            if previous is None:
                self._seconds[kind] = seconds
            else:
                self._seconds[kind] = (
                    self.smoothing * seconds + (1.0 - self.smoothing) * previous
                )
            self._observations[kind] = self._observations.get(kind, 0) + 1

    def weight(self, kind: Hashable, default: float = 1.0) -> float:
        """The measured dispatch weight for ``kind`` — its EWMA seconds —
        or ``default`` (the caller's static guess) when never observed."""
        if kind is None:
            return default
        with self._lock:
            seconds = self._seconds.get(kind)
        return default if seconds is None else seconds

    def known(self, kind: Hashable) -> bool:
        """Whether ``kind`` has at least one observation."""
        with self._lock:
            return kind in self._seconds

    def reweight(self, units: Iterable[WorkUnit]) -> list[WorkUnit]:
        """Copies of ``units`` with every *observed* kind's weight replaced
        by its measured seconds (unobserved kinds keep their static guess).

        Dispatch order is the only thing that changes — results are a pure
        function of each unit's ``(fn, seed, payload)``.
        """
        out: list[WorkUnit] = []
        for unit in units:
            if unit.kind is not None and self.known(unit.kind):
                out.append(replace(unit, weight=self.weight(unit.kind)))
            else:
                out.append(unit)
        return out

    def snapshot(self) -> dict[Hashable, tuple[float, int]]:
        """``{kind: (ewma_seconds, n_observations)}`` at this instant."""
        with self._lock:
            return {
                kind: (self._seconds[kind], self._observations[kind])
                for kind in self._seconds
            }

    def to_jsonable(self) -> dict[str, dict[str, float]]:
        """The cost table with stringified kinds, for ``BENCH_*.json``
        persistence (kinds are tuples; JSON keys must be strings)."""
        return {
            _kind_label(kind): {
                "ewma_seconds": seconds,
                "observations": count,
            }
            for kind, (seconds, count) in sorted(
                self.snapshot().items(), key=lambda item: _kind_label(item[0])
            )
        }

    def merge(self, table: Mapping[Hashable, tuple[float, int]]) -> None:
        """Seed the model from a prior :meth:`snapshot` (e.g. a persisted
        trajectory); existing entries are kept in favour of the import."""
        with self._lock:
            for kind, (seconds, count) in table.items():
                self._seconds.setdefault(kind, float(seconds))
                self._observations.setdefault(kind, int(count))

    def clear(self) -> None:
        """Forget every observation."""
        with self._lock:
            self._seconds.clear()
            self._observations.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._seconds)


def _kind_label(kind: Hashable) -> str:
    """Human/JSON-friendly rendering of a unit kind."""
    if isinstance(kind, tuple):
        return ":".join(str(part) for part in kind)
    return str(kind)


#: Process-wide cost table the experiment pipeline feeds (engine sessions
#: own private models instead).
DEFAULT_COSTS = CostModel()
