"""Shared utilities: RNG coercion, validation, bootstrap CIs, ASCII tables."""

from repro.utils.rng import as_generator, spawn_generators, spawn_seed_sequences
from repro.utils.validation import (
    as_permutation_array,
    check_same_length,
    is_permutation,
)
from repro.utils.bootstrap import BootstrapResult, bootstrap_ci
from repro.utils.tables import format_series, format_table

__all__ = [
    "as_generator",
    "spawn_generators",
    "spawn_seed_sequences",
    "as_permutation_array",
    "check_same_length",
    "is_permutation",
    "BootstrapResult",
    "bootstrap_ci",
    "format_series",
    "format_table",
]
