"""Plain-text rendering of result tables and series.

The benchmark harness prints every reproduced figure as an ASCII series
(x-value, point estimate, confidence interval) and every table as an aligned
grid so that "the same rows/series the paper reports" are visible in the
benchmark output without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII grid."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(
    x: Sequence[object],
    series: Mapping[str, Sequence[object]],
    x_label: str = "x",
    title: str | None = None,
) -> str:
    """Render one or more named series sharing an x-axis as a table.

    ``series`` maps a series name (e.g. an algorithm) to its y-values; each
    y-value may be a float or a ``(estimate, low, high)`` triple, which is
    rendered as ``est [low, high]``.
    """
    headers = [x_label] + list(series.keys())
    columns = list(series.values())
    for name, col in series.items():
        if len(col) != len(x):
            raise ValueError(
                f"series {name!r} has {len(col)} values for {len(x)} x-points"
            )
    rows = []
    for i, xv in enumerate(x):
        rows.append([xv] + [col[i] for col in columns])
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    """Format one table cell; CI triples become ``est [lo, hi]``."""
    if isinstance(value, tuple) and len(value) == 3:
        est, low, high = value
        return f"{float(est):.4f} [{float(low):.4f}, {float(high):.4f}]"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
