"""Validation helpers shared across the library.

The central data type of the library is a permutation of ``0..n-1`` stored as
an integer NumPy array.  These helpers keep the validation logic (and the
error messages) in one place.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import InvalidPermutationError, LengthMismatchError


def is_permutation(values: Sequence[int] | np.ndarray) -> bool:
    """Return ``True`` iff ``values`` is a permutation of ``0..n-1``."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        return False
    if arr.size == 0:
        return True
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.issubdtype(arr.dtype, np.floating):
            return False
        if not np.all(arr == np.floor(arr)):
            return False
        arr = arr.astype(np.int64)
    n = arr.size
    seen = np.zeros(n, dtype=bool)
    if arr.min(initial=0) < 0 or arr.max(initial=-1) >= n:
        return False
    seen[arr] = True
    return bool(seen.all())


def as_permutation_array(
    values: Sequence[int] | np.ndarray, name: str = "permutation"
) -> np.ndarray:
    """Validate and convert ``values`` into an ``int64`` permutation array.

    Raises
    ------
    InvalidPermutationError
        If ``values`` is not a permutation of ``0..n-1``.
    """
    arr = np.asarray(values)
    if not is_permutation(arr):
        raise InvalidPermutationError(
            f"{name} must be a permutation of 0..n-1, got {arr!r}"
        )
    return arr.astype(np.int64, copy=True)


def check_same_length(a: np.ndarray, b: np.ndarray, what: str = "inputs") -> None:
    """Raise :class:`LengthMismatchError` unless ``a`` and ``b`` have equal length."""
    if len(a) != len(b):
        raise LengthMismatchError(
            f"{what} must have the same length, got {len(a)} and {len(b)}"
        )
