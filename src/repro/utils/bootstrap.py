"""Bootstrap confidence intervals.

The paper reports every experimental series with bootstrap confidence
intervals (``n = 1000`` resamples).  :func:`bootstrap_ci` implements the
percentile bootstrap for an arbitrary statistic, vectorized over resamples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate plus a percentile-bootstrap confidence interval.

    Attributes
    ----------
    estimate:
        The statistic evaluated on the full sample.
    low, high:
        Lower / upper endpoints of the confidence interval.
    confidence:
        The nominal coverage (e.g. ``0.95``).
    n_resamples:
        Number of bootstrap resamples used.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    @property
    def halfwidth(self) -> float:
        """Half the CI width — convenient for ``±`` style reporting."""
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.estimate:.4f} [{self.low:.4f}, {self.high:.4f}]"


def bootstrap_ci(
    data: Sequence[float] | np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: SeedLike = None,
) -> BootstrapResult:
    """Percentile bootstrap CI of ``statistic`` over ``data``.

    Parameters
    ----------
    data:
        1-D sample.
    statistic:
        Function mapping a 1-D array to a scalar.  When it is ``np.mean`` or
        ``np.median`` the resampling is vectorized over a 2-D resample matrix
        for speed; any other callable is applied per-resample.
    n_resamples:
        Number of bootstrap resamples (paper uses 1000).
    confidence:
        Nominal two-sided coverage in ``(0, 1)``.
    seed:
        RNG seed or generator.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"data must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")

    rng = as_generator(seed)
    estimate = float(statistic(arr))
    if arr.size == 1:
        # A single observation has no resampling variability.
        return BootstrapResult(estimate, estimate, estimate, confidence, n_resamples)

    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    resamples = arr[idx]
    if statistic is np.mean:
        stats = resamples.mean(axis=1)
    elif statistic is np.median:
        stats = np.median(resamples, axis=1)
    else:
        stats = np.array([statistic(row) for row in resamples], dtype=np.float64)

    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return BootstrapResult(estimate, float(low), float(high), confidence, n_resamples)
