"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes all three
into a ``Generator`` so that downstream code never touches global NumPy
random state and experiments are exactly reproducible from a single seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, a ``SeedSequence``,
        or an existing ``Generator`` (returned unchanged so that callers can
        thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Create ``n`` statistically independent child :class:`SeedSequence`\\ s.

    The light-weight sibling of :func:`spawn_generators`: a ``SeedSequence``
    is cheap to pickle, so trial-parallel runners ship one per trial to the
    worker processes and construct the ``Generator`` there.  Constructing a
    generator from child ``i`` gives exactly the same stream in every
    process, which is what makes trial fan-out byte-identical to the serial
    loop (see :func:`repro.batch.parallel.run_trials`).
    """
    if n < 0:
        raise ValueError(f"number of generators must be non-negative, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return list(seq.spawn(n))


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Used by experiment runners that repeat a trial many times: each repeat
    gets its own stream, so the repeats are independent yet the whole
    experiment is reproducible from one seed.
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, n)]
