"""Batched evaluation engine: many rankings as one array, one kernel call.

The Monte-Carlo experiments of the paper (Figs. 1-7, German Credit) all
reduce to "draw thousands of Mallows samples, score every sample, aggregate".
This subpackage provides the batched building blocks for that workload:

* :class:`~repro.batch.container.BatchRankings` — ``m`` rankings of ``n``
  items stored as a single ``(m, n)`` integer array with order and position
  views (see the module docstring of :mod:`repro.batch.container` for the
  array conventions);
* :mod:`repro.batch.kernels` — vectorized many-vs-one / many-vs-many Kendall
  tau, batched top-``k`` group counts, and the batched Two-Sided Infeasible
  Index / percentage of P-fair positions.

The scalar APIs in :mod:`repro.rankings.distances` and
:mod:`repro.fairness.infeasible_index` remain the reference semantics; every
kernel here is a drop-in vectorization of the corresponding scalar function
(same integers, same floats) and is tested for exact agreement.
"""

from repro.batch.container import BatchRankings, as_batch_orders
from repro.batch.kernels import (
    batch_count_inversions,
    batch_infeasible_breakdown,
    batch_infeasible_index,
    batch_kendall_tau,
    batch_kendall_tau_pairwise,
    batch_ndcg,
    batch_percent_fair,
    batch_prefix_group_counts,
    batch_topk_group_counts,
    batch_violation_masks,
    kendall_tau_matrix,
)

__all__ = [
    "BatchRankings",
    "as_batch_orders",
    "batch_count_inversions",
    "batch_infeasible_breakdown",
    "batch_infeasible_index",
    "batch_kendall_tau",
    "batch_kendall_tau_pairwise",
    "batch_ndcg",
    "batch_percent_fair",
    "batch_prefix_group_counts",
    "batch_topk_group_counts",
    "batch_violation_masks",
    "kendall_tau_matrix",
]
