"""Batched evaluation engine: many rankings as one array, one kernel call.

The Monte-Carlo experiments of the paper (Figs. 1-7, German Credit) all
reduce to "draw thousands of Mallows samples, score every sample, aggregate".
This subpackage provides the batched building blocks for that workload:

* :class:`~repro.batch.container.BatchRankings` — ``m`` rankings of ``n``
  items stored as a single ``(m, n)`` integer array with order and position
  views (see the module docstring of :mod:`repro.batch.container` for the
  array conventions);
* :mod:`repro.batch.kernels` — vectorized many-vs-one / many-vs-many
  distance kernels (Kendall tau, footrule, Spearman, Ulam, Cayley, Hamming,
  weighted Kendall tau), batched top-``k`` group counts and per-group
  exposure, and the batched Two-Sided Infeasible Index / percentage of
  P-fair positions / NDCG;
* :mod:`repro.batch.cache` — a process-wide LRU cache of per-constraint
  bound matrices and per-``(n, theta)`` Mallows position marginals, with
  hit/miss counters and explicit invalidation;
* :mod:`repro.batch.parallel` — the ``n_jobs`` process-pool fan-out in two
  sharding modes: by *row range* over an ``(m, n)`` sampling + scoring
  pipeline (Figs. 1/3/4) and by *trial* over arbitrary
  ``(trial_index, rng)`` experiment loops (Fig. 2, German Credit), both
  with per-shard RNG streams that keep every ``n_jobs`` value
  byte-identical under a fixed seed;
* :mod:`repro.batch.schedule` — the experiment-level scheduler on top:
  heterogeneous independent jobs (figure experiments, German Credit
  panels, per-panel repeats, per-delta trial blocks) flattened into one
  task graph of :class:`~repro.batch.schedule.WorkUnit`\\ s and interleaved
  through the single shared pool via a :class:`~repro.batch.schedule.WorkerPool`
  handle, with per-unit ``SeedSequence`` children keeping whole-pipeline
  output byte-identical for every ``n_jobs``.

The scalar APIs in :mod:`repro.rankings.distances`,
:mod:`repro.fairness.infeasible_index` and :mod:`repro.fairness.exposure`
remain the reference semantics; every kernel here is a drop-in vectorization
of the corresponding scalar function (same integers, same floats) and is
tested for exact agreement.
"""

from repro.batch.cache import (
    DEFAULT_CACHE,
    CacheStats,
    KernelCache,
    active_cache,
    use_cache,
)
from repro.batch.container import BatchRankings, as_batch_orders
from repro.batch.kernels import (
    batch_cayley,
    batch_count_inversions,
    batch_footrule,
    batch_group_exposures,
    batch_hamming,
    batch_infeasible_breakdown,
    batch_infeasible_index,
    batch_kendall_tau,
    batch_kendall_tau_pairwise,
    batch_ndcg,
    batch_percent_fair,
    batch_prefix_group_counts,
    batch_spearman,
    batch_topk_group_counts,
    batch_ulam,
    batch_violation_masks,
    batch_weighted_kendall_tau,
    kendall_tau_matrix,
)
from repro.batch.parallel import (
    MallowsBatchScores,
    effective_n_jobs,
    in_worker,
    mallows_sample_and_score,
    reset_warnings,
    resolve_n_jobs,
    run_trials,
    shard_row_ranges,
    shutdown_workers,
)
from repro.batch.schedule import (
    CompletedUnit,
    WorkerPool,
    WorkUnit,
    iter_units,
    pool_for,
    run_units,
)

__all__ = [
    "BatchRankings",
    "CacheStats",
    "CompletedUnit",
    "DEFAULT_CACHE",
    "KernelCache",
    "MallowsBatchScores",
    "WorkUnit",
    "WorkerPool",
    "active_cache",
    "as_batch_orders",
    "batch_cayley",
    "batch_count_inversions",
    "batch_footrule",
    "batch_group_exposures",
    "batch_hamming",
    "batch_infeasible_breakdown",
    "batch_infeasible_index",
    "batch_kendall_tau",
    "batch_kendall_tau_pairwise",
    "batch_ndcg",
    "batch_percent_fair",
    "batch_prefix_group_counts",
    "batch_spearman",
    "batch_topk_group_counts",
    "batch_ulam",
    "batch_violation_masks",
    "batch_weighted_kendall_tau",
    "effective_n_jobs",
    "in_worker",
    "iter_units",
    "kendall_tau_matrix",
    "mallows_sample_and_score",
    "pool_for",
    "reset_warnings",
    "resolve_n_jobs",
    "run_trials",
    "run_units",
    "shard_row_ranges",
    "shutdown_workers",
    "use_cache",
]
