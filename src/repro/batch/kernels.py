"""Batched kernels over ``(m, n)`` ranking arrays.

Array conventions
-----------------
Every kernel takes a batch in *order* view — an ``(m, n)`` integer array (or
:class:`~repro.batch.container.BatchRankings`) whose row ``s`` lists the item
at each position of sample ``s``, top first — and returns one value (or one
small vector) per row.  Group assignments and fairness constraints follow the
scalar modules: ``groups.indices[i]`` is the dense group of item ``i`` and
bounds come from ``constraints.count_bounds_matrix``.

Exactness
---------
Each kernel computes the *same* integers/floats as its scalar counterpart
(:func:`repro.rankings.distances.kendall_tau_distance` and the other
distance functions of :mod:`repro.rankings.distances`,
:func:`repro.fairness.infeasible_index.infeasible_index`,
:func:`repro.fairness.exposure.group_exposures`,
:func:`repro.rankings.quality.ndcg`) — vectorization never changes results,
only the per-sample Python overhead.  Large batches are processed in
row chunks so peak memory stays bounded regardless of ``m``.

Caching
-------
Per-``(constraints, n)`` precomputations (the prefix bound matrices of the
violation kernels) are memoized across calls in the *active*
:class:`repro.batch.cache.KernelCache` — the process-wide default, or an
engine session's private cache installed via
:func:`repro.batch.cache.use_cache`; see :mod:`repro.batch.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, Union

import numpy as np

from repro.batch.cache import active_cache
from repro.batch.container import BatchRankings, as_batch_orders, _invert_rows
from repro.exceptions import LengthMismatchError
from repro.rankings.permutation import Ranking
from repro.rankings.quality import idcg, position_discounts
from repro.utils.validation import as_permutation_array

if TYPE_CHECKING:  # imported lazily to keep repro.batch import-cycle-free
    from repro.fairness.constraints import FairnessConstraints
    from repro.groups.attributes import GroupAssignment

BatchLike = Union[BatchRankings, np.ndarray, Sequence[Sequence[int]]]

#: Row-chunking budgets: elements per temporary tensor, not bytes.  Chunks
#: keep the working set cache-friendly and peak memory flat in ``m``.
_PAIR_BUDGET = 1 << 24   # rows x n(n-1)/2 pair table for inversion counting
_PREFIX_BUDGET = 1 << 22  # rows x n x g prefix-count tensor


def _batch_positions(batch: BatchLike) -> np.ndarray:
    """Position view of a batch (cached when a BatchRankings is passed)."""
    if isinstance(batch, BatchRankings):
        return batch.positions
    return _invert_rows(as_batch_orders(batch))


def _reference_order(reference: "Ranking | Sequence[int] | np.ndarray") -> np.ndarray:
    """Order view of a scalar reference ranking."""
    if isinstance(reference, Ranking):
        return reference.order
    return as_permutation_array(reference, name="reference ranking")


def _reference_views(
    reference: "Ranking | Sequence[int] | np.ndarray",
) -> tuple[np.ndarray, np.ndarray]:
    """``(order, positions)`` views of a scalar reference ranking."""
    if isinstance(reference, Ranking):
        return reference.order, reference.positions
    order = as_permutation_array(reference, name="reference ranking")
    pos = np.empty_like(order)
    pos[order] = np.arange(order.size, dtype=np.int64)
    return order, pos


def _aligned_positions(
    batch: BatchLike, reference: "Ranking | Sequence[int] | np.ndarray"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch position view plus reference views, length-checked."""
    positions = _batch_positions(batch)
    ref_order, ref_pos = _reference_views(reference)
    _check_n(positions.shape[1], ref_order.size, "rankings")
    return positions, ref_order, ref_pos


def _check_n(n: int, other: int, what: str) -> None:
    if n != other:
        raise LengthMismatchError(
            f"{what} must have the same length, got {n} and {other}"
        )


# -- inversion counting / Kendall tau -----------------------------------------


def batch_count_inversions(seqs: np.ndarray) -> np.ndarray:
    """Number of inversions in every row of ``seqs``, ``shape (m,)``.

    Counts pairs ``i < j`` with ``seqs[s, i] > seqs[s, j]`` by comparing all
    ``n(n-1)/2`` column pairs at once, chunked over rows so the pair table
    never exceeds the memory budget.  ``O(n²)`` work per row — the quadratic
    is fully inside NumPy, which beats the ``O(n log n)`` scalar merge sort
    by orders of magnitude at the paper's scales (``n ≤ a few hundred``).
    """
    seqs = np.asarray(seqs)
    if seqs.ndim != 2:
        raise ValueError(f"expected a 2-D (m, n) array, got shape {seqs.shape}")
    m, n = seqs.shape
    out = np.zeros(m, dtype=np.int64)
    if m == 0 or n < 2:
        return out
    hi_cols, lo_cols = np.triu_indices(n, k=1)
    chunk = max(1, _PAIR_BUDGET // (n * (n - 1) // 2))
    for lo in range(0, m, chunk):
        rows = seqs[lo : lo + chunk]
        out[lo : lo + rows.shape[0]] = (
            rows[:, hi_cols] > rows[:, lo_cols]
        ).sum(axis=1)
    return out


def batch_kendall_tau(
    batch: BatchLike, reference: "Ranking | Sequence[int] | np.ndarray"
) -> np.ndarray:
    """Many-vs-one Kendall tau: ``d_KT(row_s, reference)`` for every row,
    ``shape (m,)``.

    Mirrors :func:`repro.rankings.distances.kendall_tau_distance`: items are
    taken in the reference's order and the inversions of their per-row
    positions are exactly the discordant pairs.
    """
    positions = _batch_positions(batch)
    ref_order = _reference_order(reference)
    _check_n(positions.shape[1], ref_order.size, "rankings")
    return batch_count_inversions(positions[:, ref_order])


def batch_kendall_tau_pairwise(a: BatchLike, b: BatchLike) -> np.ndarray:
    """Row-aligned many-vs-many Kendall tau: ``d_KT(a_s, b_s)`` per row,
    ``shape (m,)``."""
    pa = _batch_positions(a)
    ob = as_batch_orders(b)
    if pa.shape != ob.shape:
        raise LengthMismatchError(
            f"batches must have the same shape, got {pa.shape} and {ob.shape}"
        )
    return batch_count_inversions(np.take_along_axis(pa, ob, axis=1))


def kendall_tau_matrix(a: BatchLike, b: BatchLike) -> np.ndarray:
    """Full many-vs-many cross matrix ``D[s, t] = d_KT(a_s, b_t)``,
    ``shape (ma, mb)``.

    Iterates the smaller side, reusing the many-vs-one kernel per reference,
    so cost is ``min(ma, mb)`` kernel launches over the larger batch.
    """
    oa = as_batch_orders(a)
    ob = as_batch_orders(b)
    _check_n(oa.shape[1], ob.shape[1], "rankings")
    ma, mb = oa.shape[0], ob.shape[0]
    out = np.empty((ma, mb), dtype=np.int64)
    if ma == 0 or mb == 0:
        return out
    if mb <= ma:
        pa = _batch_positions(a)
        for t in range(mb):
            out[:, t] = batch_count_inversions(pa[:, ob[t]])
    else:
        pb = _batch_positions(b)
        for s in range(ma):
            out[s, :] = batch_count_inversions(pb[:, oa[s]])
    return out


# -- group prefix counts -------------------------------------------------------


def _group_of_positions(orders: np.ndarray, groups: "GroupAssignment") -> np.ndarray:
    """``(m, n)`` dense group index of the item at every position."""
    _check_n(orders.shape[1], groups.n_items, "ranking and group assignment")
    return groups.indices[orders]


def batch_prefix_group_counts(
    batch: BatchLike, groups: "GroupAssignment"
) -> np.ndarray:
    """Cumulative group counts per prefix for every row.

    Returns ``counts`` of ``shape (m, n, g)`` where ``counts[s, ℓ-1, i]`` is
    the number of group-``i`` members among the top ``ℓ`` positions of sample
    ``s`` — the batch analogue of
    :func:`repro.fairness.checks.prefix_group_counts`.  Materializes the full
    tensor; the violation kernels below chunk it internally instead.
    """
    orders = as_batch_orders(batch)
    grp = _group_of_positions(orders, groups)
    one_hot = grp[:, :, None] == np.arange(groups.n_groups, dtype=np.int64)
    return one_hot.cumsum(axis=1, dtype=np.int64)


def batch_topk_group_counts(
    batch: BatchLike, groups: "GroupAssignment", k: int
) -> np.ndarray:
    """Members of each group among the top-``k`` of every row, ``shape (m, g)``.

    ``k`` is clamped to ``[0, n]`` like :meth:`Ranking.prefix`.
    """
    orders = as_batch_orders(batch)
    m, n = orders.shape
    g = groups.n_groups
    _check_n(n, groups.n_items, "ranking and group assignment")
    k = max(0, min(k, n))
    if m == 0 or k == 0:
        return np.zeros((m, g), dtype=np.int64)
    grp = groups.indices[orders[:, :k]]
    offsets = grp + np.arange(m, dtype=np.int64)[:, None] * g
    return np.bincount(offsets.ravel(), minlength=m * g).reshape(m, g)


# -- infeasible index ----------------------------------------------------------


def batch_violation_masks(
    batch: BatchLike,
    groups: "GroupAssignment",
    constraints: "FairnessConstraints",
) -> tuple[np.ndarray, np.ndarray]:
    """Per-prefix violation masks ``(lower_violated, upper_violated)``, each
    boolean of ``shape (m, n)`` — row ``s``, column ``ℓ-1`` says whether the
    length-``ℓ`` prefix of sample ``s`` violates that side."""
    orders = as_batch_orders(batch)
    m, n = orders.shape
    grp = _group_of_positions(orders, groups)
    g = groups.n_groups
    lower_violated = np.zeros((m, n), dtype=bool)
    upper_violated = np.zeros((m, n), dtype=bool)
    if m == 0 or n == 0:
        return lower_violated, upper_violated
    # Per-group 2-D accumulation: for each group, one contiguous (chunk, n)
    # cumsum and two compares OR-ed into the masks.  This sidesteps the
    # (m, n, g) one-hot tensor and its slow length-g axis reduction; counts
    # are at most n so int32 halves the traffic with identical integers.
    # The transposed bound matrices are memoized per (constraints, n).
    lower32, upper32 = active_cache().violation_bounds32(constraints, n)
    chunk = max(1, _PREFIX_BUDGET // max(1, n))
    for lo in range(0, m, chunk):
        rows = grp[lo : lo + chunk]
        lv = lower_violated[lo : lo + rows.shape[0]]
        uv = upper_violated[lo : lo + rows.shape[0]]
        for i in range(g):
            counts = (rows == i).cumsum(axis=1, dtype=np.int32)
            lv |= counts < lower32[i][None, :]
            uv |= counts > upper32[i][None, :]
    return lower_violated, upper_violated


@dataclass(frozen=True)
class BatchInfeasibleBreakdown:
    """Violation counts for a whole batch — the array-valued analogue of
    :class:`repro.fairness.infeasible_index.InfeasibleIndexBreakdown`.

    Attributes
    ----------
    lower, upper, either:
        ``shape (m,)`` int64 — per row: prefixes violating the floor, the
        ceiling, and at least one side.
    n_positions:
        Ranking length (number of prefixes considered per row).
    """

    lower: np.ndarray
    upper: np.ndarray
    either: np.ndarray
    n_positions: int

    @property
    def two_sided(self) -> np.ndarray:
        """Per-row ``TwoSidedInfInd = LowerViol + UpperViol``, ``shape (m,)``."""
        return self.lower + self.upper

    @property
    def percent_fair(self) -> np.ndarray:
        """Per-row percentage of positions with no violation, ``shape (m,)``."""
        if self.n_positions == 0:
            return np.full(self.either.shape, 100.0)
        return 100.0 * (1.0 - self.either / self.n_positions)


def batch_infeasible_breakdown(
    batch: BatchLike,
    groups: "GroupAssignment",
    constraints: "FairnessConstraints",
) -> BatchInfeasibleBreakdown:
    """Full violation breakdown of every row at once."""
    lo, up = batch_violation_masks(batch, groups, constraints)
    return BatchInfeasibleBreakdown(
        lower=lo.sum(axis=1, dtype=np.int64),
        upper=up.sum(axis=1, dtype=np.int64),
        either=(lo | up).sum(axis=1, dtype=np.int64),
        n_positions=int(lo.shape[1]),
    )


def batch_infeasible_index(
    batch: BatchLike,
    groups: "GroupAssignment",
    constraints: "FairnessConstraints",
) -> np.ndarray:
    """Two-Sided Infeasible Index of every row (Definition 3), ``shape (m,)``."""
    return batch_infeasible_breakdown(batch, groups, constraints).two_sided


def batch_percent_fair(
    batch: BatchLike,
    groups: "GroupAssignment",
    constraints: "FairnessConstraints",
) -> np.ndarray:
    """``PPfair`` of every row (Definition 4), ``shape (m,)``."""
    return batch_infeasible_breakdown(batch, groups, constraints).percent_fair


# -- quality -------------------------------------------------------------------


def batch_ndcg(
    batch: BatchLike,
    scores: Sequence[float] | np.ndarray,
    k: int | None = None,
) -> np.ndarray:
    """NDCG of every row against shared item ``scores``, ``shape (m,)``.

    Same floats as :func:`repro.rankings.quality.ndcg` (gain = discounted
    score sum over the top ``k``, normalized by the ideal DCG; 1.0 when the
    ideal DCG is zero).
    """
    orders = as_batch_orders(batch)
    m, n = orders.shape
    s = np.asarray(scores, dtype=np.float64)
    if s.ndim != 1 or s.size != n:
        raise LengthMismatchError(
            f"scores must have shape ({n},), got {s.shape}"
        )
    k = n if k is None else k
    if not 0 <= k <= n:
        raise ValueError(f"k must be in [0, {n}], got {k}")
    ideal = idcg(s, k)
    if ideal == 0.0:
        return np.ones(m, dtype=np.float64)
    disc = position_discounts(k)
    gains = (s[orders[:, :k]] * disc[None, :]).sum(axis=1)
    return gains / ideal


# -- displacement distances ----------------------------------------------------


def batch_footrule(
    batch: BatchLike, reference: "Ranking | Sequence[int] | np.ndarray"
) -> np.ndarray:
    """Many-vs-one Spearman footrule ``Σᵢ |π_s(i) − σ(i)|`` per row,
    ``shape (m,)`` — same integers as
    :func:`repro.rankings.distances.footrule_distance`."""
    positions, _, ref_pos = _aligned_positions(batch, reference)
    return np.abs(positions - ref_pos[None, :]).sum(axis=1)


def batch_spearman(
    batch: BatchLike, reference: "Ranking | Sequence[int] | np.ndarray"
) -> np.ndarray:
    """Many-vs-one Spearman distance ``Σᵢ (π_s(i) − σ(i))²`` per row,
    ``shape (m,)`` — same integers as
    :func:`repro.rankings.distances.spearman_distance`."""
    positions, _, ref_pos = _aligned_positions(batch, reference)
    diff = positions - ref_pos[None, :]
    return (diff * diff).sum(axis=1)


def batch_hamming(
    batch: BatchLike, reference: "Ranking | Sequence[int] | np.ndarray"
) -> np.ndarray:
    """Many-vs-one Hamming distance (positions holding different items) per
    row, ``shape (m,)`` — same integers as
    :func:`repro.rankings.distances.hamming_distance`."""
    positions, _, ref_pos = _aligned_positions(batch, reference)
    return (positions != ref_pos[None, :]).sum(axis=1, dtype=np.int64)


def batch_cayley(
    batch: BatchLike, reference: "Ranking | Sequence[int] | np.ndarray"
) -> np.ndarray:
    """Many-vs-one Cayley distance (minimum transpositions) per row,
    ``shape (m,)`` — same integers as
    :func:`repro.rankings.distances.cayley_distance`.

    The scalar kernel walks each cycle of the composite permutation; here
    cycles are counted by pointer doubling — ``⌈log₂ n⌉`` rounds of
    min-label propagation along the permutation, all row-parallel — and the
    distance is ``n`` minus the number of labels that are their own cycle
    minimum.
    """
    positions, _, ref_pos = _aligned_positions(batch, reference)
    m, n = positions.shape
    out = np.zeros(m, dtype=np.int64)
    if m == 0 or n < 2:
        return out
    idx = np.arange(n, dtype=np.int64)
    doubling_rounds = max(1, int(np.ceil(np.log2(n))))
    chunk = max(1, _PREFIX_BUDGET // max(1, n))
    for lo in range(0, m, chunk):
        pos = positions[lo : lo + chunk]
        c = pos.shape[0]
        # comp[s, π_s(i)] = σ(i): maps each row's positions to the
        # reference's, exactly the scalar kernel's composite permutation.
        comp = np.empty((c, n), dtype=np.int64)
        np.put_along_axis(comp, pos, np.broadcast_to(ref_pos, (c, n)), axis=1)
        labels = np.broadcast_to(idx, (c, n)).copy()
        hop = comp
        for _ in range(doubling_rounds):
            np.minimum(
                labels, np.take_along_axis(labels, hop, axis=1), out=labels
            )
            hop = np.take_along_axis(hop, hop, axis=1)
        cycles = (labels == idx[None, :]).sum(axis=1, dtype=np.int64)
        out[lo : lo + c] = n - cycles
    return out


def batch_ulam(
    batch: BatchLike, reference: "Ranking | Sequence[int] | np.ndarray"
) -> np.ndarray:
    """Many-vs-one Ulam distance (``n`` − longest common subsequence) per
    row, ``shape (m,)`` — same integers as
    :func:`repro.rankings.distances.ulam_distance`.

    Row-parallel patience sorting: the per-row sorted ``tails`` arrays are
    advanced one sequence element at a time, with the binary search replaced
    by a vectorized rank count (``O(n)`` per step, ``O(n²)`` per row — all
    inside NumPy, which beats the scalar ``O(n log n)`` Python loop by far
    at the paper's scales).
    """
    positions, ref_order, _ = _aligned_positions(batch, reference)
    m, n = positions.shape
    if m == 0 or n == 0:
        return np.zeros(m, dtype=np.int64)
    chunk = max(1, _PREFIX_BUDGET // max(1, n))
    out = np.empty(m, dtype=np.int64)
    for lo in range(0, m, chunk):
        seq = positions[lo : lo + chunk][:, ref_order]
        c = seq.shape[0]
        rows = np.arange(c)
        # tails[s] holds the best (smallest) tail of each increasing-run
        # length, padded with the sentinel n; it stays sorted throughout.
        tails = np.full((c, n), n, dtype=np.int64)
        for j in range(n):
            value = seq[:, j]
            slot = (tails < value[:, None]).sum(axis=1)
            tails[rows, slot] = value
        out[lo : lo + c] = n - (tails < n).sum(axis=1)
    return out


def batch_weighted_kendall_tau(
    batch: BatchLike,
    reference: "Ranking | Sequence[int] | np.ndarray",
    weights: Sequence[float] | np.ndarray | None = None,
) -> np.ndarray:
    """Many-vs-one position-weighted Kendall tau per row, ``shape (m,)``
    float64 — same floats as
    :func:`repro.rankings.distances.weighted_kendall_tau` (same default DCG
    weights, same pair weighting by the higher position in the row)."""
    positions, _, ref_pos = _aligned_positions(batch, reference)
    m, n = positions.shape
    if n < 2:
        return np.zeros(m, dtype=np.float64)
    if weights is None:
        w = 1.0 / np.log1p(np.arange(1, n + 1, dtype=np.float64))
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError(f"weights must have shape ({n},), got {w.shape}")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
    ds = ref_pos[:, None] - ref_pos[None, :]
    pair_mask = np.triu(np.ones((n, n), dtype=bool), k=1)
    out = np.empty(m, dtype=np.float64)
    # Four (chunk, n, n) temporaries live at once, hence the /4 budget.
    chunk = max(1, _PAIR_BUDGET // (4 * n * n))
    for lo in range(0, m, chunk):
        p = positions[lo : lo + chunk]
        dp = p[:, :, None] - p[:, None, :]
        discordant = (dp * ds[None, :, :]) < 0
        discordant &= pair_mask[None, :, :]
        top_pos = np.minimum(p[:, :, None], p[:, None, :])
        contrib = w[top_pos] * discordant
        out[lo : lo + p.shape[0]] = contrib.reshape(p.shape[0], -1).sum(axis=1)
    return out


# -- exposure ------------------------------------------------------------------


def batch_group_exposures(
    batch: BatchLike, groups: "GroupAssignment", k: int | None = None
) -> np.ndarray:
    """Mean exposure of each group's members per row, ``shape (m, g)`` —
    same floats as :func:`repro.fairness.exposure.group_exposures` (the
    accumulation visits items in index order exactly like the scalar
    ``np.add.at``, so the sums are bit-identical).

    Groups with no members get exposure 0, as in the scalar function.
    """
    positions = _batch_positions(batch)
    m, n = positions.shape
    _check_n(n, groups.n_items, "ranking and group assignment")
    g = groups.n_groups
    k = n if k is None else k
    if not 0 <= k <= n:
        raise ValueError(f"k must be in [0, {n}], got {k}")
    sizes = groups.group_sizes
    nonempty = sizes > 0
    out = np.zeros((m, g), dtype=np.float64)
    if m == 0:
        return out
    # Exposure of item i in row s is the discount of its position (0 beyond
    # k); padding the discount vector turns that into one gather.
    disc_pad = np.zeros(n, dtype=np.float64)
    disc_pad[:k] = position_discounts(k)
    chunk = max(1, _PREFIX_BUDGET // max(1, n))
    for lo in range(0, m, chunk):
        pos = positions[lo : lo + chunk]
        c = pos.shape[0]
        item_exposure = disc_pad[pos]
        # bincount accumulates in input (row-major, item-index) order — the
        # same sequential order as the scalar kernel's np.add.at.
        offsets = groups.indices[None, :] + g * np.arange(c, dtype=np.int64)[:, None]
        totals = np.bincount(
            offsets.ravel(), weights=item_exposure.ravel(), minlength=c * g
        ).reshape(c, g)
        out[lo : lo + c, nonempty] = totals[:, nonempty] / sizes[nonempty]
    return out
