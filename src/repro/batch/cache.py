"""Cross-loop memoization of per-constraint / per-model precomputations.

The Monte-Carlo experiments call the batched kernels thousands of times with
a handful of distinct ``(constraints, n)`` pairs — every German Credit repeat
rebuilds proportional constraints whose rate vectors are *value*-equal to the
previous repeat's — and the exact-marginal utilities recompute the same
``(n, theta)`` position-marginal matrix on every call.  This module holds a
small process-wide cache for both:

* **Prefix bound matrices** — :meth:`KernelCache.count_bounds` memoizes
  :meth:`repro.fairness.constraints.FairnessConstraints.count_bounds_matrix`
  per ``(alpha, beta, n)`` *by value* (the rate vectors' bytes), together
  with the transposed ``int32`` variants the violation kernel consumes;
* **Position marginals** — :meth:`KernelCache.position_marginals` memoizes
  the exact ``(n, n)`` Mallows marginal matrix per ``(n, theta)``.

Entries are immutable (arrays are returned read-only), eviction is LRU with
a bounded entry count, and hit/miss counters are exposed via
:meth:`KernelCache.stats` so benchmarks can surface cache effectiveness.
Invalidation is explicit: :meth:`KernelCache.invalidate_constraints` drops
every entry of one constraint set, :meth:`KernelCache.clear` drops
everything (counters included).

A process-wide default instance, :data:`DEFAULT_CACHE`, is consulted by
:func:`repro.batch.kernels.batch_violation_masks` and
:func:`repro.mallows.marginals.position_marginals` — *indirectly*, through
:func:`active_cache`: a serving session (:class:`repro.engine.RankingEngine`)
that owns a private :class:`KernelCache` installs it for the duration of a
request via the :func:`use_cache` context manager, so its hit/miss counters
and eviction budget are session-scoped rather than process-global.  Tests
that need a cold path can call ``DEFAULT_CACHE.clear()`` or construct a
private :class:`KernelCache`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterator

import numpy as np

if TYPE_CHECKING:
    from repro.fairness.constraints import FairnessConstraints

#: Default maximum number of entries kept per table (bounds / marginals).
_DEFAULT_MAX_ENTRIES = 128


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters and current sizes of one :class:`KernelCache`."""

    bounds_hits: int
    bounds_misses: int
    marginals_hits: int
    marginals_misses: int
    bounds_entries: int
    marginals_entries: int

    @property
    def hits(self) -> int:
        """Total hits across both tables."""
        return self.bounds_hits + self.marginals_hits

    @property
    def misses(self) -> int:
        """Total misses across both tables."""
        return self.bounds_misses + self.marginals_misses

    def summary(self) -> str:
        """One-line human-readable rendering (used in benchmark reports)."""
        return (
            f"bounds {self.bounds_hits} hits / {self.bounds_misses} misses "
            f"({self.bounds_entries} cached), "
            f"marginals {self.marginals_hits} hits / "
            f"{self.marginals_misses} misses ({self.marginals_entries} cached)"
        )


def _constraints_key(constraints: "FairnessConstraints", n: int) -> Hashable:
    """Value-based key: identical rate vectors hit the same entry even when
    the ``FairnessConstraints`` object was rebuilt (the German Credit loop
    constructs fresh proportional constraints every repeat)."""
    return (constraints.alpha.tobytes(), constraints.beta.tobytes(), n)


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


class KernelCache:
    """Bounded LRU cache of kernel precomputations (thread-safe)."""

    def __init__(self, max_entries: int = _DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._bounds: OrderedDict[Hashable, tuple[np.ndarray, ...]] = OrderedDict()
        self._marginals: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        self._bounds_hits = 0
        self._bounds_misses = 0
        self._marginals_hits = 0
        self._marginals_misses = 0

    # -- lookup ---------------------------------------------------------------

    def count_bounds(
        self, constraints: "FairnessConstraints", n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Memoized ``constraints.count_bounds_matrix(n)`` (read-only arrays)."""
        lower, upper, _, _ = self._bounds_entry(constraints, n)
        return lower, upper

    def violation_bounds32(
        self, constraints: "FairnessConstraints", n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The transposed contiguous ``int32`` bound matrices ``(g, n)`` that
        :func:`repro.batch.kernels.batch_violation_masks` compares against,
        memoized alongside the raw bounds."""
        _, _, lower32, upper32 = self._bounds_entry(constraints, n)
        return lower32, upper32

    def position_marginals(self, n: int, theta: float) -> np.ndarray:
        """Memoized exact Mallows position-marginal matrix for ``(n, theta)``
        (read-only; see :func:`repro.mallows.marginals.position_marginals`)."""
        key = (int(n), float(theta))
        with self._lock:
            cached = self._marginals.get(key)
            if cached is not None:
                self._marginals_hits += 1
                self._marginals.move_to_end(key)
                return cached
            self._marginals_misses += 1
        from repro.mallows.marginals import _compute_position_marginals

        value = _freeze(_compute_position_marginals(n, theta))
        with self._lock:
            self._marginals[key] = value
            self._marginals.move_to_end(key)
            while len(self._marginals) > self._max_entries:
                self._marginals.popitem(last=False)
        return value

    def _bounds_entry(
        self, constraints: "FairnessConstraints", n: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        key = _constraints_key(constraints, n)
        with self._lock:
            cached = self._bounds.get(key)
            if cached is not None:
                self._bounds_hits += 1
                self._bounds.move_to_end(key)
                return cached
            self._bounds_misses += 1
        lower, upper = constraints.count_bounds_matrix(n)
        entry = (
            _freeze(lower),
            _freeze(upper),
            _freeze(np.ascontiguousarray(lower.T.astype(np.int32))),
            _freeze(np.ascontiguousarray(upper.T.astype(np.int32))),
        )
        with self._lock:
            self._bounds[key] = entry
            self._bounds.move_to_end(key)
            while len(self._bounds) > self._max_entries:
                self._bounds.popitem(last=False)
        return entry

    # -- maintenance ----------------------------------------------------------

    def invalidate_constraints(self, constraints: "FairnessConstraints") -> int:
        """Drop every cached bound matrix of ``constraints`` (any ``n``);
        returns the number of entries removed."""
        prefix = (constraints.alpha.tobytes(), constraints.beta.tobytes())
        with self._lock:
            doomed = [k for k in self._bounds if k[:2] == prefix]
            for k in doomed:
                del self._bounds[k]
        return len(doomed)

    def invalidate_marginals(self, n: int | None = None) -> int:
        """Drop cached marginal matrices (all of them, or only size ``n``);
        returns the number of entries removed."""
        with self._lock:
            if n is None:
                count = len(self._marginals)
                self._marginals.clear()
                return count
            doomed = [k for k in self._marginals if k[0] == int(n)]
            for k in doomed:
                del self._marginals[k]
        return len(doomed)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._bounds.clear()
            self._marginals.clear()
            self._bounds_hits = self._bounds_misses = 0
            self._marginals_hits = self._marginals_misses = 0

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss counters and table sizes."""
        with self._lock:
            return CacheStats(
                bounds_hits=self._bounds_hits,
                bounds_misses=self._bounds_misses,
                marginals_hits=self._marginals_hits,
                marginals_misses=self._marginals_misses,
                bounds_entries=len(self._bounds),
                marginals_entries=len(self._marginals),
            )


#: Process-wide cache consulted by the kernels and the marginal utilities
#: whenever no session cache is installed (see :func:`active_cache`).
DEFAULT_CACHE = KernelCache()

#: The installed session cache, or ``None`` (fall back to DEFAULT_CACHE).
#: Thread-local so two engine sessions serving from different threads do
#: not see each other's tables.
_ACTIVE = threading.local()


def active_cache() -> KernelCache:
    """The cache the kernels consult right now: the innermost
    :func:`use_cache` installation, else :data:`DEFAULT_CACHE`."""
    return getattr(_ACTIVE, "cache", None) or DEFAULT_CACHE


@contextmanager
def use_cache(cache: KernelCache) -> Iterator[KernelCache]:
    """Install ``cache`` as the active kernel cache for the duration of the
    ``with`` block (re-entrant; restores the previous installation on exit).

    This is how a :class:`repro.engine.RankingEngine` scopes memoization to
    its own session: kernels reached from inside the block read and fill
    ``cache`` instead of the process-wide default.  The installation is
    per-thread and does not propagate to pool worker processes (each worker
    keeps its own process-wide default cache).
    """
    previous = getattr(_ACTIVE, "cache", None)
    _ACTIVE.cache = cache
    try:
        yield cache
    finally:
        _ACTIVE.cache = previous
