"""The :class:`BatchRankings` container: ``m`` rankings as one array.

Array conventions
-----------------
A batch over ``n`` items is a C-contiguous ``(m, n)`` ``int64`` array in
*order* view: ``orders[s, j]`` is the item that sample ``s`` places at
position ``j`` (position 0 is the top).  Every row is a permutation of
``0..n-1``.  The inverse *position* view, ``positions[s, i]`` — the position
sample ``s`` gives item ``i``, the paper's ``σ_s(i)`` — is derived lazily and
cached, so kernels that need it (Kendall tau) pay the inversion once per
batch rather than once per call.

These are exactly the batch analogues of
:attr:`repro.rankings.permutation.Ranking.order` and ``Ranking.positions``;
a single-row batch and a :class:`Ranking` are interchangeable, and the
property tests pin that equivalence.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.rankings.permutation import Ranking


def _invert_rows(arr: np.ndarray) -> np.ndarray:
    """Row-wise permutation inverse of an ``(m, n)`` permutation array."""
    m, n = arr.shape
    inv = np.empty_like(arr)
    np.put_along_axis(
        inv, arr, np.broadcast_to(np.arange(n, dtype=arr.dtype), (m, n)), axis=1
    )
    return inv


def _check_rows_are_permutations(arr: np.ndarray) -> None:
    """Raise if any row of ``arr`` is not a permutation of ``0..n-1``."""
    m, n = arr.shape
    if m == 0 or n == 0:
        return
    if arr.min() < 0 or arr.max() >= n:
        raise ValueError(f"batch entries must lie in [0, {n}), got range "
                         f"[{int(arr.min())}, {int(arr.max())}]")
    hits = np.zeros((m, n), dtype=bool)
    hits[np.arange(m)[:, None], arr] = True
    bad = np.flatnonzero(~hits.all(axis=1))
    if bad.size:
        raise ValueError(
            f"batch row {int(bad[0])} is not a permutation of 0..{n - 1}"
        )


class BatchRankings:
    """An immutable batch of ``m`` rankings over the same ``n`` items.

    Parameters
    ----------
    orders:
        ``(m, n)`` array, each row an order view (item at each position).
        The public path defensively copies when the container would alias
        the caller's array, so freezing never mutates caller state.
    validate:
        Check every row is a permutation, and copy aliasing input.  Skip
        only for trusted internal producers (such as the Mallows sampler)
        whose rows are permutations by construction and who hand over
        ownership of the array.

    Examples
    --------
    >>> batch = BatchRankings([[2, 0, 1], [0, 1, 2]])
    >>> len(batch)
    2
    >>> batch[0]
    Ranking([2, 0, 1])
    >>> batch.positions[0].tolist()
    [1, 2, 0]
    """

    __slots__ = ("_orders", "_positions")

    def __init__(
        self,
        orders: Sequence[Sequence[int]] | np.ndarray,
        *,
        validate: bool = True,
    ):
        arr = np.asarray(orders, dtype=np.int64)
        if arr.ndim != 2:
            raise ValueError(
                f"batch orders must be a 2-D (m, n) array, got shape {arr.shape}"
            )
        arr = np.ascontiguousarray(arr)
        if validate:
            _check_rows_are_permutations(arr)
            if isinstance(orders, np.ndarray) and np.shares_memory(arr, orders):
                arr = arr.copy()
        arr.setflags(write=False)
        self._orders = arr
        self._positions: np.ndarray | None = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_positions(
        cls, positions: Sequence[Sequence[int]] | np.ndarray, *, validate: bool = True
    ) -> "BatchRankings":
        """Build from the inverse view (``positions[s, i]`` = position of
        item ``i`` in sample ``s``)."""
        pos = np.asarray(positions, dtype=np.int64)
        if pos.ndim != 2:
            raise ValueError(
                f"batch positions must be a 2-D (m, n) array, got shape {pos.shape}"
            )
        pos = np.ascontiguousarray(pos)
        if validate:
            _check_rows_are_permutations(pos)
        batch = cls(_invert_rows(pos), validate=False)
        cached = pos.copy()
        cached.setflags(write=False)
        batch._positions = cached
        return batch

    @classmethod
    def from_rankings(cls, rankings: Iterable[Ranking]) -> "BatchRankings":
        """Stack :class:`Ranking` objects (already validated) into a batch."""
        rows = [r.order for r in rankings]
        if not rows:
            raise ValueError("cannot build a batch from zero rankings")
        n = rows[0].size
        for r in rows[1:]:
            if r.size != n:
                raise ValueError(
                    f"all rankings must have the same length ({n} vs {r.size})"
                )
        return cls(np.stack(rows), validate=False)

    # -- views -----------------------------------------------------------------

    @property
    def orders(self) -> np.ndarray:
        """Read-only ``(m, n)`` order view (item at each position, top first)."""
        return self._orders

    @property
    def positions(self) -> np.ndarray:
        """Read-only ``(m, n)`` position view (``σ_s(i)``), computed lazily."""
        if self._positions is None:
            pos = _invert_rows(self._orders)
            pos.setflags(write=False)
            self._positions = pos
        return self._positions

    @property
    def n_rankings(self) -> int:
        """Number of rankings ``m`` in the batch."""
        return int(self._orders.shape[0])

    @property
    def n_items(self) -> int:
        """Number of items ``n`` per ranking."""
        return int(self._orders.shape[1])

    def __len__(self) -> int:
        return self.n_rankings

    def __getitem__(self, index: int) -> Ranking:
        return Ranking(self._orders[int(index)])

    def __iter__(self) -> Iterator[Ranking]:
        return (Ranking(row) for row in self._orders)

    def to_rankings(self) -> list[Ranking]:
        """Materialize the batch as a list of :class:`Ranking` objects."""
        return [Ranking(row) for row in self._orders]

    def prefix(self, k: int) -> np.ndarray:
        """Top-``k`` items of every ranking, ``shape (m, k)``; ``k`` is
        clamped to ``[0, n]`` like :meth:`Ranking.prefix`."""
        k = max(0, min(k, self.n_items))
        return self._orders[:, :k].copy()

    def select(self, indices: Sequence[int] | np.ndarray) -> "BatchRankings":
        """Sub-batch holding the rankings at ``indices`` (in that order).

        A boolean array of length ``m`` is treated as a mask, so filtering
        idioms like ``batch.select(iis == 0)`` work as expected.
        """
        idx = np.asarray(indices)
        if idx.dtype == bool:
            if idx.shape != (self.n_rankings,):
                raise ValueError(
                    f"boolean mask must have shape ({self.n_rankings},), "
                    f"got {idx.shape}"
                )
            idx = np.flatnonzero(idx)
        else:
            idx = idx.astype(np.int64, copy=False)
        return BatchRankings(self._orders[idx], validate=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BatchRankings):
            return NotImplemented
        return self._orders.shape == other._orders.shape and bool(
            np.array_equal(self._orders, other._orders)
        )

    def __repr__(self) -> str:
        return f"BatchRankings(m={self.n_rankings}, n={self.n_items})"


def as_batch_orders(batch: "BatchRankings | np.ndarray | Sequence") -> np.ndarray:
    """Coerce a kernel argument into a raw ``(m, n)`` int64 order array.

    Accepts a :class:`BatchRankings` (its validated orders are used as-is)
    or a raw array-like, which is trusted the same way the pre-existing
    array-based kernels trusted their inputs.
    """
    if isinstance(batch, BatchRankings):
        return batch.orders
    arr = np.asarray(batch, dtype=np.int64)
    if arr.ndim != 2:
        raise ValueError(
            f"batch orders must be a 2-D (m, n) array, got shape {arr.shape}"
        )
    return arr
