"""Multi-core fan-out of the Mallows sampling + scoring pipeline.

The Monte-Carlo experiments all run the same inner pipeline: draw an
``(m, n)`` batch of Mallows samples, then score every row with the batched
kernels.  Rows are mutually independent, so the batch can be sharded by row
range across worker processes.  This module provides that sharder plus the
seeding scheme that makes it *deterministically equivalent* to the
single-process path.

Determinism
-----------
The sampler consumes exactly one uniform double per ``(row, item)`` cell,
row-major, from the caller's generator.  Each shard's worker therefore gets
a clone of the caller's bit generator advanced to its first row's stream
offset (``lo * n`` draws) — PCG64's ``advance`` makes this O(1) — and the
parent generator is advanced past all ``m * n`` draws afterwards.  The
upshot, pinned by the equivalence tests:

* any ``n_jobs`` (including 1) produces **byte-identical** samples and
  scores under a fixed seed;
* the caller's generator ends in the **same state** as if it had drawn the
  whole batch single-process, so downstream consumers of the same stream
  (e.g. bootstrap resampling) are unaffected by the fan-out.

Bit generators without ``advance`` (e.g. MT19937) fall back to drawing the
displacement matrix in the parent and shipping row slices to the workers —
same outputs, slightly less parallel.

Worker processes are pooled per ``n_jobs`` and reused across pipeline calls
(the experiments call the pipeline in tight loops); :func:`shutdown_workers`
tears the pools down explicitly, and an ``atexit`` hook does so at
interpreter exit.
"""

from __future__ import annotations

import atexit
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.rankings.permutation import Ranking
from repro.utils.rng import SeedLike, as_generator

if TYPE_CHECKING:  # lazy at runtime: repro.mallows.sampling imports repro.batch
    from repro.fairness.constraints import FairnessConstraints
    from repro.groups.attributes import GroupAssignment

#: Below this many rows per worker the pool overhead dominates and the
#: pipeline runs single-process instead (output is identical either way; a
#: one-time RuntimeWarning flags the declined fan-out request).
MIN_ROWS_PER_JOB = 128

_small_batch_warned = False


def _warn_small_batch(m: int, n_jobs: int) -> None:
    global _small_batch_warned
    if _small_batch_warned:
        return
    _small_batch_warned = True
    warnings.warn(
        f"n_jobs={n_jobs} requested but the batch has only {m} rows "
        f"(< 2 x MIN_ROWS_PER_JOB = {2 * MIN_ROWS_PER_JOB}), so the pipeline "
        "runs single-process: at this size the worker-pool dispatch costs "
        "more than the work.  Output is identical either way.  Small-m "
        "experiment loops parallelize at the per-trial granularity instead "
        "(see ROADMAP).  This warning is shown once per process.",
        RuntimeWarning,
        stacklevel=3,
    )

#: Live executors keyed by worker count, reused across pipeline calls.
_EXECUTORS: dict[int, ProcessPoolExecutor] = {}


def shard_row_ranges(m: int, n_shards: int) -> list[tuple[int, int]]:
    """Split ``m`` rows into at most ``n_shards`` contiguous ``(lo, hi)``
    ranges of near-equal size (empty ranges are dropped)."""
    if m < 0:
        raise ValueError(f"row count must be non-negative, got {m}")
    if n_shards < 1:
        raise ValueError(f"shard count must be >= 1, got {n_shards}")
    base, extra = divmod(m, n_shards)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for s in range(n_shards):
        hi = lo + base + (1 if s < extra else 0)
        if hi > lo:
            ranges.append((lo, hi))
        lo = hi
    return ranges


def resolve_n_jobs(n_jobs: int) -> int:
    """Normalize an ``n_jobs`` request: ``-1`` means all cores, otherwise
    the value must be a positive integer."""
    if n_jobs == -1:
        import os

        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1 (all cores), got {n_jobs}")
    return int(n_jobs)


def shutdown_workers() -> None:
    """Tear down every pooled worker process (they are lazily recreated)."""
    for executor in _EXECUTORS.values():
        executor.shutdown(wait=True, cancel_futures=True)
    _EXECUTORS.clear()


atexit.register(shutdown_workers)


def _get_executor(n_jobs: int) -> ProcessPoolExecutor:
    executor = _EXECUTORS.get(n_jobs)
    if executor is None:
        executor = ProcessPoolExecutor(max_workers=n_jobs)
        _EXECUTORS[n_jobs] = executor
    return executor


@dataclass(frozen=True)
class MallowsBatchScores:
    """Outputs of one sharded sampling + scoring pipeline run.

    Attributes are ``None`` when the corresponding input (constraints,
    scores, ``return_orders``) was not supplied.
    """

    infeasible_index: np.ndarray | None
    ndcg: np.ndarray | None
    orders: np.ndarray | None


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to sample and score rows ``[lo, hi)``."""

    center_order: np.ndarray
    theta: float
    rows: int
    bit_generator: object | None  # advanced clone; None => displacements set
    displacements: np.ndarray | None
    groups: "GroupAssignment | None"
    constraints: "FairnessConstraints | None"
    scores: np.ndarray | None
    ndcg_k: int | None
    return_orders: bool


def _score_orders(
    orders: np.ndarray, task: _ShardTask
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    from repro.batch.kernels import batch_infeasible_index, batch_ndcg

    iis = None
    if task.constraints is not None:
        iis = batch_infeasible_index(orders, task.groups, task.constraints)
    ndcgs = None
    if task.scores is not None:
        ndcgs = batch_ndcg(orders, task.scores, k=task.ndcg_k)
    return iis, ndcgs, orders if task.return_orders else None


def _run_shard(
    task: _ShardTask,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Worker entry point: materialize the shard's rows, score them."""
    from repro.mallows.sampling import (
        _displacement_draws,
        _orders_from_displacements,
    )

    if task.displacements is not None:
        v = task.displacements
    else:
        rng = np.random.Generator(task.bit_generator)
        v = _displacement_draws(
            task.center_order.size, task.theta, task.rows, rng
        )
    orders = _orders_from_displacements(task.center_order, v)
    return _score_orders(orders, task)


def _shard_bit_generators(
    rng: np.random.Generator, ranges: Sequence[tuple[int, int]], n: int
) -> list[object] | None:
    """Clones of ``rng``'s bit generator advanced to each shard's stream
    offset, or ``None`` when the bit generator cannot ``advance``.

    On success the parent generator is advanced past the whole batch, so its
    subsequent draws match the single-process path exactly.
    """
    base = rng.bit_generator
    if not hasattr(base, "advance"):
        return None
    state = base.state
    clones: list[object] = []
    for lo, _hi in ranges:
        clone = type(base)()
        clone.state = state
        clone.advance(lo * n)
        clones.append(clone)
    base.advance(ranges[-1][1] * n)
    return clones


def mallows_sample_and_score(
    center: Ranking,
    theta: float,
    m: int,
    *,
    groups: "GroupAssignment | None" = None,
    constraints: "FairnessConstraints | None" = None,
    scores: Sequence[float] | np.ndarray | None = None,
    ndcg_k: int | None = None,
    seed: SeedLike = None,
    n_jobs: int = 1,
    return_orders: bool = False,
) -> MallowsBatchScores:
    """Draw ``m`` Mallows samples around ``center`` and score every row,
    sharded across ``n_jobs`` worker processes.

    Parameters
    ----------
    groups, constraints:
        When given (together), the per-row Two-Sided Infeasible Index is
        computed.
    scores:
        When given, the per-row NDCG against these item scores is computed
        (top ``ndcg_k``; the full ranking by default).
    seed:
        Any :data:`~repro.utils.rng.SeedLike`.  A passed-in generator is
        consumed exactly as the single-process path would consume it.
    n_jobs:
        Worker processes (``-1`` = all cores).  Output is byte-identical
        for every value.  Batches under ``2 * MIN_ROWS_PER_JOB`` rows run
        single-process regardless (pool dispatch would cost more than the
        work); a one-time :class:`RuntimeWarning` flags the declined
        request so the no-op is never silent.
    return_orders:
        Also return the ``(m, n)`` sample orders (costs inter-process
        transfer of the whole batch when sharded).
    """
    from repro.mallows.sampling import sample_mallows_batch

    if (groups is None) != (constraints is None):
        raise ValueError("groups and constraints must be supplied together")
    n_jobs = resolve_n_jobs(n_jobs)
    n = len(center)
    score_array = None
    if scores is not None:
        score_array = np.asarray(scores, dtype=np.float64)

    n_shards = min(n_jobs, max(1, m // MIN_ROWS_PER_JOB)) if n > 0 else 1
    if n_shards <= 1:
        if n_jobs > 1 and 0 < m < 2 * MIN_ROWS_PER_JOB:
            _warn_small_batch(m, n_jobs)
        from repro.batch.kernels import batch_infeasible_index, batch_ndcg

        rng = as_generator(seed)
        orders = sample_mallows_batch(center, theta, m, seed=rng)
        iis = None
        if constraints is not None:
            iis = batch_infeasible_index(orders, groups, constraints)
        ndcgs = None
        if score_array is not None:
            ndcgs = batch_ndcg(orders, score_array, k=ndcg_k)
        return MallowsBatchScores(
            infeasible_index=iis,
            ndcg=ndcgs,
            orders=orders if return_orders else None,
        )

    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    rng = as_generator(seed)
    ranges = shard_row_ranges(m, n_shards)
    clones = _shard_bit_generators(rng, ranges, n)
    if clones is None:
        # Non-advanceable bit generator: draw centrally, decode remotely.
        from repro.mallows.sampling import _displacement_draws

        v = _displacement_draws(n, theta, m, rng)
        shard_rngs: list[object | None] = [None] * len(ranges)
        shard_vs: list[np.ndarray | None] = [v[lo:hi] for lo, hi in ranges]
    else:
        shard_rngs = clones
        shard_vs = [None] * len(ranges)

    tasks = [
        _ShardTask(
            center_order=center.order,
            theta=theta,
            rows=hi - lo,
            bit_generator=shard_rngs[s],
            displacements=shard_vs[s],
            groups=groups,
            constraints=constraints,
            scores=score_array,
            ndcg_k=ndcg_k,
            return_orders=return_orders,
        )
        for s, (lo, hi) in enumerate(ranges)
    ]
    executor = _get_executor(n_jobs)
    try:
        results = list(executor.map(_run_shard, tasks))
    except BrokenProcessPool:
        _EXECUTORS.pop(n_jobs, None)
        executor.shutdown(wait=False, cancel_futures=True)
        raise

    def _concat(parts: list[np.ndarray | None]) -> np.ndarray | None:
        if any(p is None for p in parts):
            return None
        return np.concatenate(parts, axis=0)

    return MallowsBatchScores(
        infeasible_index=_concat([r[0] for r in results]),
        ndcg=_concat([r[1] for r in results]),
        orders=_concat([r[2] for r in results]),
    )
